//! Jacobi 2-D stencil — a classic DSM benchmark extending the paper's
//! suite. Two grids (read/write) swap roles each sweep; one barrier per
//! sweep propagates each worker's row block. Updates are contiguous row
//! stripes, a friendly case for the consecutive-element coalescing.

use crate::workload::{block_rows, det_f64};
use hdsm_core::client::{DsdClient, DsdError};
use hdsm_core::cluster::WorkerInfo;
use hdsm_core::gthv::{GthvDef, GthvInstance};
use hdsm_platform::ctype::StructBuilder;
use hdsm_platform::scalar::ScalarKind;

/// Entry ids.
pub mod entries {
    /// `double grid0[n*n]`.
    pub const G0: u32 = 0;
    /// `double grid1[n*n]`.
    pub const G1: u32 = 1;
    /// `int n`.
    pub const N: u32 = 2;
}

/// Barrier ids.
pub mod barriers {
    use hdsm_core::BarrierId;
    /// Reused every sweep: propagates each worker's row block.
    pub const SWEEP: BarrierId = BarrierId::new(0);
}

/// Shared structure: two grids plus the dimension.
pub fn gthv_def(n: usize) -> GthvDef {
    GthvDef::new(
        StructBuilder::new("GThV_jacobi")
            .array("grid0", ScalarKind::Double, n * n)
            .array("grid1", ScalarKind::Double, n * n)
            .scalar("n", ScalarKind::Int)
            .build()
            .expect("jacobi struct"),
    )
    .expect("valid def")
}

/// Home-side initialisation: deterministic interior, fixed hot boundary.
pub fn init(g: &mut GthvInstance, n: usize, seed: u64) {
    let src = source_grid(n, seed);
    for (i, v) in src.iter().enumerate() {
        g.write_float(entries::G0, i as u64, *v).expect("init g0");
        g.write_float(entries::G1, i as u64, *v).expect("init g1");
    }
    g.write_int(entries::N, 0, n as i128).expect("init n");
}

/// The initial grid.
pub fn source_grid(n: usize, seed: u64) -> Vec<f64> {
    let mut g = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            g[i * n + j] = if i == 0 {
                100.0 // hot top edge
            } else if i == n - 1 || j == 0 || j == n - 1 {
                0.0
            } else {
                det_f64(seed, (i * n + j) as u64).abs() * 10.0
            };
        }
    }
    g
}

/// Serial oracle: `sweeps` Jacobi iterations.
pub fn expected_grid(n: usize, seed: u64, sweeps: usize) -> Vec<f64> {
    let mut cur = source_grid(n, seed);
    let mut next = cur.clone();
    for _ in 0..sweeps {
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                next[i * n + j] = 0.25
                    * (cur[(i - 1) * n + j]
                        + cur[(i + 1) * n + j]
                        + cur[i * n + j - 1]
                        + cur[i * n + j + 1]);
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// Verify the distributed result after `sweeps` iterations.
pub fn verify(g: &GthvInstance, n: usize, seed: u64, sweeps: usize) -> bool {
    let want = expected_grid(n, seed, sweeps);
    // Result grid alternates with sweep parity.
    let entry = if sweeps.is_multiple_of(2) {
        entries::G0
    } else {
        entries::G1
    };
    for (i, w) in want.iter().enumerate() {
        match g.read_float(entry, i as u64) {
            Ok(v) if (v - w).abs() <= 1e-9 * (1.0 + w.abs()) => {}
            _ => return false,
        }
    }
    true
}

/// SPMD worker body.
pub fn run_worker(
    client: &mut DsdClient,
    info: &WorkerInfo,
    n: usize,
    sweeps: usize,
) -> Result<(), DsdError> {
    client.barrier(barriers::SWEEP)?;
    let rows = block_rows(n, info.index, info.n_workers);
    for sweep in 0..sweeps {
        let (src, dst) = if sweep % 2 == 0 {
            (entries::G0, entries::G1)
        } else {
            (entries::G1, entries::G0)
        };
        for i in rows.clone() {
            if i == 0 || i == n - 1 {
                continue;
            }
            for j in 1..n - 1 {
                let v = 0.25
                    * (client.read_float(src, ((i - 1) * n + j) as u64)?
                        + client.read_float(src, ((i + 1) * n + j) as u64)?
                        + client.read_float(src, (i * n + j - 1) as u64)?
                        + client.read_float(src, (i * n + j + 1) as u64)?);
                client.write_float(dst, (i * n + j) as u64, v)?;
            }
        }
        client.barrier(barriers::SWEEP)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsm_core::cluster::ClusterBuilder;
    use hdsm_platform::spec::PlatformSpec;

    #[test]
    fn serial_oracle_is_stable() {
        let n = 8;
        let g = expected_grid(n, 3, 10);
        // Boundary unchanged.
        assert_eq!(g[1], 100.0);
        assert_eq!(g[(n - 1) * n + 3], 0.0);
        // Interior bounded by boundary values.
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                assert!(g[i * n + j] >= 0.0 && g[i * n + j] <= 100.0);
            }
        }
    }

    #[test]
    fn heterogeneous_jacobi_matches_serial() {
        let n = 12;
        let seed = 17;
        let sweeps = 5;
        let outcome = ClusterBuilder::new()
            .gthv(gthv_def(n))
            .home(PlatformSpec::linux_x86())
            .worker(PlatformSpec::solaris_sparc())
            .worker(PlatformSpec::linux_x86())
            .barriers(1)
            .init(move |g| init(g, n, seed))
            .run(move |c, info| run_worker(c, info, n, sweeps))
            .unwrap();
        assert!(verify(&outcome.final_gthv, n, seed, sweeps));
    }

    #[test]
    fn even_and_odd_sweep_counts() {
        for sweeps in [2, 3] {
            let n = 10;
            let seed = 23;
            let outcome = ClusterBuilder::new()
                .gthv(gthv_def(n))
                .worker(PlatformSpec::solaris_sparc())
                .worker(PlatformSpec::solaris_sparc64())
                .barriers(1)
                .init(move |g| init(g, n, seed))
                .run(move |c, info| run_worker(c, info, n, sweeps))
                .unwrap();
            assert!(
                verify(&outcome.final_gthv, n, seed, sweeps),
                "sweeps={sweeps}"
            );
        }
    }
}
