#![warn(missing_docs)]

//! Parallel workloads running on the heterogeneous DSM.
//!
//! The paper evaluates matrix multiplication and LU decomposition with
//! square matrices of 99, 138, 177, 216 and 255, three threads (two of
//! them migrated to remote nodes), on Linux/Linux, Solaris/Solaris and
//! Solaris/Linux pairs (§5). [`matmul`] and [`lu`] reproduce those
//! workloads; [`jacobi`] and [`sor`] extend the suite with the classic
//! DSM stencil benchmarks.
//!
//! Each workload provides a `gthv_def` (the shared structure), an `init`
//! (home-side initialisation), a `run_worker` body for
//! [`hdsm_core::cluster::ClusterBuilder::run`], and a serial oracle used
//! by `verify` to check the distributed result.

pub mod jacobi;
pub mod lu;
pub mod matmul;
pub mod sor;
pub mod workload;

pub use workload::{paper_pairs, paper_sizes, PlatformPair, SyncMode};
