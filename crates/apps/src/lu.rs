//! Distributed LU decomposition — the paper's second workload.
//!
//! In-place Doolittle elimination without pivoting on a diagonally
//! dominant matrix (so no pivoting is needed), rows distributed cyclically
//! across workers, one barrier per elimination step. Each step rewrites
//! the whole trailing submatrix, which is why the paper observes that
//! "the LU-decomposition example transfers more data per update than the
//! matrix multiplication example" (§5, Figures 10 vs 11).

use crate::workload::det_f64;
use hdsm_core::client::{DsdClient, DsdError};
use hdsm_core::cluster::WorkerInfo;
use hdsm_core::gthv::{GthvDef, GthvInstance};
use hdsm_platform::ctype::StructBuilder;
use hdsm_platform::scalar::ScalarKind;

/// Entry ids of the LU structure.
pub mod entries {
    /// `double M[n*n]` — factorised in place.
    pub const M: u32 = 0;
    /// `int n`.
    pub const N: u32 = 1;
}

/// Barrier ids.
pub mod barriers {
    use hdsm_core::BarrierId;
    /// Reused every elimination step (and once up front).
    pub const STEP: BarrierId = BarrierId::new(0);
}

/// Shared structure: `struct { double M[n*n]; int n; }`.
pub fn gthv_def(n: usize) -> GthvDef {
    GthvDef::new(
        StructBuilder::new("GThV_lu")
            .array("M", ScalarKind::Double, n * n)
            .scalar("n", ScalarKind::Int)
            .build()
            .expect("lu struct"),
    )
    .expect("valid def")
}

/// Deterministic diagonally dominant matrix.
pub fn source_matrix(n: usize, seed: u64) -> Vec<f64> {
    let mut m = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            m[i * n + j] = det_f64(seed, (i * n + j) as u64);
        }
        // Dominant diagonal keeps elimination stable without pivoting.
        m[i * n + i] = n as f64 + det_f64(seed ^ 0xF00D, i as u64).abs();
    }
    m
}

/// Home-side initialisation.
pub fn init(g: &mut GthvInstance, n: usize, seed: u64) {
    let m = source_matrix(n, seed);
    for (i, v) in m.iter().enumerate() {
        g.write_float(entries::M, i as u64, *v).expect("init M");
    }
    g.write_int(entries::N, 0, n as i128).expect("init n");
}

/// Serial oracle: in-place Doolittle elimination.
pub fn expected_lu(n: usize, seed: u64) -> Vec<f64> {
    let mut m = source_matrix(n, seed);
    for k in 0..n.saturating_sub(1) {
        let pivot = m[k * n + k];
        for i in (k + 1)..n {
            let factor = m[i * n + k] / pivot;
            m[i * n + k] = factor;
            for j in (k + 1)..n {
                m[i * n + j] -= factor * m[k * n + j];
            }
        }
    }
    m
}

/// Verify the distributed result against the oracle within a tolerance.
pub fn verify(g: &GthvInstance, n: usize, seed: u64) -> bool {
    let want = expected_lu(n, seed);
    for (i, w) in want.iter().enumerate() {
        match g.read_float(entries::M, i as u64) {
            Ok(v) if (v - w).abs() <= 1e-9 * (1.0 + w.abs()) => {}
            _ => return false,
        }
    }
    true
}

/// SPMD worker body: cyclic row distribution, one barrier per step.
///
/// Step `k`: every worker that owns rows below `k` eliminates them against
/// row `k`, then everyone synchronizes so the next pivot row is visible
/// everywhere. Barrier index 0 is reused every iteration (barrier state
/// resets after each release).
pub fn run_worker(client: &mut DsdClient, info: &WorkerInfo, n: usize) -> Result<(), DsdError> {
    // Opening barrier pulls the initial matrix.
    client.barrier(barriers::STEP)?;
    debug_assert_eq!(client.read_int(entries::N, 0)? as usize, n);
    for k in 0..n.saturating_sub(1) {
        let pivot = client.read_float(entries::M, (k * n + k) as u64)?;
        // Pivot row snapshot (local reads).
        let mut pivot_row = Vec::with_capacity(n - k);
        for j in k..n {
            pivot_row.push(client.read_float(entries::M, (k * n + j) as u64)?);
        }
        for i in (k + 1)..n {
            if i % info.n_workers != info.index {
                continue; // cyclic ownership
            }
            let factor = client.read_float(entries::M, (i * n + k) as u64)? / pivot;
            client.write_float(entries::M, (i * n + k) as u64, factor)?;
            for j in (k + 1)..n {
                let cur = client.read_float(entries::M, (i * n + j) as u64)?;
                client.write_float(
                    entries::M,
                    (i * n + j) as u64,
                    cur - factor * pivot_row[j - k],
                )?;
            }
        }
        client.barrier(barriers::STEP)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsm_core::cluster::ClusterBuilder;
    use hdsm_platform::spec::PlatformSpec;

    #[test]
    fn oracle_reconstructs_source() {
        // L * U must reproduce the source matrix.
        let n = 8;
        let seed = 11;
        let lu = expected_lu(n, seed);
        let src = source_matrix(n, seed);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..=i.min(j) {
                    let l = if k == i { 1.0 } else { lu[i * n + k] };
                    let u = lu[k * n + j];
                    if k <= j && k < i {
                        acc += lu[i * n + k] * u;
                    } else if k == i && k <= j {
                        acc += l * u;
                    }
                }
                assert!(
                    (acc - src[i * n + j]).abs() < 1e-9,
                    "L*U mismatch at ({i},{j}): {acc} vs {}",
                    src[i * n + j]
                );
            }
        }
    }

    #[test]
    fn heterogeneous_lu_is_correct() {
        let n = 16;
        let seed = 21;
        let outcome = ClusterBuilder::new()
            .gthv(gthv_def(n))
            .home(PlatformSpec::solaris_sparc())
            .worker(PlatformSpec::linux_x86())
            .worker(PlatformSpec::solaris_sparc())
            .barriers(1)
            .init(move |g| init(g, n, seed))
            .run(move |c, info| run_worker(c, info, n))
            .unwrap();
        assert!(verify(&outcome.final_gthv, n, seed));
        assert!(outcome.home_conv.scalars_converted > 0);
    }

    #[test]
    fn three_workers_mixed_platforms() {
        let n = 12;
        let seed = 31;
        let outcome = ClusterBuilder::new()
            .gthv(gthv_def(n))
            .home(PlatformSpec::linux_x86())
            .worker(PlatformSpec::linux_x86())
            .worker(PlatformSpec::solaris_sparc())
            .worker(PlatformSpec::solaris_sparc64())
            .barriers(1)
            .init(move |g| init(g, n, seed))
            .run(move |c, info| run_worker(c, info, n))
            .unwrap();
        assert!(verify(&outcome.final_gthv, n, seed));
    }

    #[test]
    fn lu_ships_more_bytes_than_matmul_at_same_size() {
        // The §5 observation that motivates Figure 11 vs Figure 10.
        let n = 16;
        let seed = 1;
        let lu_out = ClusterBuilder::new()
            .gthv(gthv_def(n))
            .worker(PlatformSpec::linux_x86())
            .worker(PlatformSpec::linux_x86())
            .barriers(1)
            .init(move |g| init(g, n, seed))
            .run(move |c, info| run_worker(c, info, n))
            .unwrap();
        let mm_out = ClusterBuilder::new()
            .gthv(crate::matmul::gthv_def(n))
            .worker(PlatformSpec::linux_x86())
            .worker(PlatformSpec::linux_x86())
            .barriers(2)
            .init(move |g| crate::matmul::init(g, n, seed))
            .run(move |c, info| {
                crate::matmul::run_worker(c, info, n, crate::workload::SyncMode::Barrier)
            })
            .unwrap();
        let lu_bytes: u64 = lu_out.worker_costs.iter().map(|c| c.bytes_applied).sum();
        let mm_bytes: u64 = mm_out.worker_costs.iter().map(|c| c.bytes_applied).sum();
        assert!(
            lu_bytes > mm_bytes,
            "LU should move more update data: {lu_bytes} vs {mm_bytes}"
        );
    }
}
