//! Distributed integer matrix multiplication — the paper's primary
//! evaluation workload (§5), whose shared structure is exactly Figure 4:
//!
//! ```c
//! struct GThV_t { void *GThP; int A[n*n]; int B[n*n]; int C[n*n]; int n; }
//! ```
//!
//! Workers compute disjoint row blocks of `C = A * B`. With
//! [`SyncMode::Barrier`] the initial matrices arrive at the opening
//! barrier and each worker's `C` rows ship at the closing barrier; with
//! [`SyncMode::Lock`] each worker additionally publishes its block under
//! the distributed mutex (more, smaller updates — the lock/unlock path of
//! Figure 5).
//!
//! Also provides [`MatmulComputation`], a migratable version for the
//! adaptive cluster: one `C` row per adaptation quantum.

use crate::workload::{block_rows, det_i32, SyncMode};
use hdsm_core::client::{DsdClient, DsdError};
use hdsm_core::cluster::WorkerInfo;
use hdsm_core::gthv::{GthvDef, GthvInstance};
use hdsm_migthread::compute::{Computation, ProgramRegistry, StepStatus};
use hdsm_migthread::packfmt::MigrateError;
use hdsm_migthread::state::{ThreadState, TypedBlock};
use hdsm_platform::ctype::{CType, StructBuilder};
use hdsm_platform::scalar::ScalarKind;
use hdsm_platform::spec::Platform;
use hdsm_platform::value::Value;

/// Entry ids of the Figure 4 structure.
pub mod entries {
    /// `void *GThP`.
    pub const GTHP: u32 = 0;
    /// `int A[n*n]`.
    pub const A: u32 = 1;
    /// `int B[n*n]`.
    pub const B: u32 = 2;
    /// `int C[n*n]`.
    pub const C: u32 = 3;
    /// `int n`.
    pub const N: u32 = 4;
}

/// Barrier ids used by the barrier-mode worker.
pub mod barriers {
    use hdsm_core::BarrierId;
    /// Opening barrier (pulls the initial matrices).
    pub const START: BarrierId = BarrierId::new(0);
    /// Closing barrier (publishes and redistributes `C`).
    pub const END: BarrierId = BarrierId::new(1);
}

/// Mutex ids used by the lock-mode worker.
pub mod locks {
    use hdsm_core::LockId;
    /// Protects the shared accumulation into `C`.
    pub const C: LockId = LockId::new(0);
}

/// The Figure 4 shared structure for `n × n` matrices.
pub fn gthv_def(n: usize) -> GthvDef {
    GthvDef::new(
        StructBuilder::new("GThV_t")
            .scalar("GThP", ScalarKind::Ptr)
            .array("A", ScalarKind::Int, n * n)
            .array("B", ScalarKind::Int, n * n)
            .array("C", ScalarKind::Int, n * n)
            .scalar("n", ScalarKind::Int)
            .build()
            .expect("figure-4 struct"),
    )
    .expect("valid def")
}

/// Home-side initialisation: deterministic A and B, zero C, store `n`.
pub fn init(g: &mut GthvInstance, n: usize, seed: u64) {
    for i in 0..(n * n) as u64 {
        g.write_int(entries::A, i, i128::from(det_i32(seed, i)))
            .expect("init A");
        g.write_int(entries::B, i, i128::from(det_i32(seed ^ 0xABCD, i)))
            .expect("init B");
    }
    g.write_int(entries::N, 0, n as i128).expect("init n");
    // GThP points at A, as in the paper's example structure.
    g.write_ptr(entries::GTHP, 0, Some((entries::A, 0)))
        .expect("init GThP");
}

/// Serial oracle: `C = A * B` over the same deterministic inputs.
pub fn expected_c(n: usize, seed: u64) -> Vec<i64> {
    let nn = n * n;
    let a: Vec<i64> = (0..nn as u64)
        .map(|i| i64::from(det_i32(seed, i)))
        .collect();
    let b: Vec<i64> = (0..nn as u64)
        .map(|i| i64::from(det_i32(seed ^ 0xABCD, i)))
        .collect();
    let mut c = vec![0i64; nn];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            if aik == 0 {
                continue;
            }
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    c
}

/// Verify a final instance against the oracle.
pub fn verify(g: &GthvInstance, n: usize, seed: u64) -> bool {
    let want = expected_c(n, seed);
    for (i, w) in want.iter().enumerate() {
        match g.read_int(entries::C, i as u64) {
            Ok(v) if v == i128::from(*w) => {}
            _ => return false,
        }
    }
    g.read_int(entries::N, 0).map(|v| v as usize) == Ok(n)
}

/// Read a full row of a matrix entry from the local copy.
fn read_row(c: &DsdClient, entry: u32, n: usize, row: usize) -> Result<Vec<i64>, DsdError> {
    let mut out = Vec::with_capacity(n);
    for j in 0..n {
        out.push(c.read_int(entry, (row * n + j) as u64)? as i64);
    }
    Ok(out)
}

/// SPMD worker body.
pub fn run_worker(
    client: &mut DsdClient,
    info: &WorkerInfo,
    n: usize,
    mode: SyncMode,
) -> Result<(), DsdError> {
    // Pull the initial matrices.
    client.barrier(barriers::START)?;
    debug_assert_eq!(client.read_int(entries::N, 0)? as usize, n);

    let rows = block_rows(n, info.index, info.n_workers);
    // Load B once (column access pattern).
    let mut b = Vec::with_capacity(n * n);
    for i in 0..(n * n) as u64 {
        b.push(client.read_int(entries::B, i)? as i64);
    }
    match mode {
        SyncMode::Barrier => {
            for i in rows {
                let a_row = read_row(client, entries::A, n, i)?;
                for j in 0..n {
                    let mut acc = 0i64;
                    for k in 0..n {
                        acc += a_row[k] * b[k * n + j];
                    }
                    client.write_int(entries::C, (i * n + j) as u64, i128::from(acc))?;
                }
            }
            client.barrier(barriers::END)?;
        }
        SyncMode::Lock => {
            // Compute locally, then publish the block under the mutex —
            // one lock/unlock round per worker, like the paper's
            // lock-protected critical sections.
            let mut block: Vec<(u64, i64)> = Vec::new();
            for i in rows {
                let a_row = read_row(client, entries::A, n, i)?;
                for j in 0..n {
                    let mut acc = 0i64;
                    for k in 0..n {
                        acc += a_row[k] * b[k * n + j];
                    }
                    block.push(((i * n + j) as u64, acc));
                }
            }
            let mut c = client.lock(locks::C)?;
            for (idx, v) in block {
                c.write_int(entries::C, idx, i128::from(v))?;
            }
            c.unlock()?;
            client.barrier(barriers::END)?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Migratable version for the adaptive cluster.
// ---------------------------------------------------------------------

/// Program name in the registry.
pub const PROGRAM: &str = "matmul";

fn mthv_type() -> CType {
    CType::Struct(
        StructBuilder::new("MThV")
            .scalar("n", ScalarKind::Int)
            .scalar("row_begin", ScalarKind::Int)
            .scalar("row_end", ScalarKind::Int)
            .scalar("next_row", ScalarKind::Int)
            .scalar("phase", ScalarKind::Int)
            .build()
            .expect("MThV"),
    )
}

/// Declared state shape (used for registry registration and restore).
pub fn declared_state(platform: &Platform) -> ThreadState {
    let mut st = ThreadState::new(PROGRAM);
    st.push_block("MThV", TypedBlock::zeroed(mthv_type(), platform.clone()));
    st
}

/// Starting state for a worker covering `rows`.
pub fn start_state(platform: &Platform, n: usize, rows: std::ops::Range<usize>) -> ThreadState {
    let mut st = declared_state(platform);
    let b = st.block_mut("MThV").expect("MThV");
    b.set_field(0, &Value::Int(n as i128)).unwrap();
    b.set_field(1, &Value::Int(rows.start as i128)).unwrap();
    b.set_field(2, &Value::Int(rows.end as i128)).unwrap();
    b.set_field(3, &Value::Int(rows.start as i128)).unwrap();
    b.set_field(4, &Value::Int(0)).unwrap(); // phase 0: before start barrier
    st
}

/// Migratable matrix multiplication: phase 0 pulls the matrices at the
/// start barrier; each subsequent quantum computes one row of `C`; the
/// final quantum publishes through the end barrier. Every quantum boundary
/// is an adaptation point.
pub struct MatmulComputation {
    state: ThreadState,
}

impl MatmulComputation {
    /// Registry factory.
    pub fn factory(
        state: ThreadState,
        _platform: Platform,
    ) -> Result<Box<dyn Computation<DsdClient>>, MigrateError> {
        Ok(Box::new(MatmulComputation { state }))
    }

    fn get(&self, field: usize) -> i128 {
        self.state
            .block("MThV")
            .expect("MThV")
            .get_field(field)
            .expect("field")
            .as_int()
    }

    fn set(&mut self, field: usize, v: i128) {
        self.state
            .block_mut("MThV")
            .expect("MThV")
            .set_field(field, &Value::Int(v))
            .expect("field");
    }
}

impl Computation<DsdClient> for MatmulComputation {
    fn program(&self) -> &str {
        PROGRAM
    }

    fn step(&mut self, client: &mut DsdClient) -> StepStatus {
        let phase = self.get(4);
        match phase {
            0 => {
                client.barrier(barriers::START).expect("start barrier");
                self.set(4, 1);
                StepStatus::Yield
            }
            1 => {
                let n = self.get(0) as usize;
                let row = self.get(3) as usize;
                let end = self.get(2) as usize;
                if row >= end {
                    client.barrier(barriers::END).expect("end barrier");
                    self.set(4, 2);
                    return StepStatus::Done;
                }
                for j in 0..n {
                    let mut acc = 0i64;
                    for k in 0..n {
                        let a = client.read_int(entries::A, (row * n + k) as u64).unwrap() as i64;
                        let b = client.read_int(entries::B, (k * n + j) as u64).unwrap() as i64;
                        acc += a * b;
                    }
                    client
                        .write_int(entries::C, (row * n + j) as u64, i128::from(acc))
                        .unwrap();
                }
                self.set(3, (row + 1) as i128);
                StepStatus::Yield
            }
            _ => StepStatus::Done,
        }
    }

    fn capture(&self) -> ThreadState {
        self.state.clone()
    }
}

/// Build a registry containing the matmul program.
pub fn registry(platform: &Platform) -> ProgramRegistry<DsdClient> {
    let mut r = ProgramRegistry::new();
    r.register(
        PROGRAM,
        declared_state(platform),
        MatmulComputation::factory,
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsm_core::cluster::ClusterBuilder;
    use hdsm_platform::spec::PlatformSpec;

    #[test]
    fn oracle_small_case() {
        // 2x2 hand check with a fixed seed.
        let n = 2;
        let seed = 7;
        let c = expected_c(n, seed);
        let a: Vec<i64> = (0..4).map(|i| i64::from(det_i32(seed, i))).collect();
        let b: Vec<i64> = (0..4)
            .map(|i| i64::from(det_i32(seed ^ 0xABCD, i)))
            .collect();
        assert_eq!(c[0], a[0] * b[0] + a[1] * b[2]);
        assert_eq!(c[3], a[2] * b[1] + a[3] * b[3]);
    }

    #[test]
    fn barrier_mode_heterogeneous_cluster_is_correct() {
        let n = 20;
        let seed = 42;
        let outcome = ClusterBuilder::new()
            .gthv(gthv_def(n))
            .home(PlatformSpec::solaris_sparc())
            .worker(PlatformSpec::linux_x86())
            .worker(PlatformSpec::solaris_sparc())
            .worker(PlatformSpec::linux_x86_64())
            .barriers(2)
            .init(move |g| init(g, n, seed))
            .run(move |c, info| run_worker(c, info, n, SyncMode::Barrier))
            .unwrap();
        assert!(verify(&outcome.final_gthv, n, seed));
        // Heterogeneous workers really converted.
        assert!(outcome.home_conv.scalars_converted > 0);
    }

    #[test]
    fn lock_mode_matches_barrier_mode() {
        let n = 16;
        let seed = 3;
        let outcome = ClusterBuilder::new()
            .gthv(gthv_def(n))
            .home(PlatformSpec::linux_x86())
            .worker(PlatformSpec::linux_x86())
            .worker(PlatformSpec::solaris_sparc())
            .locks(1)
            .barriers(2)
            .init(move |g| init(g, n, seed))
            .run(move |c, info| run_worker(c, info, n, SyncMode::Lock))
            .unwrap();
        assert!(verify(&outcome.final_gthv, n, seed));
    }

    #[test]
    fn single_worker_homogeneous() {
        let n = 12;
        let seed = 9;
        let outcome = ClusterBuilder::new()
            .gthv(gthv_def(n))
            .worker(PlatformSpec::linux_x86())
            .barriers(2)
            .init(move |g| init(g, n, seed))
            .run(move |c, info| run_worker(c, info, n, SyncMode::Barrier))
            .unwrap();
        assert!(verify(&outcome.final_gthv, n, seed));
        // Homogeneous pair: the home applied worker updates by memcpy only.
        assert_eq!(outcome.home_conv.scalars_swapped, 0);
    }

    #[test]
    fn migratable_version_with_mid_run_migrations() {
        use hdsm_core::cluster::MigrationEvent;
        let n = 12;
        let seed = 5;
        let linux = PlatformSpec::linux_x86();
        let sparc = PlatformSpec::solaris_sparc();
        let reg = registry(&linux);
        let starts = vec![
            start_state(&linux, n, block_rows(n, 0, 2)),
            start_state(&linux, n, block_rows(n, 1, 2)),
        ];
        let schedule = vec![
            MigrationEvent {
                worker: 0,
                after_steps: 3,
                to_platform: sparc.clone(),
            },
            MigrationEvent {
                worker: 1,
                after_steps: 5,
                to_platform: PlatformSpec::solaris_sparc64(),
            },
        ];
        let outcome = ClusterBuilder::new()
            .gthv(gthv_def(n))
            .home(PlatformSpec::linux_x86())
            .worker(linux.clone())
            .worker(linux.clone())
            .barriers(2)
            .init(move |g| init(g, n, seed))
            .run_adaptive(&reg, starts, &schedule)
            .unwrap();
        assert!(verify(&outcome.final_gthv, n, seed));
        assert_eq!(outcome.migration_stats.migrations, 2);
        assert!(outcome.migration_stats.image_bytes > 0);
        // The migrated threads finished on their destination platforms.
        assert_eq!(
            outcome.results[0].block("MThV").unwrap().platform.name,
            "solaris-sparc"
        );
    }
}
