//! Red-black successive over-relaxation (SOR) — the second stencil
//! extension. The red/black colouring makes each half-sweep's writes
//! *strided* (every other element), a deliberately diff-hostile pattern:
//! the twin/diff layer produces many small runs and the coalescing layer
//! cannot merge across the untouched black (or red) elements. Together
//! with Jacobi's contiguous stripes this brackets the update-shape
//! spectrum for the benchmarks.

use crate::workload::block_rows;
use hdsm_core::client::{DsdClient, DsdError};
use hdsm_core::cluster::WorkerInfo;
use hdsm_core::gthv::{GthvDef, GthvInstance};
use hdsm_platform::ctype::StructBuilder;
use hdsm_platform::scalar::ScalarKind;

/// Entry ids.
pub mod entries {
    /// `double grid[n*n]` (updated in place).
    pub const G: u32 = 0;
    /// `int n`.
    pub const N: u32 = 1;
}

/// Barrier ids.
pub mod barriers {
    use hdsm_core::BarrierId;
    /// Reused every half-sweep (red then black).
    pub const SWEEP: BarrierId = BarrierId::new(0);
}

/// Relaxation factor.
pub const OMEGA: f64 = 1.5;

/// Shared structure.
pub fn gthv_def(n: usize) -> GthvDef {
    GthvDef::new(
        StructBuilder::new("GThV_sor")
            .array("grid", ScalarKind::Double, n * n)
            .scalar("n", ScalarKind::Int)
            .build()
            .expect("sor struct"),
    )
    .expect("valid def")
}

/// The initial grid (same boundary scheme as Jacobi).
pub fn source_grid(n: usize, seed: u64) -> Vec<f64> {
    crate::jacobi::source_grid(n, seed)
}

/// Home-side initialisation.
pub fn init(g: &mut GthvInstance, n: usize, seed: u64) {
    for (i, v) in source_grid(n, seed).iter().enumerate() {
        g.write_float(entries::G, i as u64, *v).expect("init grid");
    }
    g.write_int(entries::N, 0, n as i128).expect("init n");
}

fn relax(grid: &mut [f64], n: usize, i: usize, j: usize) {
    let stencil = 0.25
        * (grid[(i - 1) * n + j]
            + grid[(i + 1) * n + j]
            + grid[i * n + j - 1]
            + grid[i * n + j + 1]);
    grid[i * n + j] += OMEGA * (stencil - grid[i * n + j]);
}

/// Serial oracle: `sweeps` red-black SOR sweeps.
pub fn expected_grid(n: usize, seed: u64, sweeps: usize) -> Vec<f64> {
    let mut g = source_grid(n, seed);
    for _ in 0..sweeps {
        for colour in 0..2 {
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    if (i + j) % 2 == colour {
                        relax(&mut g, n, i, j);
                    }
                }
            }
        }
    }
    g
}

/// Verify the distributed result.
pub fn verify(g: &GthvInstance, n: usize, seed: u64, sweeps: usize) -> bool {
    let want = expected_grid(n, seed, sweeps);
    for (i, w) in want.iter().enumerate() {
        match g.read_float(entries::G, i as u64) {
            Ok(v) if (v - w).abs() <= 1e-9 * (1.0 + w.abs()) => {}
            _ => return false,
        }
    }
    true
}

/// SPMD worker body: row blocks, one barrier per half-sweep (red then
/// black), strided writes inside each row.
pub fn run_worker(
    client: &mut DsdClient,
    info: &WorkerInfo,
    n: usize,
    sweeps: usize,
) -> Result<(), DsdError> {
    client.barrier(barriers::SWEEP)?;
    let rows = block_rows(n, info.index, info.n_workers);
    for _ in 0..sweeps {
        for colour in 0..2 {
            for i in rows.clone() {
                if i == 0 || i == n - 1 {
                    continue;
                }
                for j in 1..n - 1 {
                    if (i + j) % 2 != colour {
                        continue;
                    }
                    let stencil = 0.25
                        * (client.read_float(entries::G, ((i - 1) * n + j) as u64)?
                            + client.read_float(entries::G, ((i + 1) * n + j) as u64)?
                            + client.read_float(entries::G, (i * n + j - 1) as u64)?
                            + client.read_float(entries::G, (i * n + j + 1) as u64)?);
                    let cur = client.read_float(entries::G, (i * n + j) as u64)?;
                    client.write_float(
                        entries::G,
                        (i * n + j) as u64,
                        cur + OMEGA * (stencil - cur),
                    )?;
                }
            }
            client.barrier(barriers::SWEEP)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsm_core::cluster::ClusterBuilder;
    use hdsm_platform::spec::PlatformSpec;

    #[test]
    fn sor_converges_faster_than_jacobi() {
        // Sanity property of over-relaxation on the same problem: after
        // the same number of sweeps, SOR is closer to the steady state
        // than Jacobi for this boundary setup. We check residual decrease
        // rather than exact values.
        let n = 12;
        let seed = 3;
        let initial = source_grid(n, seed);
        let after = expected_grid(n, seed, 20);
        let resid = |g: &[f64]| {
            let mut r = 0.0f64;
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    let s = 0.25
                        * (g[(i - 1) * n + j]
                            + g[(i + 1) * n + j]
                            + g[i * n + j - 1]
                            + g[i * n + j + 1]);
                    r += (s - g[i * n + j]).abs();
                }
            }
            r
        };
        assert!(resid(&after) < resid(&initial) * 0.5);
    }

    #[test]
    fn heterogeneous_sor_matches_serial() {
        let n = 10;
        let seed = 29;
        let sweeps = 4;
        let outcome = ClusterBuilder::new()
            .gthv(gthv_def(n))
            .home(PlatformSpec::solaris_sparc())
            .worker(PlatformSpec::linux_x86())
            .worker(PlatformSpec::solaris_sparc())
            .barriers(1)
            .init(move |g| init(g, n, seed))
            .run(move |c, info| run_worker(c, info, n, sweeps))
            .unwrap();
        assert!(verify(&outcome.final_gthv, n, seed, sweeps));
    }

    #[test]
    fn strided_writes_produce_more_updates_than_jacobi() {
        // The red-black pattern defeats coalescing: expect strictly more
        // update frames than the contiguous Jacobi stripes at equal size.
        let n = 12;
        let seed = 5;
        let sor_out = ClusterBuilder::new()
            .gthv(gthv_def(n))
            .worker(PlatformSpec::linux_x86())
            .worker(PlatformSpec::linux_x86())
            .barriers(1)
            .init(move |g| init(g, n, seed))
            .run(move |c, info| run_worker(c, info, n, 1))
            .unwrap();
        let jac_out = ClusterBuilder::new()
            .gthv(crate::jacobi::gthv_def(n))
            .worker(PlatformSpec::linux_x86())
            .worker(PlatformSpec::linux_x86())
            .barriers(1)
            .init(move |g| crate::jacobi::init(g, n, seed))
            .run(move |c, info| crate::jacobi::run_worker(c, info, n, 1))
            .unwrap();
        let sor_updates: u64 = sor_out.worker_costs.iter().map(|c| c.updates_sent).sum();
        let jac_updates: u64 = jac_out.worker_costs.iter().map(|c| c.updates_sent).sum();
        assert!(
            sor_updates > jac_updates,
            "red-black should fragment updates: {sor_updates} vs {jac_updates}"
        );
    }
}
