//! Common workload vocabulary: the paper's matrix sizes and platform
//! pairs, and the synchronization style knob.

use hdsm_platform::spec::{Platform, PlatformSpec};

/// The paper's matrix sizes (§5 and Figures 6–11).
pub fn paper_sizes() -> [usize; 5] {
    [99, 138, 177, 216, 255]
}

/// A named platform pair from the paper's evaluation.
#[derive(Debug, Clone)]
pub struct PlatformPair {
    /// Two-letter label used in Figures 6–7 ("LL", "SS", "SL").
    pub label: &'static str,
    /// Home-node platform.
    pub home: Platform,
    /// Remote/worker platform.
    pub remote: Platform,
}

impl PlatformPair {
    /// Is this pair heterogeneous (layout rules differ)?
    pub fn heterogeneous(&self) -> bool {
        !self.home.homogeneous_with(&self.remote)
    }
}

/// The three pairs of the paper: Linux/Linux, Solaris/Solaris,
/// Solaris/Linux.
pub fn paper_pairs() -> [PlatformPair; 3] {
    [
        PlatformPair {
            label: "LL",
            home: PlatformSpec::linux_x86(),
            remote: PlatformSpec::linux_x86(),
        },
        PlatformPair {
            label: "SS",
            home: PlatformSpec::solaris_sparc(),
            remote: PlatformSpec::solaris_sparc(),
        },
        PlatformPair {
            label: "SL",
            home: PlatformSpec::solaris_sparc(),
            remote: PlatformSpec::linux_x86(),
        },
    ]
}

/// How workers synchronize their updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Pull initial state and publish results through barriers.
    Barrier,
    /// Serialize result publication through the distributed mutex
    /// (exercises the `MTh_lock`/`MTh_unlock` path of paper §4.1/§4.2).
    Lock,
}

/// Deterministic pseudo-random i32 in a small range (xorshift-based; keeps
/// workloads reproducible across platforms without pulling in `rand` for
/// the library path).
pub fn det_i32(seed: u64, i: u64) -> i32 {
    let mut x = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        | 1;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    ((x % 199) as i32) - 99
}

/// Deterministic pseudo-random f64 in (-1, 1).
pub fn det_f64(seed: u64, i: u64) -> f64 {
    f64::from(det_i32(seed, i)) / 100.0
}

/// Row partition for worker `w` of `n_workers` over `n` rows:
/// contiguous blocks, remainder spread over the first workers.
pub fn block_rows(n: usize, w: usize, n_workers: usize) -> std::ops::Range<usize> {
    let base = n / n_workers;
    let rem = n % n_workers;
    let start = w * base + w.min(rem);
    let len = base + usize::from(w < rem);
    start..start + len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters() {
        assert_eq!(paper_sizes(), [99, 138, 177, 216, 255]);
        let pairs = paper_pairs();
        assert!(!pairs[0].heterogeneous());
        assert!(!pairs[1].heterogeneous());
        assert!(pairs[2].heterogeneous());
        assert_eq!(pairs[2].label, "SL");
    }

    #[test]
    fn block_rows_cover_exactly() {
        for n in [1, 7, 99, 100, 255] {
            for w_count in 1..=5 {
                let mut covered = vec![false; n];
                for w in 0..w_count {
                    for r in block_rows(n, w, w_count) {
                        assert!(!covered[r], "row {r} covered twice");
                        covered[r] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "n={n} w={w_count}");
            }
        }
    }

    #[test]
    fn deterministic_generators() {
        assert_eq!(det_i32(1, 5), det_i32(1, 5));
        assert_ne!(det_i32(1, 5), det_i32(1, 6));
        let f = det_f64(2, 9);
        assert!((-1.0..1.0).contains(&f));
    }
}
