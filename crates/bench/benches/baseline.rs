//! Ablation: DSD's heterogeneity machinery (index abstraction + tags +
//! conversion) vs the traditional homogeneous twin/diff page DSM it is
//! built on. On a homogeneous pair the two produce identical results; the
//! difference in time is the price of heterogeneity-readiness the paper's
//! §4 design pays ("The index mapping can be done very rapidly and adds
//! very little overhead to the standard twin/diff method").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdsm_core::baseline::{apply_raw_diffs, extract_raw_diffs, pack_raw, unpack_raw};
use hdsm_core::gthv::{GthvDef, GthvInstance};
use hdsm_core::runs::abstract_diffs;
use hdsm_core::update::{apply_batch, extract_updates};
use hdsm_memory::diff::diff_pages;
use hdsm_platform::ctype::StructBuilder;
use hdsm_platform::scalar::ScalarKind;
use hdsm_platform::spec::{Platform, PlatformSpec};
use hdsm_tags::convert::ConversionStats;
use hdsm_tags::wire::{pack_batch, unpack_batch};
use std::hint::black_box;

fn dirty_instance(n: usize, p: Platform) -> GthvInstance {
    let def = GthvDef::new(
        StructBuilder::new("G")
            .array("C", ScalarKind::Int, n * n)
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut g = GthvInstance::new(def, p);
    g.space_mut().protect_all();
    // A worker's stripe plus scattered single-element writes.
    for i in 0..(n * n / 3) as u64 {
        g.write_int(0, i, i as i128 + 1).unwrap();
    }
    for i in ((n * n / 2)..(n * n)).step_by(97) {
        g.write_int(0, i as u64, -7).unwrap();
    }
    g
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_vs_dsd/homogeneous_end_to_end");
    for n in [99usize, 255] {
        group.bench_function(BenchmarkId::new("raw_page_dsm", n), |b| {
            let src = dirty_instance(n, PlatformSpec::linux_x86());
            let mut dst = GthvInstance::new(src.def().clone(), PlatformSpec::linux_x86());
            b.iter(|| {
                let diffs = extract_raw_diffs(&src);
                let packed = pack_raw(&diffs);
                let unpacked = unpack_raw(packed).unwrap();
                apply_raw_diffs(&mut dst, src.platform(), &unpacked).unwrap();
                black_box(&dst);
            })
        });
        group.bench_function(BenchmarkId::new("dsd_index_tag", n), |b| {
            let src = dirty_instance(n, PlatformSpec::linux_x86());
            let mut dst = GthvInstance::new(src.def().clone(), PlatformSpec::linux_x86());
            b.iter(|| {
                let ranges = abstract_diffs(src.table(), &diff_pages(src.space()));
                let ups = extract_updates(&src, &ranges).unwrap();
                let packed = pack_batch(&ups);
                let unpacked = unpack_batch(packed).unwrap();
                let mut stats = ConversionStats::default();
                apply_batch(&mut dst, &unpacked, &mut stats).unwrap();
                black_box(&dst);
            })
        });
        // What the baseline *cannot* do at any price: the heterogeneous
        // receiver. Only DSD has a bar here.
        group.bench_function(BenchmarkId::new("dsd_heterogeneous", n), |b| {
            let src = dirty_instance(n, PlatformSpec::linux_x86());
            let mut dst = GthvInstance::new(src.def().clone(), PlatformSpec::solaris_sparc());
            b.iter(|| {
                let ranges = abstract_diffs(src.table(), &diff_pages(src.space()));
                let ups = extract_updates(&src, &ranges).unwrap();
                let packed = pack_batch(&ups);
                let unpacked = unpack_batch(packed).unwrap();
                let mut stats = ConversionStats::default();
                apply_batch(&mut dst, &unpacked, &mut stats).unwrap();
                black_box(&dst);
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = baseline;
    config = Criterion::default().sample_size(20);
    targets = bench_end_to_end
);
criterion_main!(baseline);
