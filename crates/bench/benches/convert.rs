//! Criterion microbenchmarks of the CGT-RMR conversion engine itself:
//! the memcpy fast path vs same-size byte swap vs widening conversion,
//! per element count — the ablation behind the Figure 10/11 gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hdsm_platform::ctype::{paper_figure4_struct, CType};
use hdsm_platform::endian::Endianness;
use hdsm_platform::layout::TypeLayout;
use hdsm_platform::scalar::ScalarClass;
use hdsm_platform::spec::PlatformSpec;
use hdsm_tags::convert::{convert_scalar_run, ConversionStats};
use hdsm_tags::generate::tag_for;
use hdsm_tags::parse::parse_tag;
use std::hint::black_box;

fn bench_scalar_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("convert/int_runs");
    for count in [1024usize, 56169, 255 * 255] {
        let src: Vec<u8> = (0..count * 4).map(|i| (i % 251) as u8).collect();
        group.throughput(Throughput::Bytes((count * 4) as u64));
        group.bench_function(BenchmarkId::new("memcpy_same_format", count), |b| {
            let mut dst = vec![0u8; count * 4];
            b.iter(|| {
                let mut stats = ConversionStats::default();
                convert_scalar_run(
                    &src,
                    4,
                    Endianness::Little,
                    &mut dst,
                    4,
                    Endianness::Little,
                    ScalarClass::Signed,
                    count as u64,
                    &mut stats,
                )
                .unwrap();
                black_box(&dst);
            })
        });
        group.bench_function(BenchmarkId::new("byteswap_same_size", count), |b| {
            let mut dst = vec![0u8; count * 4];
            b.iter(|| {
                let mut stats = ConversionStats::default();
                convert_scalar_run(
                    &src,
                    4,
                    Endianness::Little,
                    &mut dst,
                    4,
                    Endianness::Big,
                    ScalarClass::Signed,
                    count as u64,
                    &mut stats,
                )
                .unwrap();
                black_box(&dst);
            })
        });
        group.bench_function(BenchmarkId::new("widen_4_to_8_swap", count), |b| {
            let mut dst = vec![0u8; count * 8];
            b.iter(|| {
                let mut stats = ConversionStats::default();
                convert_scalar_run(
                    &src,
                    4,
                    Endianness::Little,
                    &mut dst,
                    8,
                    Endianness::Big,
                    ScalarClass::Signed,
                    count as u64,
                    &mut stats,
                )
                .unwrap();
                black_box(&dst);
            })
        });
    }
    group.finish();
}

fn bench_float_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("convert/double_runs");
    let count = 255 * 255;
    let src: Vec<u8> = (0..count * 8).map(|i| (i % 251) as u8).collect();
    group.throughput(Throughput::Bytes((count * 8) as u64));
    group.bench_function("byteswap_f64", |b| {
        let mut dst = vec![0u8; count * 8];
        b.iter(|| {
            let mut stats = ConversionStats::default();
            convert_scalar_run(
                &src,
                8,
                Endianness::Little,
                &mut dst,
                8,
                Endianness::Big,
                ScalarClass::Float,
                count as u64,
                &mut stats,
            )
            .unwrap();
            black_box(&dst);
        })
    });
    group.finish();
}

fn bench_tag_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("tags");
    let ty = CType::Struct(paper_figure4_struct());
    let layout = TypeLayout::compute(&ty, &PlatformSpec::linux_x86());
    group.bench_function("generate_figure4", |b| {
        b.iter(|| black_box(tag_for(&layout)))
    });
    let s = tag_for(&layout).to_string();
    group.bench_function("emit_string", |b| {
        let t = tag_for(&layout);
        b.iter(|| black_box(t.to_string()))
    });
    group.bench_function("parse_figure4", |b| {
        b.iter(|| black_box(parse_tag(&s).unwrap()))
    });
    // The paper's future-work ablation: textual vs binary tag codec
    // ("lessening our reliance on string operations with the tags").
    let t = tag_for(&layout);
    let bin = hdsm_tags::binfmt::encode_tag(&t);
    group.bench_function("emit_binary", |b| {
        b.iter(|| black_box(hdsm_tags::binfmt::encode_tag(&t)))
    });
    group.bench_function("parse_binary", |b| {
        b.iter(|| black_box(hdsm_tags::binfmt::decode_tag(bin.clone()).unwrap()))
    });
    group.finish();
}

criterion_group!(
    name = convert;
    config = Criterion::default().sample_size(30);
    targets = bench_scalar_runs, bench_float_runs, bench_tag_ops
);
criterion_main!(convert);
