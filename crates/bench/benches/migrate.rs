//! MigThread migration cost: packing a thread state into the portable
//! image and restoring it on homogeneous vs heterogeneous destinations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdsm_migthread::packfmt::{pack_state, unpack_state};
use hdsm_migthread::state::{ThreadState, TypedBlock};
use hdsm_platform::ctype::{CType, StructBuilder};
use hdsm_platform::scalar::ScalarKind;
use hdsm_platform::spec::{Platform, PlatformSpec};
use hdsm_platform::value::Value;
use std::hint::black_box;

fn state_type(elems: usize) -> CType {
    CType::Struct(
        StructBuilder::new("MThV")
            .scalar("i", ScalarKind::Int)
            .scalar("sum", ScalarKind::Double)
            .array("buf", ScalarKind::Int, elems)
            .array("fbuf", ScalarKind::Double, elems / 2)
            .build()
            .unwrap(),
    )
}

fn sample_state(elems: usize, p: &Platform) -> ThreadState {
    let mut st = ThreadState::new("bench");
    let mut b = TypedBlock::zeroed(state_type(elems), p.clone());
    b.set_field(0, &Value::Int(7)).unwrap();
    b.set_field(1, &Value::Float(0.5)).unwrap();
    b.set_field(
        2,
        &Value::Array((0..elems as i128).map(Value::Int).collect()),
    )
    .unwrap();
    b.set_field(
        3,
        &Value::Array(
            (0..elems / 2)
                .map(|i| Value::Float(i as f64 * 0.25))
                .collect(),
        ),
    )
    .unwrap();
    st.push_block("MThV", b);
    st
}

fn declared(elems: usize, p: &Platform) -> ThreadState {
    let mut st = ThreadState::new("bench");
    st.push_block("MThV", TypedBlock::zeroed(state_type(elems), p.clone()));
    st
}

fn bench_pack(c: &mut Criterion) {
    let mut group = c.benchmark_group("migrate/pack_state");
    for elems in [1024usize, 65536] {
        let linux = PlatformSpec::linux_x86();
        let st = sample_state(elems, &linux);
        group.bench_with_input(BenchmarkId::from_parameter(elems), &st, |b, st| {
            b.iter(|| black_box(pack_state(st)))
        });
    }
    group.finish();
}

fn bench_restore(c: &mut Criterion) {
    let mut group = c.benchmark_group("migrate/restore");
    for elems in [1024usize, 65536] {
        let linux = PlatformSpec::linux_x86();
        let image = pack_state(&sample_state(elems, &linux));
        let aix = PlatformSpec::aix_power(); // BE but... not homogeneous with LE
        let sparc = PlatformSpec::solaris_sparc();
        // Homogeneous restore (Linux → Linux): tag-gated memcpy.
        group.bench_function(BenchmarkId::new("homogeneous", elems), |b| {
            let decl = declared(elems, &linux);
            b.iter(|| black_box(unpack_state(&image, &linux, &decl).unwrap()))
        });
        // Heterogeneous restore (Linux → SPARC): full conversion.
        group.bench_function(BenchmarkId::new("heterogeneous", elems), |b| {
            let decl = declared(elems, &sparc);
            b.iter(|| black_box(unpack_state(&image, &sparc, &decl).unwrap()))
        });
        let _ = aix;
    }
    group.finish();
}

criterion_group!(
    name = migrate;
    config = Criterion::default().sample_size(20);
    targets = bench_pack, bench_restore
);
criterion_main!(migrate);
