//! Criterion microbenchmarks of the DSD release/acquire pipeline stages —
//! the per-component view behind Figures 6–9: twin/diff scan (t_index),
//! run→index mapping (t_index), coalescing + tag formation (t_tag),
//! extraction + wire packing (t_pack), unpacking (t_unpack) and
//! application (t_conv) on both homogeneous and heterogeneous receivers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdsm_core::gthv::{GthvDef, GthvInstance};
use hdsm_core::runs::{abstract_diffs, coalesce, map_runs};
use hdsm_core::update::{apply_batch, extract_updates};
use hdsm_memory::diff::diff_pages;
use hdsm_platform::ctype::StructBuilder;
use hdsm_platform::scalar::ScalarKind;
use hdsm_platform::spec::{Platform, PlatformSpec};
use hdsm_tags::convert::ConversionStats;
use hdsm_tags::wire::{pack_batch, unpack_batch};
use std::hint::black_box;

fn instance(n: usize, p: Platform) -> GthvInstance {
    let def = GthvDef::new(
        StructBuilder::new("G")
            .array("A", ScalarKind::Int, n * n)
            .array("C", ScalarKind::Int, n * n)
            .build()
            .unwrap(),
    )
    .unwrap();
    GthvInstance::new(def, p)
}

/// An instance with one third of C written (a worker's row block).
fn dirty_instance(n: usize) -> GthvInstance {
    let mut g = instance(n, PlatformSpec::linux_x86());
    g.space_mut().protect_all();
    for i in 0..(n * n / 3) as u64 {
        g.write_int(1, i, (i as i128) * 3 + 1).unwrap();
    }
    g
}

fn bench_diff_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("t_index/diff_scan");
    for n in [99usize, 177, 255] {
        let g = dirty_instance(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(diff_pages(g.space())))
        });
    }
    group.finish();
}

fn bench_map_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("t_index/map_runs");
    for n in [99usize, 177, 255] {
        let g = dirty_instance(n);
        let runs = diff_pages(g.space());
        group.bench_with_input(BenchmarkId::from_parameter(n), &runs, |b, runs| {
            b.iter(|| black_box(map_runs(g.table(), runs)))
        });
    }
    group.finish();
}

fn bench_coalesce(c: &mut Criterion) {
    let mut group = c.benchmark_group("t_tag/coalesce");
    for n in [99usize, 255] {
        let g = dirty_instance(n);
        let mapped = map_runs(g.table(), &diff_pages(g.space()));
        group.bench_with_input(BenchmarkId::from_parameter(n), &mapped, |b, m| {
            b.iter(|| black_box(coalesce(m.clone())))
        });
    }
    group.finish();
}

fn bench_extract_pack(c: &mut Criterion) {
    let mut group = c.benchmark_group("t_pack/extract_and_pack");
    for n in [99usize, 255] {
        let g = dirty_instance(n);
        let ranges = abstract_diffs(g.table(), &diff_pages(g.space()));
        group.bench_with_input(BenchmarkId::from_parameter(n), &ranges, |b, r| {
            b.iter(|| {
                let ups = extract_updates(&g, r).unwrap();
                black_box(pack_batch(&ups))
            })
        });
    }
    group.finish();
}

fn bench_unpack(c: &mut Criterion) {
    let mut group = c.benchmark_group("t_unpack/unpack_batch");
    for n in [99usize, 255] {
        let g = dirty_instance(n);
        let ranges = abstract_diffs(g.table(), &diff_pages(g.space()));
        let packed = pack_batch(&extract_updates(&g, &ranges).unwrap());
        group.bench_with_input(BenchmarkId::from_parameter(n), &packed, |b, p| {
            b.iter(|| black_box(unpack_batch(p.clone()).unwrap()))
        });
    }
    group.finish();
}

fn bench_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("t_conv/apply");
    for n in [99usize, 255] {
        let src = dirty_instance(n);
        let ranges = abstract_diffs(src.table(), &diff_pages(src.space()));
        let ups = extract_updates(&src, &ranges).unwrap();
        // Homogeneous receiver: memcpy fast path.
        group.bench_function(BenchmarkId::new("homogeneous_LL", n), |b| {
            let mut dst = instance(n, PlatformSpec::linux_x86());
            b.iter(|| {
                let mut stats = ConversionStats::default();
                black_box(apply_batch(&mut dst, &ups, &mut stats).unwrap())
            })
        });
        // Heterogeneous receiver: full receiver-makes-right conversion.
        group.bench_function(BenchmarkId::new("heterogeneous_SL", n), |b| {
            let mut dst = instance(n, PlatformSpec::solaris_sparc());
            b.iter(|| {
                let mut stats = ConversionStats::default();
                black_box(apply_batch(&mut dst, &ups, &mut stats).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = pipeline;
    config = Criterion::default().sample_size(20);
    targets = bench_diff_scan,
        bench_map_runs,
        bench_coalesce,
        bench_extract_pack,
        bench_unpack,
        bench_apply
);
criterion_main!(pipeline);
