//! The Figure 9 "spike" case, isolated: "a series of updates can build up
//! at the home node, resulting in a rather large batch update being
//! transferred to a remote thread" (paper §5).
//!
//! One writer thread performs K lock/unlock rounds, touching a different
//! slice of the matrix each round, while a reader thread stays out of the
//! protocol. The reader's next acquire then receives everything at once;
//! this binary reports how the batched grant (updates, bytes, home-side
//! tag formation and reader-side conversion time) grows with K — the
//! mechanism behind the paper's worst-case spike at size 216.

use hdsm_apps::matmul;
use hdsm_bench::{ms, print_header};
use hdsm_core::cluster::ClusterBuilder;
use hdsm_core::{BarrierId, LockId};
use hdsm_platform::spec::PlatformSpec;

fn main() {
    print_header(
        "Batch-update spike (Figure 9 discussion)",
        "Grant size and cost at the reader's first acquire after K writer rounds.",
    );
    const SYNC: BarrierId = BarrierId::new(0);
    const STRIPE: LockId = LockId::new(0);
    let n: usize = 128;
    println!("matrix {n}x{n}, writer on linux-x86, reader on solaris-sparc\n");
    println!(
        "{:>4} {:>14} {:>12} {:>16} {:>16}",
        "K", "grant bytes", "grant frames", "reader conv (ms)", "home tag (ms)"
    );
    for k in [1usize, 2, 4, 8, 16, 32] {
        let outcome = ClusterBuilder::new()
            .gthv(matmul::gthv_def(n))
            .home(PlatformSpec::linux_x86())
            .worker(PlatformSpec::linux_x86()) // writer
            .worker(PlatformSpec::solaris_sparc()) // reader
            .locks(2)
            .barriers(1)
            .init(move |g| matmul::init(g, n, 7))
            .run(move |c, info| {
                // Both threads pull the initial state first so the final
                // measurement sees only the writer's K rounds.
                c.barrier(SYNC)?;
                if info.index == 0 {
                    // Writer: K rounds, each dirtying a stripe of C.
                    for round in 0..k {
                        let mut c = c.lock(STRIPE)?;
                        let base = ((round * 97) % n) * n;
                        for j in 0..n {
                            c.write_int(
                                matmul::entries::C,
                                (base + j) as u64,
                                (round * 1000 + j) as i128,
                            )?;
                        }
                        c.unlock()?;
                    }
                    c.barrier(SYNC)?;
                    Ok((0u64, 0u64, 0.0f64))
                } else {
                    // Reader: stays out of the protocol while the writer
                    // works; the second barrier's release then carries the
                    // whole accumulated batch (a barrier is a full
                    // release + acquire).
                    let before = c.costs();
                    c.barrier(SYNC)?;
                    let after = c.costs();
                    Ok((
                        after.updates_applied - before.updates_applied,
                        after.bytes_applied - before.bytes_applied,
                        (after.t_conv - before.t_conv).as_secs_f64() * 1e3,
                    ))
                }
            })
            .expect("cluster");
        let (frames, bytes, conv_ms) = outcome.results[1];
        println!(
            "{:>4} {:>14} {:>12} {:>16.3} {:>16.3}",
            k,
            bytes,
            frames,
            conv_ms,
            ms(outcome.home_costs.t_tag),
        );
    }
    println!();
    println!("Expected: the batch grows with K until the writer's rounds");
    println!("overlap (ranges coalesce at the home node), then saturates —");
    println!("a single acquire can carry many rounds' worth of updates.");
}
