//! Machine-readable benchmark summary: run each workload once on the
//! heterogeneous SL pair and write wall time plus the Eq. 1 cost totals to
//! `BENCH_dsd.json` at the repository root.
//!
//! Sizes default to quick smoke values so the emitter finishes in seconds;
//! pass `--paper` for the paper's matrix sizes (slower).

use hdsm_apps::workload::{paper_pairs, SyncMode};
use hdsm_apps::{jacobi, lu, matmul, sor};
use hdsm_bench::paper_placement;
use hdsm_core::cluster::ClusterBuilder;
use hdsm_core::costs::CostBreakdown;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Row {
    name: &'static str,
    n: usize,
    wall: Duration,
    costs: CostBreakdown,
    net_bytes: u64,
    net_messages: u64,
    verified: bool,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn run_workload(name: &'static str, n: usize) -> Row {
    let pair = &paper_pairs()[2]; // SL: heterogeneous, exercises t_conv.
    let seed = 0xD5D;
    let sweeps = 6;
    let workers = paper_placement(pair);
    let mut builder = ClusterBuilder::new()
        .home(pair.home.clone())
        .locks(1)
        .barriers(2);
    builder = match name {
        "jacobi" => builder
            .gthv(jacobi::gthv_def(n))
            .init(move |g| jacobi::init(g, n, seed)),
        "sor" => builder
            .gthv(sor::gthv_def(n))
            .init(move |g| sor::init(g, n, seed)),
        "matmul" => builder
            .gthv(matmul::gthv_def(n))
            .init(move |g| matmul::init(g, n, seed)),
        "lu" => builder
            .gthv(lu::gthv_def(n))
            .init(move |g| lu::init(g, n, seed)),
        _ => unreachable!(),
    };
    for w in &workers {
        builder = builder.worker(w.clone());
    }
    let t0 = Instant::now();
    let (outcome, verified) = match name {
        "jacobi" => {
            let o = builder
                .run(move |c, i| jacobi::run_worker(c, i, n, sweeps))
                .expect("jacobi");
            let v = jacobi::verify(&o.final_gthv, n, seed, sweeps);
            (o, v)
        }
        "sor" => {
            let o = builder
                .run(move |c, i| sor::run_worker(c, i, n, sweeps))
                .expect("sor");
            let v = sor::verify(&o.final_gthv, n, seed, sweeps);
            (o, v)
        }
        "matmul" => {
            let o = builder
                .run(move |c, i| matmul::run_worker(c, i, n, SyncMode::Barrier))
                .expect("matmul");
            let v = matmul::verify(&o.final_gthv, n, seed);
            (o, v)
        }
        "lu" => {
            let o = builder
                .run(move |c, i| lu::run_worker(c, i, n))
                .expect("lu");
            let v = lu::verify(&o.final_gthv, n, seed);
            (o, v)
        }
        _ => unreachable!(),
    };
    let wall = t0.elapsed();
    let mut costs: CostBreakdown = outcome.worker_costs.iter().sum();
    costs += &outcome.home_costs;
    Row {
        name,
        n,
        wall,
        costs,
        net_bytes: outcome.net_stats.total_bytes(),
        net_messages: outcome.net_stats.total_messages(),
        verified,
    }
}

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let (grid_n, mat_n) = if paper { (99, 99) } else { (32, 32) };
    let rows = vec![
        run_workload("jacobi", grid_n),
        run_workload("sor", grid_n),
        run_workload("matmul", mat_n),
        run_workload("lu", mat_n),
    ];

    let mut json = String::from("{\n  \"pair\": \"SL\",\n  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let c = &r.costs;
        writeln!(
            json,
            "    {{\"name\": \"{}\", \"n\": {}, \"wall_ms\": {:.3}, \
             \"t_index_ms\": {:.3}, \"t_tag_ms\": {:.3}, \"t_pack_ms\": {:.3}, \
             \"t_unpack_ms\": {:.3}, \"t_conv_ms\": {:.3}, \"c_share_ms\": {:.3}, \
             \"updates_sent\": {}, \"bytes_sent\": {}, \"net_messages\": {}, \
             \"net_bytes\": {}, \"verified\": {}}}{}",
            r.name,
            r.n,
            ms(r.wall),
            ms(c.t_index),
            ms(c.t_tag),
            ms(c.t_pack),
            ms(c.t_unpack),
            ms(c.t_conv),
            ms(c.c_share()),
            c.updates_sent,
            c.bytes_sent,
            r.net_messages,
            r.net_bytes,
            r.verified,
            if i + 1 < rows.len() { "," } else { "" },
        )
        .expect("write to string");
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dsd.json");
    std::fs::write(path, &json).expect("write BENCH_dsd.json");
    for r in &rows {
        println!(
            "{:>7} n={:<4} wall {:>9.2} ms  c_share {:>9.2} ms  verified {}",
            r.name,
            r.n,
            ms(r.wall),
            ms(r.costs.c_share()),
            r.verified
        );
    }
    println!("wrote BENCH_dsd.json");
    assert!(
        rows.iter().all(|r| r.verified),
        "a workload failed to verify"
    );
}
