//! Machine-readable benchmark summary: run each workload once on the
//! heterogeneous SL pair and write wall time plus the Eq. 1 cost totals to
//! `BENCH_dsd.json` at the repository root.
//!
//! Sizes default to quick smoke values so the emitter finishes in seconds;
//! pass `--paper` for the paper's matrix sizes (slower). Every workload
//! runs twice: once on the classic single-home DSD and once with the home
//! service sharded (`--shards N`, default 3) — the sharded rows carry a
//! `@sN` suffix and a `"shards"` field so the perf gate covers both
//! configurations.
//!
//! `--check` re-runs the workloads and compares each `c_share_ms` against
//! the *committed* `BENCH_dsd.json` without overwriting it, exiting
//! non-zero on a > 20 % regression — the CI perf gate.

use hdsm_apps::workload::{paper_pairs, SyncMode};
use hdsm_apps::{jacobi, lu, matmul, sor};
use hdsm_bench::paper_placement;
use hdsm_core::cluster::{ClusterBuilder, TimingConfig, TopologyConfig};
use hdsm_core::costs::CostBreakdown;
use hdsm_core::gthv::GthvDef;
use hdsm_core::{LockId, PlacementPolicy, ShardId};
use hdsm_net::{FabricMode, MsgKind, NetConfig};
use hdsm_obs::{EventKind, Recorder};
use hdsm_platform::ctype::StructBuilder;
use hdsm_platform::scalar::ScalarKind;
use hdsm_platform::spec::PlatformSpec;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Row {
    label: String,
    n: usize,
    shards: u32,
    wall: Duration,
    costs: CostBreakdown,
    net_bytes: u64,
    net_messages: u64,
    /// Update bytes shipped to a home shard *other than* the one the
    /// release itself targets (`UpdateFlush` traffic) — the cost a good
    /// placement makes vanish by co-homing hot data with its sync shard.
    remote_update_bytes: u64,
    /// Entries the placement engine re-homed mid-run (0 under `Static`).
    rehomes: u64,
    verified: bool,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn run_workload(name: &'static str, n: usize, shards: u32) -> Row {
    let pair = &paper_pairs()[2]; // SL: heterogeneous, exercises t_conv.
    let seed = 0xD5D;
    let sweeps = 6;
    let workers = paper_placement(pair);
    let mut builder = ClusterBuilder::new()
        .home(pair.home.clone())
        .locks(1)
        .barriers(2)
        .topology(TopologyConfig {
            shards,
            ..Default::default()
        });
    builder = match name {
        "jacobi" => builder
            .gthv(jacobi::gthv_def(n))
            .init(move |g| jacobi::init(g, n, seed)),
        "sor" => builder
            .gthv(sor::gthv_def(n))
            .init(move |g| sor::init(g, n, seed)),
        "matmul" => builder
            .gthv(matmul::gthv_def(n))
            .init(move |g| matmul::init(g, n, seed)),
        "lu" => builder
            .gthv(lu::gthv_def(n))
            .init(move |g| lu::init(g, n, seed)),
        _ => unreachable!(),
    };
    for w in &workers {
        builder = builder.worker(w.clone());
    }
    let t0 = Instant::now();
    let (outcome, verified) = match name {
        "jacobi" => {
            let o = builder
                .run(move |c, i| jacobi::run_worker(c, i, n, sweeps))
                .expect("jacobi");
            let v = jacobi::verify(&o.final_gthv, n, seed, sweeps);
            (o, v)
        }
        "sor" => {
            let o = builder
                .run(move |c, i| sor::run_worker(c, i, n, sweeps))
                .expect("sor");
            let v = sor::verify(&o.final_gthv, n, seed, sweeps);
            (o, v)
        }
        "matmul" => {
            let o = builder
                .run(move |c, i| matmul::run_worker(c, i, n, SyncMode::Barrier))
                .expect("matmul");
            let v = matmul::verify(&o.final_gthv, n, seed);
            (o, v)
        }
        "lu" => {
            let o = builder
                .run(move |c, i| lu::run_worker(c, i, n))
                .expect("lu");
            let v = lu::verify(&o.final_gthv, n, seed);
            (o, v)
        }
        _ => unreachable!(),
    };
    let wall = t0.elapsed();
    let mut costs: CostBreakdown = outcome.worker_costs.iter().sum();
    costs += &outcome.home_costs;
    let label = if shards > 1 {
        format!("{name}@s{shards}")
    } else {
        name.to_string()
    };
    Row {
        label,
        n,
        shards,
        wall,
        costs,
        net_bytes: outcome.net_stats.total_bytes(),
        net_messages: outcome.net_stats.total_messages(),
        remote_update_bytes: outcome
            .net_stats
            .bytes
            .get(&MsgKind::UpdateFlush)
            .copied()
            .unwrap_or(0),
        rehomes: 0,
        verified,
    }
}

/// The adaptive-placement benchmark: one rank does ~90 % of the writes,
/// all to an entry homed on the *other* shard from the lock serializing
/// them, so under `Static` every release pays a separate `UpdateFlush`
/// round trip to the stale home. Under `HeatDriven` the engine re-homes
/// the hot entry onto the sync shard mid-run, after which the updates
/// ride the release's own keep-bucket for free. Runs on the seeded sim
/// fabric with a modelled wire so virtual time elapses and the engine's
/// planning epochs interleave with the workload deterministically.
///
/// The traffic columns are deterministic in the seed; the `c_share`
/// columns are real elapsed time and jitter run to run, so (like the
/// `--check` gate) the row keeps the best of three runs.
fn run_skewed_writer(n: usize, adaptive: bool) -> Row {
    let mut best: Option<Row> = None;
    for _ in 0..3 {
        let row = run_skewed_writer_once(n, adaptive);
        let keep = match &best {
            Some(b) => row.costs.c_share() < b.costs.c_share(),
            None => true,
        };
        if keep {
            best = Some(row);
        }
    }
    best.expect("three runs")
}

fn run_skewed_writer_once(n: usize, adaptive: bool) -> Row {
    let policy = if adaptive {
        PlacementPolicy::HeatDriven {
            epoch: Duration::from_millis(2),
            hysteresis: 2.0,
            min_gain: 1024,
        }
    } else {
        PlacementPolicy::Static
    };
    let hot = n as u64 - 8; // rank 1's slots: 0..hot; slots hot.. are stripes
    let def = GthvDef::new(
        StructBuilder::new("G")
            .array("cold", ScalarKind::Int, n)
            .array("hot", ScalarKind::Int, n)
            .build()
            .expect("bench struct"),
    )
    .expect("valid def");
    let t0 = Instant::now();
    let outcome = ClusterBuilder::new()
        .gthv(def)
        .worker(PlatformSpec::linux_x86())
        .worker(PlatformSpec::solaris_sparc())
        .worker(PlatformSpec::linux_x86())
        .worker(PlatformSpec::linux_x86())
        .locks(2)
        .barriers(1)
        .topology(TopologyConfig {
            shards: 2,
            fabric: FabricMode::Sim { seed: 0xA110 },
            ..Default::default()
        })
        .net(NetConfig::default())
        .obs(Recorder::enabled())
        .placement(policy)
        .run(move |c, info| {
            if info.index == 0 {
                // The dominant writer: every round rewrites its slice of
                // the hot entry (homed at shard 1) under lock 0 (homed at
                // shard 0).
                for r in 0..150i128 {
                    c.acquire(LockId::new(0))?;
                    for e in 0..hot {
                        c.write_int(1, e, (r + 1) * (e as i128 + 1))?;
                    }
                    c.release(LockId::new(0))?;
                }
            } else {
                // Minority writers: a private slot each, same lock.
                for r in 0..5i128 {
                    c.acquire(LockId::new(0))?;
                    c.write_int(1, hot + info.index as u64, r + 1)?;
                    c.release(LockId::new(0))?;
                }
            }
            // Unrelated traffic keeps the cold entry's shard warm.
            c.acquire(LockId::new(1))?;
            c.write_int(0, info.index as u64, info.index as i128 + 10)?;
            c.release(LockId::new(1))?;
            Ok(())
        })
        .expect("skewed_writer run");
    let wall = t0.elapsed();
    // Closed-form final state: slot ownership is disjoint, so the result
    // is schedule-independent.
    let mut verified = true;
    for e in 0..hot {
        verified &= outcome.final_gthv.read_int(1, e).expect("hot slot") == 150 * (e as i128 + 1);
    }
    for idx in 1..4u64 {
        verified &= outcome.final_gthv.read_int(1, hot + idx).expect("stripe") == 5;
    }
    let snap = outcome.obs.as_ref().expect("recorder enabled");
    let rehomes = snap.placement.len() as u64;
    if adaptive {
        verified &= rehomes > 0;
    }
    let mut costs: CostBreakdown = outcome.worker_costs.iter().sum();
    costs += &outcome.home_costs;
    Row {
        label: format!(
            "skewed_writer@{}",
            if adaptive { "adaptive" } else { "static" }
        ),
        n,
        shards: 2,
        wall,
        costs,
        net_bytes: outcome.net_stats.total_bytes(),
        net_messages: outcome.net_stats.total_messages(),
        remote_update_bytes: outcome
            .net_stats
            .bytes
            .get(&MsgKind::UpdateFlush)
            .copied()
            .unwrap_or(0),
        rehomes,
        verified,
    }
}

/// Injected-death recovery latency: steady lock traffic against a
/// replicated home, the primary killed mid-run. Recovery is the gap in
/// the causal trace between the kill and the first request served by the
/// promoted standby (`ShardKill` → `FirstGrant`), in milliseconds. The
/// row carries no `c_share_ms`, so the `--check` perf gate ignores it.
fn measure_failover_recovery() -> f64 {
    let recorder = Recorder::enabled();
    let def = GthvDef::new(
        StructBuilder::new("G")
            .array("xs", ScalarKind::Int, 16)
            .build()
            .expect("bench struct"),
    )
    .expect("valid def");
    let outcome = ClusterBuilder::new()
        .gthv(def)
        .worker(PlatformSpec::linux_x86())
        .worker(PlatformSpec::linux_x86_64())
        .locks(1)
        .topology(TopologyConfig {
            replicas: 1,
            ..Default::default()
        })
        .timing(TimingConfig {
            lease: Some(Duration::from_millis(150)),
            retry_base: Some(Duration::from_millis(10)),
            recv_deadline: Some(Duration::from_secs(30)),
            ..Default::default()
        })
        .obs(recorder.clone())
        .control(|ctl| {
            std::thread::sleep(Duration::from_millis(120));
            ctl.kill_shard(ShardId::new(0));
        })
        .run(|c, _| {
            // Lock-serialized increments for a fixed wall budget, so the
            // traffic is still flowing when the kill lands.
            let t0 = Instant::now();
            let mut mine = 0i128;
            while t0.elapsed() < Duration::from_millis(400) {
                c.acquire(LockId::new(0))?;
                let v = c.read_int(0, 0)?;
                c.write_int(0, 0, v + 1)?;
                c.release(LockId::new(0))?;
                mine += 1;
            }
            Ok(mine)
        })
        .expect("failover recovery run");
    let total: i128 = outcome.results.iter().sum();
    assert_eq!(
        outcome.final_gthv.read_int(0, 0).expect("counter"),
        total,
        "increments lost across the failover"
    );
    let events = recorder.events();
    let kill = events
        .iter()
        .find(|e| e.kind == EventKind::ShardKill)
        .expect("kill event")
        .t_us;
    let grant = events
        .iter()
        .filter(|e| e.kind == EventKind::FirstGrant && e.t_us >= kill)
        .map(|e| e.t_us)
        .min()
        .expect("first post-promotion grant");
    (grant - kill) as f64 / 1e3
}

/// Wall-time cost of the live-telemetry layer: the SOR workload run
/// with the recorder off, then again with the recorder, the windowed
/// time-series, the stall watchdog and the flight recorder all armed.
/// Returns `(off_ms, on_ms)`, each the best of seven runs with the two
/// legs interleaved — a busy-machine phase then hits both legs instead
/// of masquerading as overhead. The acceptance budget is ≤ 5 %: every
/// hot-path hook must stay a null check when the feature is idle, so
/// the enabled run pays only the 5 ms tick work.
fn measure_telemetry_overhead() -> (f64, f64) {
    let n = 32usize;
    let seed = 0xD5D;
    let sweeps = 6;
    let run_once = |telemetry: bool| -> Duration {
        let mut builder = ClusterBuilder::new()
            .gthv(sor::gthv_def(n))
            .init(move |g| sor::init(g, n, seed))
            .worker(PlatformSpec::linux_x86())
            .worker(PlatformSpec::linux_x86_64())
            .barriers(2);
        if telemetry {
            builder = builder
                .obs(Recorder::enabled())
                .telemetry(Duration::from_millis(5), 512)
                .flight_recorder(concat!(
                    env!("CARGO_MANIFEST_DIR"),
                    "/../../results/bench-blackbox"
                ));
        }
        let t0 = Instant::now();
        let outcome = builder
            .run(move |c, i| sor::run_worker(c, i, n, sweeps))
            .expect("telemetry-overhead run");
        let wall = t0.elapsed();
        assert!(
            sor::verify(&outcome.final_gthv, n, seed, sweeps),
            "telemetry-overhead sor failed to verify"
        );
        wall
    };
    let mut off = Duration::MAX;
    let mut on = Duration::MAX;
    for _ in 0..7 {
        off = off.min(run_once(false));
        on = on.min(run_once(true));
    }
    (ms(off), ms(on))
}

/// How far one process scales when the cluster runs on the
/// deterministic discrete-event fabric: a jacobi relaxation multiplexed
/// over `ranks` logical workers under `Sim { seed }`, measured in real
/// wall time. The interesting figure is the growth curve — an
/// event-driven scheduler should take 1000 ranks in seconds where
/// free-running threads would thrash. Rows carry no `c_share_ms`, so
/// the `--check` perf gate ignores them.
fn measure_rank_scaling(ranks: u32) -> f64 {
    use hdsm_net::FabricMode;
    let n = 32usize;
    let seed = 0xD5D;
    let sweeps = 2;
    let mut builder = ClusterBuilder::new().gthv(jacobi::gthv_def(n));
    for i in 0..ranks {
        builder = builder.worker(if i % 2 == 0 {
            PlatformSpec::linux_x86()
        } else {
            PlatformSpec::linux_x86_64()
        });
    }
    let t0 = Instant::now();
    let outcome = builder
        .barriers(1)
        .init(move |g| jacobi::init(g, n, seed))
        .topology(TopologyConfig {
            fabric: FabricMode::Sim { seed: 9 },
            ..Default::default()
        })
        .run(move |c, i| jacobi::run_worker(c, i, n, sweeps))
        .expect("rank-scaling run");
    let wall = t0.elapsed();
    assert!(
        jacobi::verify(&outcome.final_gthv, n, seed, sweeps),
        "rank-scaling jacobi failed to verify at {ranks} ranks"
    );
    ms(wall)
}

/// Extract `(name, c_share_ms)` per benchmark from a committed
/// `BENCH_dsd.json` by line scanning — the emitter writes one object per
/// line, and the build has no JSON parser dependency to lean on.
fn parse_committed(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(npos) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[npos + 9..];
        let Some(nend) = rest.find('"') else { continue };
        let name = rest[..nend].to_string();
        let Some(cpos) = line.find("\"c_share_ms\": ") else {
            continue;
        };
        let rest = &line[cpos + 14..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        if let Ok(v) = rest[..end].trim().parse::<f64>() {
            out.push((name, v));
        }
    }
    out
}

fn run_all(grid_n: usize, mat_n: usize, shards: u32) -> Vec<Row> {
    let mut rows = vec![
        run_workload("jacobi", grid_n, 1),
        run_workload("sor", grid_n, 1),
        run_workload("matmul", mat_n, 1),
        run_workload("lu", mat_n, 1),
    ];
    if shards > 1 {
        rows.push(run_workload("jacobi", grid_n, shards));
        rows.push(run_workload("sor", grid_n, shards));
        rows.push(run_workload("matmul", mat_n, shards));
        rows.push(run_workload("lu", mat_n, shards));
    }
    // The static-vs-adaptive pair: same seed, same workload — the only
    // difference is whether the placement engine is allowed to act.
    rows.push(run_skewed_writer(32, false));
    rows.push(run_skewed_writer(32, true));
    rows
}

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let check = std::env::args().any(|a| a == "--check");
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--sim-smoke") {
        // CI smoke: one verified sim-fabric run at the requested rank
        // count, no JSON written.
        let ranks: u32 = args
            .get(i + 1)
            .map(|v| v.parse().expect("--sim-smoke takes a rank count"))
            .unwrap_or(64);
        let wall_ms = measure_rank_scaling(ranks);
        println!("sim smoke: {ranks} ranks verified in {wall_ms:.2} ms");
        return;
    }
    let shards: u32 = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--shards takes a number"))
        .unwrap_or(3);
    let (grid_n, mat_n) = if paper { (99, 99) } else { (32, 32) };
    let rows = run_all(grid_n, mat_n, shards);

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dsd.json");
    if check {
        let committed = std::fs::read_to_string(path).expect("read committed BENCH_dsd.json");
        let baseline = parse_committed(&committed);
        // Sub-millisecond rows jitter run to run; compare the committed
        // value against the best of three so the gate trips on genuine
        // regressions, not scheduler noise.
        let mut best: Vec<f64> = rows.iter().map(|r| ms(r.costs.c_share())).collect();
        for _ in 0..2 {
            for (i, r) in run_all(grid_n, mat_n, shards).iter().enumerate() {
                assert!(r.verified, "{} failed to verify on a re-run", r.label);
                best[i] = best[i].min(ms(r.costs.c_share()));
            }
        }
        let mut regressed = false;
        println!(
            "{:>10} {:>15} {:>15} {:>8}",
            "bench", "committed", "measured", "delta"
        );
        for (r, &new) in rows.iter().zip(&best) {
            match baseline.iter().find(|(n, _)| *n == r.label) {
                Some((_, old)) => {
                    let delta = if *old > 0.0 {
                        (new - old) / old * 100.0
                    } else {
                        0.0
                    };
                    let over = new > old * 1.2;
                    regressed |= over;
                    println!(
                        "{:>10} {:>12.3} ms {:>12.3} ms {:>+7.1}%{}",
                        r.label,
                        old,
                        new,
                        delta,
                        if over { "  REGRESSED" } else { "" }
                    );
                }
                None => println!("{:>7} (no committed baseline)", r.label),
            }
        }
        assert!(
            rows.iter().all(|r| r.verified),
            "a workload failed to verify"
        );
        if regressed {
            eprintln!("c_share_ms regressed > 20% against committed BENCH_dsd.json");
            std::process::exit(1);
        }
        // Live-telemetry overhead gate: the fully-armed recorder may not
        // cost SOR more than 5 % wall over the recorder-off run (plus a
        // 1 ms absolute grace so sub-millisecond scheduler jitter on the
        // smoke sizes cannot trip the gate on its own).
        let (off_ms, on_ms) = measure_telemetry_overhead();
        let pct = if off_ms > 0.0 {
            (on_ms - off_ms) / off_ms * 100.0
        } else {
            0.0
        };
        println!("telemetry overhead: off {off_ms:.2} ms, on {on_ms:.2} ms ({pct:+.1}%)");
        if on_ms > off_ms * 1.05 + 1.0 {
            eprintln!("telemetry overhead exceeded the 5% budget");
            std::process::exit(1);
        }
        println!("bench check passed (threshold: +20% c_share_ms, +5% telemetry wall)");
        return;
    }

    let mut json = String::from("{\n  \"pair\": \"SL\",\n  \"benchmarks\": [\n");
    for r in rows.iter() {
        let c = &r.costs;
        writeln!(
            json,
            "    {{\"name\": \"{}\", \"n\": {}, \"shards\": {}, \"wall_ms\": {:.3}, \
             \"t_index_ms\": {:.3}, \"t_tag_ms\": {:.3}, \"t_pack_ms\": {:.3}, \
             \"t_unpack_ms\": {:.3}, \"t_conv_ms\": {:.3}, \"c_share_ms\": {:.3}, \
             \"updates_sent\": {}, \"bytes_sent\": {}, \"net_messages\": {}, \
             \"net_bytes\": {}, \"remote_update_bytes\": {}, \"rehomes\": {}, \
             \"verified\": {}}},",
            r.label,
            r.n,
            r.shards,
            ms(r.wall),
            ms(c.t_index),
            ms(c.t_tag),
            ms(c.t_pack),
            ms(c.t_unpack),
            ms(c.t_conv),
            ms(c.c_share()),
            c.updates_sent,
            c.bytes_sent,
            r.net_messages,
            r.net_bytes,
            r.remote_update_bytes,
            r.rehomes,
            r.verified,
        )
        .expect("write to string");
    }
    // Simulation-mode scalability curve: wall time to multiplex a
    // jacobi cluster of 8 → 1024 logical ranks through the
    // discrete-event scheduler in this one process. No `c_share_ms`
    // key, so the perf gate skips these rows.
    let mut scaling = Vec::new();
    for ranks in [8u32, 64, 256, 1024] {
        let wall_ms = measure_rank_scaling(ranks);
        scaling.push((ranks, wall_ms));
        writeln!(
            json,
            "    {{\"name\": \"rank_scaling@r{ranks}\", \"ranks\": {ranks}, \
             \"fabric\": \"sim\", \"sim_seed\": 9, \"wall_ms\": {wall_ms:.3}}},"
        )
        .expect("write to string");
    }
    // Live-telemetry tax: the same SOR run with the recorder off vs the
    // full telemetry stack (time-series, watchdog, flight recorder)
    // armed. No `c_share_ms` key, so the perf gate reads the pair via
    // its own ≤ 5 % wall check instead.
    let (telem_off_ms, telem_on_ms) = measure_telemetry_overhead();
    let telem_pct = if telem_off_ms > 0.0 {
        (telem_on_ms - telem_off_ms) / telem_off_ms * 100.0
    } else {
        0.0
    };
    writeln!(
        json,
        "    {{\"name\": \"telemetry_overhead\", \"workload\": \"sor\", \
         \"wall_off_ms\": {telem_off_ms:.3}, \"wall_on_ms\": {telem_on_ms:.3}, \
         \"overhead_pct\": {telem_pct:.2}}},"
    )
    .expect("write to string");
    // Robustness figure, not an Eq. 1 cost: how long a replicated home
    // takes to serve again after its primary is killed mid-run. No
    // `c_share_ms` key, so the perf gate skips it.
    let recovery_ms = measure_failover_recovery();
    writeln!(
        json,
        "    {{\"name\": \"failover_recovery\", \"shards\": 1, \"replicas\": 1, \
         \"recovery_ms\": {recovery_ms:.3}}}"
    )
    .expect("write to string");
    json.push_str("  ]\n}\n");

    std::fs::write(path, &json).expect("write BENCH_dsd.json");
    for r in &rows {
        println!(
            "{:>10} n={:<4} wall {:>9.2} ms  c_share {:>9.2} ms  verified {}",
            r.label,
            r.n,
            ms(r.wall),
            ms(r.costs.c_share()),
            r.verified
        );
    }
    for (ranks, wall_ms) in &scaling {
        println!(
            "{:>10} ranks={:<5} wall {:>9.2} ms (sim fabric)",
            "rank-scale", ranks, wall_ms
        );
    }
    println!(
        "{:>10} off {:>9.2} ms  on {:>9.2} ms ({:+.1}%)",
        "telemetry", telem_off_ms, telem_on_ms, telem_pct
    );
    println!(
        "{:>10} recovery {:>7.2} ms (kill -> first grant)",
        "failover", recovery_ms
    );
    println!("wrote BENCH_dsd.json");
    assert!(
        rows.iter().all(|r| r.verified),
        "a workload failed to verify"
    );
}
