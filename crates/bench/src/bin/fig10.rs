//! Figure 10 — "Data conversion" (`t_conv`) vs matrix size, matrix
//! multiplication, for the three platform pairs.
//!
//! The paper's headline result: homogeneous pairs (LL, SS) apply updates
//! with a `memcpy` and stay cheap even for large updates, while the
//! heterogeneous pair (SL) must convert (potentially) every byte and its
//! cost grows much faster — roughly an order of magnitude above the
//! homogeneous pairs at the largest sizes.

use hdsm_apps::workload::{paper_pairs, SyncMode};
use hdsm_bench::{bar, ms, print_header, run_matmul_min, sizes_from_args};

fn main() {
    print_header(
        "Figure 10: data conversion time t_conv (matrix multiplication)",
        "Seconds per full run per platform pair (scaled).",
    );
    let sizes = sizes_from_args();
    let mut rows = Vec::new();
    for &n in &sizes {
        let mut row = vec![format!("{n:>5}")];
        let mut vals = Vec::new();
        for pair in &paper_pairs() {
            let r = run_matmul_min(n, pair, SyncMode::Barrier, 3);
            vals.push(ms(r.scaled.t_conv) / 1e3);
            row.push(format!("{:>14.6}", ms(r.scaled.t_conv) / 1e3));
        }
        rows.push((row, vals));
    }
    println!(
        "{:>5} {:>14} {:>14} {:>14}   SL/max(LL,SS)",
        "size", "LL (s)", "SS (s)", "SL (s)"
    );
    let max = rows
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .fold(0.0f64, f64::max);
    for (row, vals) in &rows {
        let ratio = vals[2] / vals[0].max(vals[1]).max(1e-12);
        println!(
            "{} {} {} {}  {:>6.1}x  |{}|",
            row[0],
            row[1],
            row[2],
            row[3],
            ratio,
            bar(vals[2], max, 24)
        );
    }
    println!();
    println!("Expected shape: SL grows fastest (receiver-makes-right conversion),");
    println!("LL and SS stay near-flat (memcpy fast path).");
}
