//! Figure 11 — "Data conversion" (`t_conv`) vs matrix size, LU
//! decomposition, for the three platform pairs.
//!
//! Same axes as Figure 10 but on the LU workload, which "transfers more
//! data per update than the matrix multiplication example": the whole
//! trailing submatrix is rewritten every elimination step, so the
//! heterogeneous conversion cost exceeds matmul's at the same size.

use hdsm_apps::workload::paper_pairs;
use hdsm_bench::{bar, ms, print_header, run_lu_min, sizes_from_args};

fn main() {
    print_header(
        "Figure 11: data conversion time t_conv (LU decomposition)",
        "Seconds per full run per platform pair (scaled).",
    );
    let sizes = sizes_from_args();
    println!(
        "{:>5} {:>14} {:>14} {:>14}   SL/max(LL,SS)",
        "size", "LL (s)", "SS (s)", "SL (s)"
    );
    let mut all = Vec::new();
    for &n in &sizes {
        let mut vals = Vec::new();
        for pair in &paper_pairs() {
            let r = run_lu_min(n, pair, 3);
            vals.push(ms(r.scaled.t_conv) / 1e3);
        }
        all.push((n, vals));
    }
    let max = all
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .fold(0.0f64, f64::max);
    for (n, vals) in &all {
        let ratio = vals[2] / vals[0].max(vals[1]).max(1e-12);
        println!(
            "{:>5} {:>14.6} {:>14.6} {:>14.6}  {:>6.1}x  |{}|",
            n,
            vals[0],
            vals[1],
            vals[2],
            ratio,
            bar(vals[2], max, 24)
        );
    }
    println!();
    println!("Expected shape: as Figure 10 but with larger absolute SL times —");
    println!("LU ships more update data per synchronization than matmul.");
}
