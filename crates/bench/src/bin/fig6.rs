//! Figure 6 — "Data sharing overhead breakdown".
//!
//! Stacked cost breakdown (index discovery, tag generation, data packing,
//! data unpacking, data conversion) in milliseconds for matrix
//! multiplication, per matrix size × platform pair (LL / SS / SL).
//! The paper's observations this run should reproduce:
//! * every component grows with matrix size;
//! * packing/unpacking are comparatively small;
//! * the heterogeneous pair (SL) pays far more conversion time than the
//!   homogeneous pairs.

use hdsm_apps::workload::{paper_pairs, SyncMode};
use hdsm_bench::{ms, print_header, run_matmul_min, sizes_from_args};

fn main() {
    print_header(
        "Figure 6: data sharing overhead breakdown (matrix multiplication)",
        "Columns are the Eq. 1 components, scaled times, in milliseconds.",
    );
    let sizes = sizes_from_args();
    println!(
        "{:>5} {:>4} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}  ok",
        "size", "pair", "index", "tag", "pack", "unpack", "conv", "TOTAL"
    );
    for &n in &sizes {
        for pair in &paper_pairs() {
            let r = run_matmul_min(n, pair, SyncMode::Barrier, 3);
            let c = r.scaled;
            println!(
                "{:>5} {:>4} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}  {}",
                n,
                r.pair,
                ms(c.t_index),
                ms(c.t_tag),
                ms(c.t_pack),
                ms(c.t_unpack),
                ms(c.t_conv),
                ms(c.c_share()),
                if r.verified { "✓" } else { "FAILED" },
            );
        }
        println!();
    }
    println!("Each cell is the best of 3 repetitions (min total).");
}
