//! Figure 7 — "Costs as a percentage of total time".
//!
//! The same experiment as Figure 6 with each component rendered as a
//! percentage of the total data-sharing cost. The paper's headline
//! observation: in the heterogeneous (SL) case the data-conversion share
//! "quickly overtakes all other components as the matrix size increases",
//! while in the homogeneous cases it stays low.

use hdsm_apps::workload::{paper_pairs, SyncMode};
use hdsm_bench::{bar, print_header, run_matmul_min, sizes_from_args};

fn main() {
    print_header(
        "Figure 7: cost components as % of total sharing time (matmul)",
        "index / tag / pack / unpack / conv percentages per size and pair.",
    );
    let sizes = sizes_from_args();
    println!(
        "{:>5} {:>4} {:>7} {:>7} {:>7} {:>7} {:>7}   conversion share",
        "size", "pair", "index%", "tag%", "pack%", "unpk%", "conv%"
    );
    for pair in &paper_pairs() {
        for &n in &sizes {
            let r = run_matmul_min(n, pair, SyncMode::Barrier, 3);
            let p = r.scaled.percentages();
            println!(
                "{:>5} {:>4} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1}   |{}|",
                n,
                r.pair,
                p[0],
                p[1],
                p[2],
                p[3],
                p[4],
                bar(p[4], 100.0, 30),
            );
        }
        println!();
    }
}
