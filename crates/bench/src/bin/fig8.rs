//! Figure 8 — "Index discovery" (`t_index`) vs matrix size.
//!
//! Measures the time to map writes to the protected global space into
//! application-level indexes (twin/diff byte scan + run→index mapping)
//! for the matrix multiplication workload, reported per platform: the
//! Solaris curve comes from the SS pair, the Linux curve from the LL pair
//! (t_index is a property of the releasing node, paper §5: "a measure of
//! the performance of the system on which the unlock takes place").

use hdsm_apps::workload::{paper_pairs, SyncMode};
use hdsm_bench::{ms, print_header, run_matmul_min, sizes_from_args};

fn main() {
    print_header(
        "Figure 8: index discovery time t_index (matrix multiplication)",
        "Seconds per full run, by releasing platform (scaled).",
    );
    let sizes = sizes_from_args();
    let pairs = paper_pairs();
    let ll = &pairs[0];
    let ss = &pairs[1];
    println!("{:>5} {:>14} {:>14}", "size", "solaris (s)", "linux (s)");
    for &n in &sizes {
        let r_ss = run_matmul_min(n, ss, SyncMode::Barrier, 3);
        let r_ll = run_matmul_min(n, ll, SyncMode::Barrier, 3);
        println!(
            "{:>5} {:>14.6} {:>14.6}",
            n,
            ms(r_ss.scaled.t_index) / 1e3,
            ms(r_ll.scaled.t_index) / 1e3,
        );
    }
    println!();
    println!("Expected shape: both curves grow with matrix size; the Solaris");
    println!("curve sits above the Linux curve by roughly the CPU factor.");
}
