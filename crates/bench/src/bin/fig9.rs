//! Figure 9 — "Tag generation" (`t_tag`) vs matrix size.
//!
//! Measures the time to form application-level tags from the discovered
//! indexes (coalescing consecutive array elements so that "many —
//! hundreds, perhaps thousands — indexes [distill] into a single tag").
//! The paper notes a worst-case spike (their size 216) when a series of
//! updates builds up at the home node and ships as one large batch; the
//! batch path here is exercised by the home-side tag formation, which is
//! reported separately.

use hdsm_apps::workload::{paper_pairs, SyncMode};
use hdsm_bench::{ms, print_header, run_matmul_min, sizes_from_args};

fn main() {
    print_header(
        "Figure 9: tag generation time t_tag (matrix multiplication)",
        "Seconds per full run, by releasing platform (scaled), plus the\nhome-side batch tag formation.",
    );
    let sizes = sizes_from_args();
    let pairs = paper_pairs();
    let ll = &pairs[0];
    let ss = &pairs[1];
    println!(
        "{:>5} {:>14} {:>14} {:>16} {:>16}",
        "size", "solaris (s)", "linux (s)", "home-batch SS", "home-batch LL"
    );
    for &n in &sizes {
        let r_ss = run_matmul_min(n, ss, SyncMode::Barrier, 3);
        let r_ll = run_matmul_min(n, ll, SyncMode::Barrier, 3);
        let workers_ss: f64 = r_ss
            .per_worker
            .iter()
            .map(|(_, c)| c.t_tag.as_secs_f64())
            .sum();
        let workers_ll: f64 = r_ll
            .per_worker
            .iter()
            .map(|(_, c)| c.t_tag.as_secs_f64())
            .sum();
        println!(
            "{:>5} {:>14.6} {:>14.6} {:>16.6} {:>16.6}",
            n,
            workers_ss / ss.remote.cpu_factor,
            workers_ll / ll.remote.cpu_factor,
            ms(r_ss.home.1.t_tag) / 1e3,
            ms(r_ll.home.1.t_tag) / 1e3,
        );
    }
    println!();
    println!("Expected shape: t_tag grows with size but stays well below t_conv;");
    println!("home-side batch formation dominates when updates accumulate");
    println!("between a thread's acquires (the paper's size-216 spike case).");
}
