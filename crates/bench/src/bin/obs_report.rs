//! End-to-end observability demo: run a Jacobi cluster with an enabled
//! recorder and export everything `hdsm-obs` produces.
//!
//! Writes:
//! * `results/obs_trace.json` — Chrome tracing JSON (load via
//!   `chrome://tracing` or <https://ui.perfetto.dev>); one track per rank.
//! * `results/obs_snapshot.json` — the machine-readable [`ObsSnapshot`].
//!
//! Also prints the plain-text cluster report and cross-checks the
//! snapshot's per-kind network totals against the fabric's own
//! [`NetStats`] — they are fed at the same call site and must agree.

use hdsm_apps::jacobi;
use hdsm_apps::workload::paper_pairs;
use hdsm_core::cluster::ClusterBuilder;
use hdsm_obs::{chrome_trace, Recorder};

fn main() {
    let n = 48;
    let sweeps = 6;
    let seed = 0x0B5;
    let pair = &paper_pairs()[2]; // SL: the heterogeneous pair.
    let recorder = Recorder::enabled();

    let mut builder = ClusterBuilder::new()
        .gthv(jacobi::gthv_def(n))
        .home(pair.home.clone())
        .barriers(1)
        .obs(recorder.clone())
        .init(move |g| jacobi::init(g, n, seed));
    builder = builder
        .worker(pair.home.clone())
        .worker(pair.remote.clone())
        .worker(pair.remote.clone());
    let outcome = builder
        .run(move |c, info| jacobi::run_worker(c, info, n, sweeps))
        .expect("jacobi cluster");
    assert!(
        jacobi::verify(&outcome.final_gthv, n, seed, sweeps),
        "jacobi failed to verify"
    );

    let snapshot = outcome.obs.as_ref().expect("recorder was enabled");

    // The snapshot's traffic table and NetStats are fed from the same
    // send-path call site; any disagreement is a bug.
    assert_eq!(snapshot.net_total_msgs, outcome.net_stats.total_messages());
    assert_eq!(snapshot.net_total_bytes, outcome.net_stats.total_bytes());
    assert_eq!(snapshot.net_update_bytes, outcome.net_stats.update_bytes());
    assert_eq!(
        snapshot.net_control_bytes,
        outcome.net_stats.control_bytes()
    );

    let results = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(results).expect("create results dir");
    let trace_path = format!("{results}/obs_trace.json");
    let snap_path = format!("{results}/obs_snapshot.json");
    std::fs::write(&trace_path, chrome_trace(&recorder.events())).expect("write trace");
    std::fs::write(&snap_path, snapshot.to_json()).expect("write snapshot");

    println!("{}", snapshot.report());
    println!("jacobi n={n} sweeps={sweeps} pair={} verified", pair.label);
    println!("chrome trace  -> results/obs_trace.json");
    println!("obs snapshot  -> results/obs_snapshot.json");
    println!(
        "net cross-check: {} msgs / {} bytes (obs == NetStats)",
        snapshot.net_total_msgs, snapshot.net_total_bytes
    );
}
