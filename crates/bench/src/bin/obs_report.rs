//! End-to-end observability demo: run a Jacobi cluster with an enabled
//! recorder and export everything `hdsm-obs` produces, then run a SOR
//! cluster over a lossy fabric and let the critical-path analyzer name
//! the straggler.
//!
//! Writes:
//! * `results/obs_trace.json` — Chrome tracing JSON (load via
//!   `chrome://tracing` or <https://ui.perfetto.dev>); one track per rank,
//!   with flow arrows linking each send to its receive.
//! * `results/obs_snapshot.json` — the machine-readable [`ObsSnapshot`].
//! * `results/critpath.txt` — per-sync-op critical paths from the faulty
//!   SOR run (straggler rank, slowest shard, retransmits per link).
//! * `results/obs_metrics.prom` — Prometheus text exposition (`--prom`),
//!   including the per-destination link counters and placement decision
//!   rows, cross-checked against [`NetStats`] before writing.
//! * `results/obs_timeseries.jsonl` — the faulty SOR run's windowed
//!   time-series, one delta frame per line.
//!
//! `--follow` tails the faulty SOR run live: each time-series frame is
//! printed as it closes, `tail -f` style. `--bundle <path>` pretty-prints
//! a flight-recorder bundle (`results/blackbox-*.json`) and exits.
//!
//! Also prints the plain-text cluster reports and cross-checks the
//! snapshot's network totals against the fabric's own [`NetStats`] —
//! overall and per destination endpoint — since they are fed at the same
//! call site and must agree.

use hdsm_apps::workload::paper_pairs;
use hdsm_apps::{jacobi, sor};
use hdsm_core::cluster::{ClusterBuilder, FaultConfig, TimingConfig, TopologyConfig};
use hdsm_net::fault::FaultPlan;
use hdsm_obs::{chrome_trace, pretty_bundle, Recorder};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--bundle") {
        // Offline flight-recorder triage: re-indent a bundle for reading.
        let path = args.get(i + 1).expect("--bundle takes a file path");
        let raw = std::fs::read_to_string(path).expect("read bundle");
        print!("{}", pretty_bundle(&raw));
        return;
    }
    let prom = args.iter().any(|a| a == "--prom");
    let follow = args.iter().any(|a| a == "--follow");
    let n = 48;
    let sweeps = 6;
    let seed = 0x0B5;
    let pair = &paper_pairs()[2]; // SL: the heterogeneous pair.
    let recorder = Recorder::enabled();

    let mut builder = ClusterBuilder::new()
        .gthv(jacobi::gthv_def(n))
        .home(pair.home.clone())
        .barriers(1)
        .obs(recorder.clone())
        .init(move |g| jacobi::init(g, n, seed));
    builder = builder
        .worker(pair.home.clone())
        .worker(pair.remote.clone())
        .worker(pair.remote.clone());
    let outcome = builder
        .run(move |c, info| jacobi::run_worker(c, info, n, sweeps))
        .expect("jacobi cluster");
    assert!(
        jacobi::verify(&outcome.final_gthv, n, seed, sweeps),
        "jacobi failed to verify"
    );

    let snapshot = outcome.obs.as_ref().expect("recorder was enabled");

    // The snapshot's traffic tables and NetStats are fed from the same
    // send-path call site; any disagreement is a bug.
    assert_eq!(snapshot.net_total_msgs, outcome.net_stats.total_messages());
    assert_eq!(snapshot.net_total_bytes, outcome.net_stats.total_bytes());
    assert_eq!(snapshot.net_update_bytes, outcome.net_stats.update_bytes());
    assert_eq!(
        snapshot.net_control_bytes,
        outcome.net_stats.control_bytes()
    );
    for row in &snapshot.net_by_dest {
        let t = outcome.net_stats.dest_traffic(row.dst);
        assert_eq!((row.msgs, row.bytes), (t.msgs, t.bytes), "dest {}", row.dst);
    }

    let results = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(results).expect("create results dir");
    let trace_path = format!("{results}/obs_trace.json");
    let snap_path = format!("{results}/obs_snapshot.json");
    std::fs::write(&trace_path, chrome_trace(&recorder.events())).expect("write trace");
    std::fs::write(&snap_path, snapshot.to_json()).expect("write snapshot");
    if prom {
        // The full exposition: gauges/counters plus the per-destination
        // link counters and any placement decision rows.
        let text = recorder.prometheus().expect("recorder enabled");
        // The exported per-dest counters must re-sum to the fabric's own
        // totals — they are fed from the same send path.
        let sum = |metric: &str| -> u64 {
            text.lines()
                .filter(|l| l.starts_with(metric) && l.contains('{'))
                .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
                .sum()
        };
        assert_eq!(
            sum("hdsm_net_dest_msgs"),
            outcome.net_stats.total_messages(),
            "prometheus per-dest msg counters disagree with NetStats"
        );
        assert_eq!(
            sum("hdsm_net_dest_bytes"),
            outcome.net_stats.total_bytes(),
            "prometheus per-dest byte counters disagree with NetStats"
        );
        std::fs::write(format!("{results}/obs_metrics.prom"), text).expect("write prom");
    }

    println!("{}", snapshot.report());
    println!("jacobi n={n} sweeps={sweeps} pair={} verified", pair.label);

    // ---- faulty SOR: who made each barrier slow? ----
    let sor_n = 36;
    let sor_sweeps = 4;
    let sor_seed = 0x50F;
    let plan = FaultPlan::seeded(0xBEEF).drop(0.05);
    let faulty = Recorder::enabled();
    let builder2 = ClusterBuilder::new()
        .gthv(sor::gthv_def(sor_n))
        .home(pair.home.clone())
        .worker(pair.home.clone())
        .worker(pair.remote.clone())
        .barriers(1)
        .topology(TopologyConfig {
            shards: 2,
            ..Default::default()
        })
        .faults(FaultConfig { plan: Some(plan) })
        .timing(TimingConfig {
            retry_base: Some(Duration::from_millis(10)),
            recv_deadline: Some(Duration::from_secs(30)),
            ..Default::default()
        })
        .telemetry(Duration::from_millis(10), 1024)
        .obs(faulty.clone())
        .init(move |g| sor::init(g, sor_n, sor_seed));
    let outcome2 = if follow {
        // Tail the windowed time-series while the run is still going:
        // print each frame's one-line brief as it closes.
        let rec = faulty.clone();
        let handle = std::thread::spawn(move || {
            builder2.run(move |c, info| sor::run_worker(c, info, sor_n, sor_sweeps))
        });
        let mut last_seq = None;
        loop {
            let done = handle.is_finished();
            for f in rec.timeseries_frames() {
                if last_seq.is_none_or(|s| f.seq > s) {
                    println!("{}", f.brief());
                    last_seq = Some(f.seq);
                }
            }
            if done {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        handle
            .join()
            .expect("follow thread")
            .expect("faulty sor cluster")
    } else {
        builder2
            .run(move |c, info| sor::run_worker(c, info, sor_n, sor_sweeps))
            .expect("faulty sor cluster")
    };
    std::fs::write(
        format!("{results}/obs_timeseries.jsonl"),
        faulty.timeseries_jsonl(),
    )
    .expect("write timeseries");
    assert!(
        sor::verify(&outcome2.final_gthv, sor_n, sor_seed, sor_sweeps),
        "sor failed to verify under faults"
    );
    let snap2 = outcome2.obs.as_ref().expect("recorder was enabled");
    assert!(
        !snap2.critpaths.is_empty(),
        "critical-path analyzer found no sync ops"
    );
    let mut critpath = String::new();
    critpath.push_str(&format!(
        "critical paths: sor n={sor_n} sweeps={sor_sweeps} shards=2, 5% drop fabric\n\n"
    ));
    for cp in &snap2.critpaths {
        critpath.push_str(&cp.describe(2));
        critpath.push('\n');
    }
    std::fs::write(format!("{results}/critpath.txt"), &critpath).expect("write critpath");
    println!("{}", snap2.report());
    println!(
        "faulty sor fabric: dropped {} retransmitted {}",
        outcome2.net_stats.dropped, outcome2.net_stats.retransmitted
    );

    println!("chrome trace  -> results/obs_trace.json");
    println!("obs snapshot  -> results/obs_snapshot.json");
    println!("critical path -> results/critpath.txt");
    println!("time-series   -> results/obs_timeseries.jsonl");
    if prom {
        println!("prometheus    -> results/obs_metrics.prom");
    }
    println!(
        "net cross-check: {} msgs / {} bytes over {} dests (obs == NetStats)",
        snapshot.net_total_msgs,
        snapshot.net_total_bytes,
        snapshot.net_by_dest.len()
    );
}
