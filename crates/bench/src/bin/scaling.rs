//! Thread/node scaling — the paper's §1 motivation ("idle machines'
//! computing power is utilized for better throughput and parallel
//! applications can be sped up"). Not a paper figure; an extension
//! experiment: wall-clock time and sharing overhead of the matmul
//! workload as workers are added, on homogeneous and heterogeneous
//! clusters.

use hdsm_apps::matmul;
use hdsm_apps::workload::SyncMode;
use hdsm_bench::{ms, print_header};
use hdsm_core::cluster::ClusterBuilder;
use hdsm_platform::spec::PlatformSpec;
use std::time::Instant;

fn main() {
    print_header(
        "Scaling: matmul wall-clock and sharing overhead vs worker count",
        "Extension experiment (not a paper figure).",
    );
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(177);
    let seed = 99;
    println!("matrix {n}x{n}\n");
    println!(
        "{:>8} {:>6} {:>12} {:>14} {:>12} {:>10}",
        "cluster", "workers", "wall (ms)", "C_share (ms)", "net bytes", "verified"
    );
    for workers in [1usize, 2, 3, 4, 6] {
        for hetero in [false, true] {
            let mut b = ClusterBuilder::new()
                .gthv(matmul::gthv_def(n))
                .home(PlatformSpec::linux_x86())
                .barriers(2)
                .locks(1)
                .init(move |g| matmul::init(g, n, seed));
            for w in 0..workers {
                b = b.worker(if hetero && w % 2 == 1 {
                    PlatformSpec::solaris_sparc()
                } else {
                    PlatformSpec::linux_x86()
                });
            }
            let t0 = Instant::now();
            let outcome = b
                .run(move |c, i| matmul::run_worker(c, i, n, SyncMode::Barrier))
                .expect("run");
            let wall = t0.elapsed();
            let mut share: hdsm_core::costs::CostBreakdown = outcome.worker_costs.iter().sum();
            share += outcome.home_costs;
            println!(
                "{:>8} {:>6} {:>12.2} {:>14.3} {:>12} {:>10}",
                if hetero { "mixed" } else { "LL" },
                workers,
                ms(wall),
                ms(share.c_share()),
                outcome.net_stats.total_bytes(),
                matmul::verify(&outcome.final_gthv, n, seed),
            );
        }
    }
    println!();
    println!("Expected: wall-clock falls as workers are added (compute");
    println!("dominates), while C_share grows mildly (more participants to");
    println!("synchronize) — the paper's 'minimal overhead' claim.");
}
