//! Table 1 — the index table generated from the Figure 4 structure.
//!
//! Builds the exact `GThV_t` of paper Figure 4 (`void *GThP; int
//! A/B/C[237*237]; int n;`) at the paper's base address `0x40058000` on
//! the 32-bit Linux platform and prints the index table in the paper's
//! Address / Size / Number format — then shows the same structure's table
//! on the 64-bit big-endian platform to demonstrate the paper's point
//! that sizes and addresses differ while the *indexes* stay the same.

use hdsm_core::index_table::IndexTable;
use hdsm_platform::ctype::{paper_figure4_struct, CType};
use hdsm_platform::spec::PlatformSpec;

fn main() {
    let ty = CType::Struct(paper_figure4_struct());
    let base = 0x4005_8000;

    println!(
        "Paper Table 1 — index table on {}:",
        PlatformSpec::linux_x86()
    );
    let linux = IndexTable::build(&ty, base, &PlatformSpec::linux_x86());
    print!("{}", linux.render_paper_table());

    println!();
    println!(
        "Same structure on {} (sizes differ, indexes do not):",
        PlatformSpec::solaris_sparc64()
    );
    let sparc64 = IndexTable::build(&ty, base, &PlatformSpec::solaris_sparc64());
    print!("{}", sparc64.render_paper_table());

    println!();
    println!("entry  path   linux-x86(addr,size)  solaris-sparc64(addr,size)");
    for (a, b) in linux.rows().iter().zip(sparc64.rows()) {
        assert_eq!(a.entry, b.entry);
        println!(
            "{:>5}  {:<5}  {:#010x} {:>4}      {:#010x} {:>4}",
            a.entry, a.path, a.addr, a.size, b.addr, b.size
        );
    }
}
