#![warn(missing_docs)]

//! Experiment harness regenerating the paper's evaluation (§5).
//!
//! Each `fig*` binary in `src/bin/` reproduces one figure of the paper;
//! `table1` reproduces Table 1. The harness runs the paper's exact
//! configuration — three computing threads, two of them "migrated" to the
//! remote platform and one staying at the home platform — for every matrix
//! size (99, 138, 177, 216, 255) and platform pair (LL, SS, SL), and
//! aggregates the Eq. 1 cost breakdown
//! (`t_index + t_tag + t_pack + t_unpack + t_conv`) across all
//! participants.
//!
//! **Time scaling.** The paper's machines differ in clock speed (2.4 GHz
//! P4 vs 1.28 GHz UltraSPARC). All nodes here run on one host CPU, so each
//! reported time is also given *scaled* by the inverse of the simulated
//! platform's `cpu_factor` (time measured on a "Solaris" node is divided
//! by 0.53). Raw measurements are printed alongside; scaling never feeds
//! back into the protocol.

use hdsm_apps::workload::{PlatformPair, SyncMode};
use hdsm_apps::{lu, matmul};
use hdsm_core::cluster::ClusterBuilder;
use hdsm_core::costs::CostBreakdown;
use std::time::Duration;

/// Aggregated result of one experiment cell (workload × size × pair).
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Pair label ("LL", "SS", "SL").
    pub pair: String,
    /// Matrix size.
    pub n: usize,
    /// Raw summed cost breakdown (workers + home).
    pub raw: CostBreakdown,
    /// CPU-factor-scaled summed cost breakdown.
    pub scaled: CostBreakdown,
    /// Raw per-worker breakdowns with their platform names.
    pub per_worker: Vec<(String, CostBreakdown)>,
    /// Home-side breakdown (home platform name, costs).
    pub home: (String, CostBreakdown),
    /// Did the distributed result match the serial oracle?
    pub verified: bool,
    /// Total bytes that crossed the simulated network.
    pub net_bytes: u64,
    /// Total messages that crossed the simulated network.
    pub net_messages: u64,
}

fn scale(costs: &CostBreakdown, cpu_factor: f64) -> CostBreakdown {
    costs.scaled(1.0 / cpu_factor)
}

fn aggregate(
    pair: &PlatformPair,
    n: usize,
    worker_platforms: &[hdsm_platform::spec::Platform],
    outcome: &hdsm_core::cluster::ClusterOutcome<()>,
    verified: bool,
) -> ExperimentResult {
    let per_worker: Vec<(String, CostBreakdown)> = worker_platforms
        .iter()
        .zip(&outcome.worker_costs)
        .map(|(plat, costs)| (plat.name.clone(), *costs))
        .collect();
    let mut raw: CostBreakdown = outcome.worker_costs.iter().sum();
    raw += &outcome.home_costs;
    let mut scaled: CostBreakdown = worker_platforms
        .iter()
        .zip(&outcome.worker_costs)
        .map(|(plat, costs)| scale(costs, plat.cpu_factor))
        .sum();
    scaled += scale(&outcome.home_costs, pair.home.cpu_factor);
    ExperimentResult {
        pair: pair.label.to_string(),
        n,
        raw,
        scaled,
        per_worker,
        home: (pair.home.name.clone(), outcome.home_costs),
        verified,
        net_bytes: outcome.net_stats.total_bytes(),
        net_messages: outcome.net_stats.total_messages(),
    }
}

/// The paper's thread placement: one worker stays on the home platform,
/// two are migrated to the remote platform.
pub fn paper_placement(pair: &PlatformPair) -> Vec<hdsm_platform::spec::Platform> {
    vec![pair.home.clone(), pair.remote.clone(), pair.remote.clone()]
}

/// Run the matrix-multiplication experiment for one cell.
pub fn run_matmul(n: usize, pair: &PlatformPair, mode: SyncMode) -> ExperimentResult {
    let seed = 0xC0FFEE;
    let workers = paper_placement(pair);
    let mut builder = ClusterBuilder::new()
        .gthv(matmul::gthv_def(n))
        .home(pair.home.clone())
        .locks(1)
        .barriers(2)
        .init(move |g| matmul::init(g, n, seed));
    for w in &workers {
        builder = builder.worker(w.clone());
    }
    let outcome = builder
        .run(move |c, info| matmul::run_worker(c, info, n, mode))
        .expect("matmul cluster");
    let verified = matmul::verify(&outcome.final_gthv, n, seed);
    aggregate(pair, n, &workers, &outcome, verified)
}

/// Run the LU-decomposition experiment for one cell.
pub fn run_lu(n: usize, pair: &PlatformPair) -> ExperimentResult {
    let seed = 0xBEEF;
    let workers = paper_placement(pair);
    let mut builder = ClusterBuilder::new()
        .gthv(lu::gthv_def(n))
        .home(pair.home.clone())
        .locks(1)
        .barriers(1)
        .init(move |g| lu::init(g, n, seed));
    for w in &workers {
        builder = builder.worker(w.clone());
    }
    let outcome = builder
        .run(move |c, info| lu::run_worker(c, info, n))
        .expect("lu cluster");
    let verified = lu::verify(&outcome.final_gthv, n, seed);
    aggregate(pair, n, &workers, &outcome, verified)
}

/// Milliseconds with two decimals.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Render an ASCII bar of `value` out of `max` in `width` columns.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let filled = ((value / max) * width as f64).round() as usize;
    "#".repeat(filled.min(width))
}

/// Run one cell `reps` times and keep the repetition with the smallest
/// total sharing cost — the standard way to strip scheduler noise from a
/// single-machine measurement (all repetitions must verify).
pub fn run_matmul_min(
    n: usize,
    pair: &PlatformPair,
    mode: SyncMode,
    reps: usize,
) -> ExperimentResult {
    assert!(reps >= 1);
    let mut best: Option<ExperimentResult> = None;
    for _ in 0..reps {
        let r = run_matmul(n, pair, mode);
        assert!(
            r.verified,
            "matmul n={n} pair={} failed to verify",
            pair.label
        );
        if best
            .as_ref()
            .is_none_or(|b| r.raw.c_share() < b.raw.c_share())
        {
            best = Some(r);
        }
    }
    best.expect("reps >= 1")
}

/// As [`run_matmul_min`] but for the LU workload.
pub fn run_lu_min(n: usize, pair: &PlatformPair, reps: usize) -> ExperimentResult {
    assert!(reps >= 1);
    let mut best: Option<ExperimentResult> = None;
    for _ in 0..reps {
        let r = run_lu(n, pair);
        assert!(r.verified, "lu n={n} pair={} failed to verify", pair.label);
        if best
            .as_ref()
            .is_none_or(|b| r.raw.c_share() < b.raw.c_share())
        {
            best = Some(r);
        }
    }
    best.expect("reps >= 1")
}

/// Matrix sizes for a figure run: the paper's sizes by default, or the
/// integers passed on the command line (e.g. `fig6 16 32` for a quick
/// check).
pub fn sizes_from_args() -> Vec<usize> {
    let given: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    if given.is_empty() {
        hdsm_apps::workload::paper_sizes().to_vec()
    } else {
        given
    }
}

/// Print the standard experiment header.
pub fn print_header(title: &str, what: &str) {
    println!("================================================================");
    println!("{title}");
    println!("{what}");
    println!("Workload placement: 3 threads (1 on the home platform, 2 migrated");
    println!("to the remote platform), per the paper's §5 setup.");
    println!("Times marked 'scaled' divide each node's measurement by its");
    println!("cpu_factor to model the paper's 1.28 GHz SPARC vs 2.4 GHz P4.");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsm_apps::workload::paper_pairs;

    #[test]
    fn matmul_cell_runs_and_verifies() {
        let pair = &paper_pairs()[2]; // SL, the heterogeneous pair
        let r = run_matmul(16, pair, SyncMode::Barrier);
        assert!(r.verified);
        assert_eq!(r.per_worker.len(), 3);
        assert!(r.raw.c_share() > Duration::ZERO);
        assert!(r.net_bytes > 0);
        // Scaling inflates (cpu factors <= 1).
        assert!(r.scaled.c_share() >= r.raw.c_share());
    }

    #[test]
    fn lu_cell_runs_and_verifies() {
        let pair = &paper_pairs()[0];
        let r = run_lu(12, pair);
        assert!(r.verified);
    }

    #[test]
    fn bar_rendering() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
    }
}
