//! The traditional homogeneous twin/diff DSM baseline.
//!
//! Paper §4: "a basic DSM … [takes] a diff between the twin and the
//! current page. These differences can be propagated … and applied
//! directly to nodes owing to the fact that nodes are homogeneous to one
//! another." This module implements exactly that — raw byte diffs with no
//! index abstraction, no tags and no conversion — both as the correctness
//! baseline DSD must match on homogeneous clusters and as the ablation
//! comparator for the overhead the heterogeneity machinery adds
//! (`bench_baseline`).
//!
//! Its defining *limitation* is reproduced too: applying a raw diff across
//! platforms with different layout rules is a type-checked error here,
//! where the paper notes a real system would silently corrupt data.

use crate::gthv::GthvInstance;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use hdsm_memory::diff::diff_pages;
use std::fmt;

/// A raw byte diff: simulated address + replacement bytes. This is the
/// whole wire format of the baseline — note the absence of any type or
/// layout information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawDiff {
    /// Simulated address of the first byte.
    pub addr: u64,
    /// Replacement bytes.
    pub bytes: Vec<u8>,
}

/// Errors from the baseline DSM.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// Sender and receiver are not layout-homogeneous — the baseline
    /// cannot function (this is the gap DSD exists to fill).
    Heterogeneous {
        /// Sender platform name.
        src: String,
        /// Receiver platform name.
        dst: String,
    },
    /// A diff fell outside the shared region.
    OutOfRange(u64),
    /// Malformed frame.
    BadFrame,
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Heterogeneous { src, dst } => write!(
                f,
                "baseline DSM requires homogeneous nodes, got {src} -> {dst}"
            ),
            BaselineError::OutOfRange(a) => write!(f, "diff at {a:#x} out of range"),
            BaselineError::BadFrame => write!(f, "malformed raw-diff frame"),
        }
    }
}

impl std::error::Error for BaselineError {}

/// Extract raw diffs from a node's dirty pages (twin/diff only — no index
/// mapping, no coalescing beyond what the byte scan produces).
pub fn extract_raw_diffs(gthv: &GthvInstance) -> Vec<RawDiff> {
    diff_pages(gthv.space())
        .into_iter()
        .map(|run| RawDiff {
            addr: run.addr,
            bytes: gthv
                .space()
                .read(run.addr, run.len)
                .expect("diff run inside space")
                .to_vec(),
        })
        .collect()
}

/// Apply raw diffs from a homogeneous peer. `src_platform` is the sender's
/// platform name (checked — the baseline's homogeneity requirement).
pub fn apply_raw_diffs(
    gthv: &mut GthvInstance,
    src_platform: &hdsm_platform::spec::PlatformSpec,
    diffs: &[RawDiff],
) -> Result<(), BaselineError> {
    if !src_platform.homogeneous_with(gthv.platform()) {
        return Err(BaselineError::Heterogeneous {
            src: src_platform.name.clone(),
            dst: gthv.platform().name.clone(),
        });
    }
    for d in diffs {
        gthv.space_mut()
            .write_untracked(d.addr, &d.bytes)
            .map_err(|_| BaselineError::OutOfRange(d.addr))?;
    }
    Ok(())
}

/// Pack raw diffs for the wire (the baseline's `t_pack` equivalent).
pub fn pack_raw(diffs: &[RawDiff]) -> Bytes {
    let mut out =
        BytesMut::with_capacity(4 + diffs.iter().map(|d| 12 + d.bytes.len()).sum::<usize>());
    out.put_u32(diffs.len() as u32);
    for d in diffs {
        out.put_u64(d.addr);
        out.put_u32(d.bytes.len() as u32);
        out.put_slice(&d.bytes);
    }
    out.freeze()
}

/// Unpack raw diffs.
pub fn unpack_raw(mut buf: Bytes) -> Result<Vec<RawDiff>, BaselineError> {
    if buf.remaining() < 4 {
        return Err(BaselineError::BadFrame);
    }
    let n = buf.get_u32() as usize;
    // `n` is untrusted wire data: bound the preallocation.
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        if buf.remaining() < 12 {
            return Err(BaselineError::BadFrame);
        }
        let addr = buf.get_u64();
        let len = buf.get_u32() as usize;
        if buf.remaining() < len {
            return Err(BaselineError::BadFrame);
        }
        out.push(RawDiff {
            addr,
            bytes: buf.copy_to_bytes(len).to_vec(),
        });
    }
    if buf.has_remaining() {
        return Err(BaselineError::BadFrame);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gthv::GthvDef;
    use hdsm_platform::ctype::StructBuilder;
    use hdsm_platform::scalar::ScalarKind;
    use hdsm_platform::spec::{Platform, PlatformSpec};

    fn inst(p: Platform) -> GthvInstance {
        let def = GthvDef::new(
            StructBuilder::new("G")
                .array("xs", ScalarKind::Int, 256)
                .build()
                .unwrap(),
        )
        .unwrap();
        GthvInstance::new(def, p)
    }

    #[test]
    fn homogeneous_diff_propagation_works() {
        let mut a = inst(PlatformSpec::linux_x86());
        let mut b = inst(PlatformSpec::linux_x86());
        a.space_mut().protect_all();
        for i in 0..32 {
            a.write_int(0, i, 7 * i as i128).unwrap();
        }
        let diffs = extract_raw_diffs(&a);
        assert!(!diffs.is_empty());
        let packed = pack_raw(&diffs);
        let unpacked = unpack_raw(packed).unwrap();
        assert_eq!(unpacked, diffs);
        apply_raw_diffs(&mut b, a.platform(), &unpacked).unwrap();
        for i in 0..32 {
            assert_eq!(b.read_int(0, i).unwrap(), 7 * i as i128);
        }
    }

    #[test]
    fn heterogeneous_application_rejected() {
        let mut a = inst(PlatformSpec::linux_x86());
        let mut b = inst(PlatformSpec::solaris_sparc());
        a.space_mut().protect_all();
        a.write_int(0, 0, 1).unwrap();
        let diffs = extract_raw_diffs(&a);
        assert!(matches!(
            apply_raw_diffs(&mut b, a.platform(), &diffs),
            Err(BaselineError::Heterogeneous { .. })
        ));
    }

    #[test]
    fn baseline_equals_dsd_on_homogeneous_pair() {
        use crate::runs::abstract_diffs;
        use crate::update::{apply_batch, extract_updates};
        use hdsm_tags::convert::ConversionStats;

        let mut src = inst(PlatformSpec::linux_x86());
        let mut via_baseline = inst(PlatformSpec::linux_x86());
        let mut via_dsd = inst(PlatformSpec::linux_x86());
        src.space_mut().protect_all();
        for i in (0..256).step_by(3) {
            src.write_int(0, i, i as i128 - 100).unwrap();
        }

        let raw = extract_raw_diffs(&src);
        apply_raw_diffs(&mut via_baseline, src.platform(), &raw).unwrap();

        let runs = hdsm_memory::diff::diff_pages(src.space());
        let ranges = abstract_diffs(src.table(), &runs);
        let ups = extract_updates(&src, &ranges).unwrap();
        let mut stats = ConversionStats::default();
        apply_batch(&mut via_dsd, &ups, &mut stats).unwrap();

        assert_eq!(via_baseline.space().raw(), via_dsd.space().raw());
    }

    #[test]
    fn malformed_frames_rejected() {
        assert!(unpack_raw(Bytes::from_static(&[0, 0])).is_err());
        assert!(unpack_raw(Bytes::from_static(&[0, 0, 0, 1, 0, 0])).is_err());
        let mut extra = BytesMut::from(&pack_raw(&[])[..]);
        extra.put_u8(9);
        assert!(unpack_raw(extra.freeze()).is_err());
    }

    #[test]
    fn out_of_range_diff_rejected() {
        let mut b = inst(PlatformSpec::linux_x86());
        let bogus = RawDiff {
            addr: 0x1,
            bytes: vec![0xff],
        };
        assert!(matches!(
            apply_raw_diffs(&mut b, &PlatformSpec::linux_x86(), &[bogus]),
            Err(BaselineError::OutOfRange(_))
        ));
    }
}
