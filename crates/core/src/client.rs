//! The computing thread's side of the DSD protocol.
//!
//! A [`DsdClient`] belongs to one application thread. It holds the
//! thread's node-local copy of `GThV` (in the node's native
//! representation, write-protected between synchronization points) and
//! implements the four primitives of paper §4:
//!
//! * [`DsdClient::acquire`] / [`DsdClient::lock`] — acquire a distributed
//!   mutex (the latter returns an RAII [`LockGuard`]); outstanding updates
//!   arrive with the grant, are converted (or memcpy'd) into the local
//!   copy, and the region is re-armed for write detection;
//! * [`DsdClient::release`] — diff the dirty pages, abstract the diffs
//!   to application-level index ranges, coalesce, tag, pack, ship to the
//!   home thread and release;
//! * [`DsdClient::barrier`] — a release followed by an acquire that
//!   completes when every thread has entered;
//! * [`DsdClient::join`] — sign off and wait for program shutdown.
//!
//! Synchronization objects are addressed by typed handles ([`LockId`],
//! [`BarrierId`], [`CondId`]). The bare-`u32` `mth_*` shims deprecated in
//! 0.5.0 have been removed.
//!
//! Under a sharded home ([`Directory`] with `S > 1`) a release first fans
//! the collected updates out to their owning shards (`UpdateFlush`,
//! awaiting each ack) before the release itself goes to the mutex's (or
//! barrier's) home shard, and an acquire pulls outstanding updates from
//! every non-granting shard (`UpdateFetch`) after the grant. With one
//! shard both loops vanish and the message sequence is byte-identical to
//! the classic single-home protocol.
//!
//! Every phase is timed into the Eq. 1 [`CostBreakdown`].

use crate::costs::CostBreakdown;
use crate::directory::Directory;
use crate::gthv::{GthvError, GthvInstance};
use crate::ids::{BarrierId, CondId, LockId};
use crate::protocol::{DsdMsg, ProtocolError};
use crate::runs::{coalesce, map_runs};
use crate::update::{apply_batch, apply_batch_mode, apply_tracked, extract_updates, UpdateError};
use hdsm_memory::diff::diff_pages;
use hdsm_net::endpoint::{Endpoint, NetError};
use hdsm_net::message::MsgKind;
use hdsm_obs::{EventKind, OpCtx, OpKind, Recorder};
use hdsm_platform::spec::Platform;
use hdsm_tags::convert::ConversionStats;
use hdsm_tags::wire::WireUpdate;
use std::fmt;
use std::time::Instant;

/// Errors from the client side of the protocol.
#[derive(Debug)]
pub enum DsdError {
    /// Transport failure.
    Net(NetError),
    /// Malformed message.
    Protocol(ProtocolError),
    /// Update extraction/application failure.
    Update(UpdateError),
    /// Typed data access failure.
    Gthv(GthvError),
    /// Unexpected message while waiting for a specific reply.
    Unexpected(&'static str),
    /// The home service declared a participant dead (lease expiry); the
    /// blocked operation cannot complete. Carries the lost worker's rank
    /// plus the failure detector's evidence at the moment it fired.
    WorkerLost {
        /// The lost worker's rank.
        rank: u32,
        /// How long the home had gone without hearing from the worker
        /// (`None` when talking to a home that predates the enriched
        /// frame).
        heard_age: Option<std::time::Duration>,
        /// The lease deadline that silence exceeded (`None` as above).
        lease: Option<std::time::Duration>,
    },
    /// `MTh_cond_wait` under a sharded home requires the condition and
    /// its mutex to be homed at the same shard — the release+park must be
    /// atomic at a single owner.
    ShardMismatch {
        /// Condition variable index.
        cond: u32,
        /// Mutex index.
        lock: u32,
    },
    /// Sentinel returned by a test body to simulate this worker crashing:
    /// the cluster harness stops the worker without signing it off, so
    /// the home's failure detector must notice the silence.
    Crashed,
}

impl fmt::Display for DsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsdError::Net(e) => write!(f, "net: {e}"),
            DsdError::Protocol(e) => write!(f, "protocol: {e}"),
            DsdError::Update(e) => write!(f, "update: {e}"),
            DsdError::Gthv(e) => write!(f, "gthv: {e}"),
            DsdError::Unexpected(s) => write!(f, "unexpected message, wanted {s}"),
            DsdError::WorkerLost {
                rank,
                heard_age,
                lease,
            } => match (heard_age, lease) {
                (Some(age), Some(lease)) => write!(
                    f,
                    "worker {rank} lost: silent {}ms, past its {}ms lease",
                    age.as_millis(),
                    lease.as_millis()
                ),
                _ => write!(f, "worker {rank} lost (lease expired)"),
            },
            DsdError::ShardMismatch { cond, lock } => write!(
                f,
                "cond {cond} and mutex {lock} are homed at different shards"
            ),
            DsdError::Crashed => write!(f, "worker simulated a crash"),
        }
    }
}

impl std::error::Error for DsdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DsdError::Net(e) => Some(e),
            DsdError::Protocol(e) => Some(e),
            DsdError::Update(e) => Some(e),
            DsdError::Gthv(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for DsdError {
    fn from(e: NetError) -> Self {
        DsdError::Net(e)
    }
}
impl From<ProtocolError> for DsdError {
    fn from(e: ProtocolError) -> Self {
        DsdError::Protocol(e)
    }
}
impl From<UpdateError> for DsdError {
    fn from(e: UpdateError) -> Self {
        DsdError::Update(e)
    }
}
impl From<GthvError> for DsdError {
    fn from(e: GthvError) -> Self {
        DsdError::Gthv(e)
    }
}

/// One step of a xorshift64 PRNG — enough randomness for retry jitter
/// without dragging in a dependency. `state` must be non-zero.
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// The next retransmission delay under *decorrelated jitter* (the
/// AWS-architecture-blog variant): uniform in `[base, 3·prev]`, clamped
/// to `cap`. Successive delays wander instead of doubling in lockstep,
/// so clients whose requests died together do not thunder back together;
/// the cap bounds the worst-case stall a single client can self-inflict.
fn decorrelated_backoff(
    prev: std::time::Duration,
    base: std::time::Duration,
    cap: std::time::Duration,
    rng: &mut u64,
) -> std::time::Duration {
    let lo = base.as_micros() as u64;
    let hi = (prev.as_micros() as u64).saturating_mul(3).max(lo + 1);
    let pick = lo + xorshift64(rng) % (hi - lo);
    std::time::Duration::from_micros(pick).min(cap)
}

/// A computing thread's handle on the distributed shared data.
pub struct DsdClient {
    thread_rank: u32,
    ep: Endpoint,
    home_ep: u32,
    /// Entry/lock/barrier → home-shard partition; the single-home layout
    /// unless the cluster was built with `shards(n)`.
    directory: Directory,
    /// Rank used for this client's observability events: the transport
    /// endpoint rank, which never collides with home-shard ranks (it
    /// equals the thread rank in the classic single-home layout).
    obs_rank: u32,
    gthv: GthvInstance,
    costs: CostBreakdown,
    conv_stats: ConversionStats,
    recv_deadline: std::time::Duration,
    promote_threshold: u8,
    /// Use the compiled-plan apply path, the grouped v2 wire format and
    /// the parallel diff scan. On by default; the differential suite turns
    /// it off to compare against the original slow paths.
    fast_path: bool,
    /// Monotonic request id for the at-most-once envelope.
    req_counter: u64,
    /// Retransmissions attempted before waiting out the full deadline.
    max_retries: u32,
    /// First retransmission delay; later delays use decorrelated jitter.
    retry_base: std::time::Duration,
    /// Hard ceiling on any single retransmission delay.
    retry_cap: std::time::Duration,
    /// Directory epoch per shard, learned from `ViewChange` replies.
    /// Requests are stamped with it when the directory has replicas;
    /// absent entries mean epoch 0 (the shard's original primary).
    shard_epochs: std::collections::HashMap<u32, u32>,
    /// Failover overrides: shard → endpoint this client currently
    /// believes serves it (set when a primary dies or deposes itself).
    shard_overrides: std::collections::HashMap<u32, u32>,
    /// Placement overrides: entry → (owning shard, placement epoch),
    /// learned lazily from `EntryMoved` bounces when the adaptive
    /// placement engine re-homes an entry away from its modulo shard.
    /// Higher epochs win; absent entries follow the static directory.
    entry_overrides: std::collections::HashMap<u32, (u32, u32)>,
    /// Observability hook (disabled by default: every use is a null check).
    recorder: Recorder,
    /// The fabric's time source (wall clock in threaded mode, virtual
    /// clock in simulation mode); every deadline and backoff below reads
    /// it, never `Instant`, so retries are seed-deterministic in sim runs.
    clock: hdsm_net::FabricClock,
    /// Open lock-hold spans: lock id → (epoch µs, fabric start) at grant.
    held_since: std::collections::HashMap<u32, (u64, hdsm_net::FabricInstant)>,
    /// The sync operation currently in progress; stamped into every span,
    /// send and retransmit so the cross-rank trace can attribute them.
    cur_op: OpCtx,
    /// Per-(kind, id) episode counters backing `cur_op.epoch`.
    op_epochs: std::collections::HashMap<(OpKind, u32), u32>,
}

impl DsdClient {
    /// Create a client for thread `thread_rank`, talking to the home
    /// service at endpoint `home_ep`. The local copy starts write-
    /// protected: any store before the first acquire is caught and shipped
    /// at the first release, like a store between `mprotect` and the first
    /// lock in the original system.
    pub fn new(thread_rank: u32, ep: Endpoint, home_ep: u32, mut gthv: GthvInstance) -> DsdClient {
        gthv.space_mut().reset_and_protect();
        let obs_rank = ep.rank();
        let clock = ep.clock();
        DsdClient {
            thread_rank,
            ep,
            home_ep,
            directory: Directory::single(),
            obs_rank,
            gthv,
            costs: CostBreakdown::default(),
            conv_stats: ConversionStats::default(),
            recv_deadline: std::time::Duration::from_secs(30),
            promote_threshold: 100,
            fast_path: true,
            req_counter: 0,
            max_retries: 10,
            retry_base: std::time::Duration::from_millis(250),
            retry_cap: std::time::Duration::from_secs(5),
            shard_epochs: std::collections::HashMap::new(),
            shard_overrides: std::collections::HashMap::new(),
            entry_overrides: std::collections::HashMap::new(),
            recorder: Recorder::disabled(),
            clock,
            held_since: std::collections::HashMap::new(),
            cur_op: OpCtx::default(),
            op_epochs: std::collections::HashMap::new(),
        }
    }

    /// Open a new sync-op trace context: everything recorded until the
    /// next `begin_op` — phase spans, sends (including the flush/fetch
    /// fan-out), retransmits and the home's replies — is attributed to
    /// this `(kind, id, epoch, origin)` tuple. A disabled recorder keeps
    /// this a no-op and `cur_op` permanently unattributed.
    fn begin_op(&mut self, kind: OpKind, id: u32) {
        if !self.recorder.is_enabled() {
            return;
        }
        let epoch = self.op_epochs.entry((kind, id)).or_insert(0);
        *epoch += 1;
        self.cur_op = OpCtx {
            kind,
            id,
            epoch: *epoch,
            origin: self.obs_rank,
        };
        self.recorder.op_begin(self.obs_rank, self.cur_op);
    }

    /// Retire the current sync op from the recorder's in-flight table
    /// (the stall watchdog stops aging it). `cur_op` itself is kept so
    /// trailing events — the release fan-out after an unlock, say — stay
    /// attributed to the op that caused them.
    fn end_op(&mut self) {
        self.recorder.op_end(self.cur_op);
    }

    /// Attach the cluster's home directory. Must match the directory the
    /// home shards were built with; the default single-home directory
    /// routes everything to `home_ep`.
    pub fn set_directory(&mut self, directory: Directory) {
        self.directory = directory;
    }

    /// The entry/lock/barrier → shard directory this client routes by.
    pub fn directory(&self) -> Directory {
        self.directory
    }

    /// Endpoint rank home shard `shard` listens on. The single-home
    /// layout keeps honouring an arbitrary `home_ep`; a failover
    /// override (learned from a dead endpoint or a `ViewChange`) wins
    /// over the directory's default.
    fn shard_ep(&self, shard: u32) -> u32 {
        if let Some(&ep) = self.shard_overrides.get(&shard) {
            return ep;
        }
        if self.directory.n_shards() == 1 && self.directory.n_replicas() == 0 {
            self.home_ep
        } else {
            self.directory.shard_ep(shard)
        }
    }

    /// The epoch this client stamps on requests to `shard` (0 until a
    /// `ViewChange` teaches it otherwise).
    fn epoch_of(&self, shard: u32) -> u32 {
        self.shard_epochs.get(&shard).copied().unwrap_or(0)
    }

    /// The other endpoint serving `shard` — its replica if `not` is the
    /// primary, its primary otherwise. Only meaningful with replicas.
    fn other_ep(&self, shard: u32, not: u32) -> u32 {
        let primary = self.directory.shard_ep(shard);
        if not == primary {
            self.directory.replica_ep(shard)
        } else {
            primary
        }
    }

    /// The shard that *effectively* owns `entry`: a placement override
    /// learned from an `EntryMoved` bounce, else the static modulo map.
    fn entry_shard_eff(&self, entry: u32) -> u32 {
        self.entry_overrides
            .get(&entry)
            .map(|&(s, _)| s)
            .unwrap_or_else(|| self.directory.entry_shard(entry))
    }

    /// Adopt `EntryMoved` rows into the override map. Each row carries
    /// the entry's monotonically increasing placement epoch, so stale
    /// bounces (from a shard that has since lost the entry again) never
    /// roll the map backwards.
    fn learn_moves(&mut self, rows: &[(u32, u32, u32)]) {
        let mut learned = 0u64;
        for &(entry, shard, epoch) in rows {
            let cur = self.entry_overrides.get(&entry).map(|&(_, e)| e);
            if cur.is_none_or(|c| epoch > c) {
                self.entry_overrides.insert(entry, (shard, epoch));
                learned += 1;
            }
        }
        if learned > 0 {
            self.recorder.count("client.entry_moves_learned", learned);
        }
    }

    /// Encode a request for `shard`: the plain reliability envelope
    /// without replicas, the epoch-stamped one with them.
    fn encode_request(&self, msg: &DsdMsg, req_id: u64, shard: u32) -> bytes::Bytes {
        if self.directory.n_replicas() > 0 {
            msg.encode_enveloped_epoch(req_id, self.epoch_of(shard), self.fast_path)
        } else {
            msg.encode_enveloped_mode(req_id, self.fast_path)
        }
    }

    /// Attach an observability recorder. Spans for every protocol phase,
    /// heatmap feeds and retransmit instants are recorded through it; the
    /// default disabled recorder makes all of that free.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The client's observability recorder (disabled unless wired up).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Enable whole-entry transfer promotion (paper §4: large arrays are
    /// shipped "as a whole" when mostly modified): when a release finds
    /// more than `percent` of an entry's elements dirty, the whole entry
    /// ships as one tag. `100` (the default) disables promotion.
    ///
    /// **Caution**: promotion writes back the releaser's values for the
    /// entry's *unmodified* elements too. That is only safe when no other
    /// thread can have updated those elements since this thread's last
    /// acquire — true for barrier-phased programs with entry-granular
    /// ownership, not in general.
    pub fn set_promotion_threshold(&mut self, percent: u8) {
        assert!(percent <= 100);
        self.promote_threshold = percent;
    }

    /// Select between the hot paths (compiled conversion plans, grouped
    /// wire batches, parallel diff scan — the default) and the original
    /// per-update slow paths. Both produce byte-identical shared memory;
    /// `tests/differential.rs` holds that equivalence.
    pub fn set_fast_path(&mut self, fast: bool) {
        self.fast_path = fast;
    }

    /// How long a blocking protocol receive may wait before failing with
    /// a timeout error (defence against a dead or wedged home service).
    /// Default 30 s. This is the *total* budget per request, spanning all
    /// retransmission attempts.
    pub fn set_recv_deadline(&mut self, deadline: std::time::Duration) {
        self.recv_deadline = deadline;
    }

    /// How many times a request is retransmitted (with exponential
    /// backoff) before the client just waits out the rest of its
    /// deadline. Default 10.
    pub fn set_max_retries(&mut self, retries: u32) {
        self.max_retries = retries;
    }

    /// Delay before the first retransmission. Subsequent delays use
    /// decorrelated jitter: uniform in `[base, 3·previous]`, clamped to
    /// the retry cap, so a cohort of clients whose requests died
    /// together does not retransmit in lockstep forever. Default 250 ms.
    pub fn set_retry_base(&mut self, base: std::time::Duration) {
        self.retry_base = base;
    }

    /// Hard ceiling on any single retransmission delay, whatever the
    /// jitter rolls. Default 5 s.
    pub fn set_retry_cap(&mut self, cap: std::time::Duration) {
        self.retry_cap = cap;
    }

    /// Handle to the fabric (stats, partitions).
    pub fn network(&self) -> &hdsm_net::Network {
        self.ep.network()
    }

    /// Fire-and-forget liveness beacon to every home shard (each keeps
    /// its own lease table). Sent with request id 0 — never deduplicated,
    /// never replied to.
    pub fn heartbeat(&mut self) {
        let msg = DsdMsg::Heartbeat {
            rank: self.thread_rank,
        };
        if self.directory.n_replicas() == 0 {
            let payload = msg.encode_enveloped(0);
            for s in 0..self.directory.n_shards() {
                let _ = self
                    .ep
                    .send(self.shard_ep(s), MsgKind::Heartbeat, payload.clone());
            }
        } else {
            // Beat both endpoints of every shard: a standby drops direct
            // beats (its lease table is fed by the replication stream),
            // but after a promotion the direct beat is what keeps this
            // worker alive at the new primary.
            for s in 0..self.directory.n_shards() {
                let payload = msg.encode_enveloped_epoch(0, self.epoch_of(s), false);
                let _ = self.ep.send(
                    self.directory.shard_ep(s),
                    MsgKind::Heartbeat,
                    payload.clone(),
                );
                let _ = self
                    .ep
                    .send(self.directory.replica_ep(s), MsgKind::Heartbeat, payload);
            }
        }
    }

    /// This thread's stable rank.
    pub fn thread_rank(&self) -> u32 {
        self.thread_rank
    }

    /// The local `GThV` copy (typed reads).
    pub fn gthv(&self) -> &GthvInstance {
        &self.gthv
    }

    /// The local `GThV` copy (typed writes — tracked by write detection).
    pub fn gthv_mut(&mut self) -> &mut GthvInstance {
        &mut self.gthv
    }

    /// This node's platform.
    pub fn platform(&self) -> Platform {
        self.gthv.platform().clone()
    }

    /// Cost breakdown accumulated so far.
    pub fn costs(&self) -> CostBreakdown {
        self.costs
    }

    /// Conversion statistics accumulated so far.
    pub fn conv_stats(&self) -> ConversionStats {
        self.conv_stats
    }

    /// The reliability core: send `msg` under a fresh request id and wait
    /// for the home's reply to *that* id, retransmitting with capped
    /// decorrelated-jitter backoff when no reply arrives. The home
    /// deduplicates by request id, so retransmissions are idempotent;
    /// replies to older ids (late duplicates) are skipped. The whole
    /// exchange is bounded by `recv_deadline`. A [`DsdMsg::WorkerLost`]
    /// reply aborts with [`DsdError::WorkerLost`] regardless of id.
    ///
    /// `shard` selects the home shard the request is addressed to; each
    /// shard sees a strictly increasing subsequence of this client's
    /// request ids, so one counter serves them all.
    ///
    /// With replicas in the directory the loop also performs client-side
    /// failover: requests carry an epoch stamp; a dead destination flips
    /// the request to the shard's other endpoint (a not-yet-promoted
    /// standby silently drops it — retransmission covers the gap); and a
    /// [`DsdMsg::ViewChange`] bounce re-resolves the shard, re-stamps the
    /// payload with the new epoch and resends it under the *same* request
    /// id, so the promoted replica's dedup table keeps the replayed
    /// operation at-most-once.
    fn request(&mut self, shard: u32, msg: DsdMsg) -> Result<DsdMsg, DsdError> {
        let mut dst = self.shard_ep(shard);
        self.req_counter += 1;
        let req_id = self.req_counter;
        let kind = msg.kind();
        let t0 = Instant::now();
        let mut payload = self.encode_request(&msg, req_id, shard);
        self.costs.t_pack += t0.elapsed();
        let deadline = self.clock.now() + self.recv_deadline;
        // Decorrelated-jitter state. The seed mixes rank and request id
        // so two clients (or two requests) never share a delay sequence.
        let mut rng = (((self.thread_rank as u64) << 32) ^ req_id).max(1);
        let mut prev_wait = self.retry_base;
        let mut attempt: u32 = 0;
        loop {
            if attempt > 0 {
                self.ep.network().note_retransmit();
                // arg1 carries the destination so the critical-path
                // analyzer can pin retransmits to a link.
                self.recorder.instant_op(
                    self.obs_rank,
                    EventKind::Retransmit,
                    attempt as u64,
                    dst as u64,
                    kind.label(),
                    self.cur_op,
                );
            }
            match self.ep.send_op(dst, kind, payload.clone(), self.cur_op) {
                Ok(()) => self.costs.bytes_sent += payload.len() as u64,
                Err(NetError::Disconnected(_)) if self.directory.n_replicas() > 0 => {
                    // The destination's endpoint is gone: fail over to
                    // the shard's other endpoint and keep retrying there.
                    dst = self.other_ep(shard, dst);
                    self.shard_overrides.insert(shard, dst);
                }
                Err(e) => return Err(e.into()),
            }
            // How long to wait before the next retransmission; once the
            // retry budget is spent, wait out the remaining deadline.
            let attempt_wait = if attempt >= self.max_retries {
                self.recv_deadline
            } else if attempt == 0 {
                self.retry_base
            } else {
                prev_wait =
                    decorrelated_backoff(prev_wait, self.retry_base, self.retry_cap, &mut rng);
                prev_wait
            };
            let attempt_deadline = (self.clock.now() + attempt_wait).min(deadline);
            loop {
                let now = self.clock.now();
                if now >= deadline {
                    return Err(DsdError::Net(NetError::Timeout));
                }
                let wait = attempt_deadline.saturating_since(now);
                if wait.is_zero() {
                    break; // retransmit
                }
                match self.ep.recv_timeout(wait) {
                    Ok(m) => {
                        let src = m.src;
                        let t0 = Instant::now();
                        let (rid, decoded) = {
                            let mut span = self.recorder.span(self.obs_rank, EventKind::Unpack);
                            span.args(m.payload.len() as u64, m.src as u64);
                            span.op(self.cur_op);
                            DsdMsg::decode_enveloped(m.kind, m.payload)?
                        };
                        self.costs.t_unpack += t0.elapsed();
                        if let DsdMsg::WorkerLost {
                            rank,
                            heard_ms,
                            lease_ms,
                        } = decoded
                        {
                            return Err(DsdError::WorkerLost {
                                rank,
                                heard_age: (heard_ms > 0)
                                    .then(|| std::time::Duration::from_millis(heard_ms)),
                                lease: (lease_ms > 0)
                                    .then(|| std::time::Duration::from_millis(lease_ms)),
                            });
                        }
                        if let DsdMsg::ViewChange { shard: vs, epoch } = decoded {
                            // A fenced shard bounced a request: learn the
                            // new epoch and re-resolve to the surviving
                            // endpoint. Stale bounces (an epoch we have
                            // already adopted) are ignored unless we are
                            // still talking to the fenced sender itself.
                            let newer = epoch > self.epoch_of(vs);
                            if newer {
                                self.shard_epochs.insert(vs, epoch);
                                self.shard_overrides.insert(vs, self.other_ep(vs, src));
                            }
                            if vs == shard && (newer || dst == src) {
                                if dst == src && !newer {
                                    self.shard_overrides
                                        .insert(shard, self.other_ep(shard, src));
                                }
                                dst = self.shard_ep(shard);
                                payload = self.encode_request(&msg, req_id, shard);
                                break; // resend under the new view now
                            }
                            continue;
                        }
                        if rid == req_id {
                            return Ok(decoded);
                        }
                        // A late duplicate of an earlier reply: skip.
                    }
                    Err(NetError::Timeout) => {}
                    Err(e) => return Err(e.into()),
                }
            }
            attempt += 1;
        }
    }

    /// Apply incoming updates (grant / barrier release) to the local copy
    /// and re-arm write protection.
    fn apply_incoming(&mut self, updates: &[WireUpdate]) -> Result<(), DsdError> {
        let bytes: u64 = updates.iter().map(|u| u.data.len() as u64).sum();
        let t0 = Instant::now();
        {
            let mut span = self.recorder.span(self.obs_rank, EventKind::Convert);
            span.args(updates.len() as u64, bytes);
            span.op(self.cur_op);
            apply_batch_mode(
                &mut self.gthv,
                updates,
                &mut self.conv_stats,
                self.fast_path,
            )?;
        }
        self.costs.t_conv += t0.elapsed();
        self.costs.updates_applied += updates.len() as u64;
        self.costs.bytes_applied += bytes;
        if self.recorder.is_enabled() {
            let ps = self.gthv.space().page_size() as u64;
            let base = self.gthv.space().base();
            for u in updates {
                self.recorder.update_applied(u.entry, u.data.len() as u64);
                // Local footprint of the overwritten range, page by page.
                if let Some(row) = self.gthv.table().row(u.entry) {
                    let start = row.addr + u.elem_offset * u64::from(row.size);
                    let end = start + u.tag.element_count() * u64::from(row.size);
                    if end > start {
                        for page in (start - base) / ps..=(end - 1 - base) / ps {
                            self.recorder.page_invalidated(page);
                        }
                    }
                }
            }
        }
        // "Mprotect globals" (paper Fig. 5): re-arm after the acquire so
        // this thread's own writes are trapped for the next release.
        self.gthv.space_mut().reset_and_protect();
        Ok(())
    }

    /// Detect local writes and turn them into wire updates (the release
    /// pipeline: t_index → t_tag → t_pack in Eq. 1; packing finishes in
    /// [`Self::send`]).
    fn collect_outgoing(&mut self) -> Result<Vec<WireUpdate>, DsdError> {
        // t_index: byte-level twin/diff plus mapping runs to index ranges.
        let t0 = Instant::now();
        let runs;
        let mapped;
        {
            let mut span = self.recorder.span(self.obs_rank, EventKind::DiffScan);
            span.op(self.cur_op);
            runs = if self.fast_path {
                hdsm_memory::diff::diff_pages_parallel(
                    self.gthv.space(),
                    hdsm_memory::diff::default_diff_threads(),
                )
            } else {
                diff_pages(self.gthv.space())
            };
            mapped = map_runs(self.gthv.table(), &runs);
            span.args(hdsm_memory::diff::total_bytes(&runs), runs.len() as u64);
        }
        self.costs.t_index += t0.elapsed();
        if self.recorder.is_enabled() {
            let ps = self.gthv.space().page_size() as u64;
            let base = self.gthv.space().base();
            for (page, bytes) in hdsm_memory::diff::split_by_page(&runs, base, ps) {
                self.recorder.page_diff(page, bytes);
            }
        }
        // t_tag: coalescing consecutive elements into single tags, plus
        // optional whole-entry promotion.
        let t1 = Instant::now();
        let mut ranges;
        {
            let mut span = self.recorder.span(self.obs_rank, EventKind::TagBuild);
            span.op(self.cur_op);
            ranges = coalesce(mapped);
            if self.promote_threshold < 100 {
                ranges =
                    crate::runs::promote_ranges(self.gthv.table(), ranges, self.promote_threshold);
            }
            span.args(ranges.len() as u64, 0);
        }
        self.costs.t_tag += t1.elapsed();
        // t_pack: extracting the raw native bytes (and pointer swizzling).
        let t2 = Instant::now();
        let ups;
        {
            let mut span = self.recorder.span(self.obs_rank, EventKind::Pack);
            span.op(self.cur_op);
            ups = extract_updates(&self.gthv, &ranges)?;
            span.args(
                ups.iter().map(|u| u.data.len() as u64).sum(),
                ups.len() as u64,
            );
        }
        self.costs.t_pack += t2.elapsed();
        self.costs.updates_sent += ups.len() as u64;
        if self.recorder.is_enabled() {
            for u in &ups {
                self.recorder.update_sent(
                    u.entry,
                    u.elem_offset,
                    u.tag.element_count(),
                    u.data.len() as u64,
                );
                // Per-(entry, writer) attribution: the placement engine's
                // "dominant writer" signal.
                self.recorder
                    .entry_written_by(u.entry, self.thread_rank, u.data.len() as u64);
            }
        }
        Ok(ups)
    }

    /// Fan released updates out to their owning shards, keeping the
    /// bucket owned by `keep` (the shard the release itself goes to).
    /// Each flush is acknowledged before the next is sent and before the
    /// caller sends its release, so by the time any shard grants a later
    /// acquire, every flushed update is already absorbed somewhere the
    /// acquirer will fetch from. A single-shard directory returns the
    /// batch untouched without touching the wire.
    fn flush_updates(
        &mut self,
        updates: Vec<WireUpdate>,
        keep: u32,
    ) -> Result<Vec<WireUpdate>, DsdError> {
        let shards = self.directory.n_shards();
        if shards == 1 {
            return Ok(updates);
        }
        let mut pending = updates;
        let mut kept: Vec<WireUpdate> = Vec::new();
        // An `EntryMoved` bounce means our placement view was stale: the
        // shard refused the whole bucket without absorbing anything.
        // Learn the new owners, re-bucket just the bounced updates and
        // retry — every bounce strictly advances the override map (entry
        // epochs only grow), so the loop terminates.
        loop {
            let mut buckets: Vec<Vec<WireUpdate>> = (0..shards).map(|_| Vec::new()).collect();
            for u in pending.drain(..) {
                buckets[self.entry_shard_eff(u.entry) as usize].push(u);
            }
            kept.append(&mut buckets[keep as usize]);
            let mut bounced: Vec<WireUpdate> = Vec::new();
            for shard in 0..shards {
                if shard == keep || buckets[shard as usize].is_empty() {
                    continue;
                }
                let ups = std::mem::take(&mut buckets[shard as usize]);
                match self.request(
                    shard,
                    DsdMsg::UpdateFlush {
                        rank: self.thread_rank,
                        updates: ups.clone(),
                    },
                )? {
                    DsdMsg::Ack => {}
                    DsdMsg::EntryMoved { entries } => {
                        self.learn_moves(&entries);
                        bounced.extend(ups);
                    }
                    _ => return Err(DsdError::Unexpected("Ack (update flush)")),
                }
            }
            if bounced.is_empty() {
                return Ok(kept);
            }
            pending = bounced;
        }
    }

    /// Pull outstanding updates from every shard other than `granting`
    /// (whose updates rode in with the grant). Returns the merged batch;
    /// empty — with no wire traffic — on a single-shard directory.
    fn fetch_others(&mut self, granting: u32) -> Result<Vec<WireUpdate>, DsdError> {
        let shards = self.directory.n_shards();
        if shards == 1 {
            return Ok(Vec::new());
        }
        let mut merged = Vec::new();
        for shard in 0..shards {
            if shard == granting {
                continue;
            }
            match self.request(
                shard,
                DsdMsg::UpdateFetch {
                    rank: self.thread_rank,
                },
            )? {
                DsdMsg::UpdateBatch { updates } => merged.extend(updates),
                _ => return Err(DsdError::Unexpected("UpdateBatch")),
            }
        }
        Ok(merged)
    }

    fn lock_impl(&mut self, lock: u32) -> Result<(), DsdError> {
        self.begin_op(OpKind::Lock, lock);
        let r = self.lock_body(lock);
        self.end_op();
        r
    }

    fn lock_body(&mut self, lock: u32) -> Result<(), DsdError> {
        let owner = self.directory.lock_shard(lock);
        let reply = {
            let mut span = self.recorder.span(self.obs_rank, EventKind::LockWait);
            span.args(lock as u64, 0);
            span.op(self.cur_op);
            self.request(
                owner,
                DsdMsg::LockRequest {
                    lock,
                    rank: self.thread_rank,
                },
            )?
        };
        match reply {
            DsdMsg::LockGrant { lock: l, updates } if l == lock => {
                if self.recorder.is_enabled() {
                    self.held_since
                        .insert(lock, (self.recorder.now_us(), self.clock.now()));
                }
                let mut all = updates;
                all.extend(self.fetch_others(owner)?);
                self.apply_incoming(&all)?;
                Ok(())
            }
            _ => Err(DsdError::Unexpected("LockGrant")),
        }
    }

    fn unlock_impl(&mut self, lock: u32) -> Result<(), DsdError> {
        self.begin_op(OpKind::Unlock, lock);
        let r = self.unlock_body(lock);
        self.end_op();
        r
    }

    fn unlock_body(&mut self, lock: u32) -> Result<(), DsdError> {
        let owner = self.directory.lock_shard(lock);
        let mut release = self.recorder.span(self.obs_rank, EventKind::LockRelease);
        release.args(lock as u64, 0);
        release.op(self.cur_op);
        let updates = self.collect_outgoing()?;
        // Twins/dirty marks shipped; re-arm for the next critical section.
        self.gthv.space_mut().reset_and_protect();
        let mut updates = self.flush_updates(updates, owner)?;
        let reply = loop {
            match self.request(
                owner,
                DsdMsg::UnlockRequest {
                    lock,
                    rank: self.thread_rank,
                    updates: updates.clone(),
                },
            )? {
                // The release bucket held entries that no longer live at
                // the granting shard: the home bounced without unlocking
                // or absorbing. Re-flush to the new owners, resend the
                // rest under a fresh request id.
                DsdMsg::EntryMoved { entries } => {
                    self.learn_moves(&entries);
                    updates = self.flush_updates(std::mem::take(&mut updates), owner)?;
                }
                other => break other,
            }
        };
        match reply {
            DsdMsg::UnlockAck { lock: l } if l == lock => {
                self.recorder.release_to(self.thread_rank, owner);
                if let Some((t_us, start)) = self.held_since.remove(&lock) {
                    self.recorder.span_at_op(
                        self.obs_rank,
                        EventKind::LockHold,
                        t_us,
                        self.clock.now().saturating_since(start).as_micros() as u64,
                        lock as u64,
                        0,
                        "",
                        self.cur_op,
                    );
                }
                Ok(())
            }
            _ => Err(DsdError::Unexpected("UnlockAck")),
        }
    }

    fn cond_wait_impl(&mut self, cond: u32, lock: u32) -> Result<(), DsdError> {
        self.begin_op(OpKind::Cond, cond);
        let r = self.cond_wait_body(cond, lock);
        self.end_op();
        r
    }

    fn cond_wait_body(&mut self, cond: u32, lock: u32) -> Result<(), DsdError> {
        let owner = self.directory.lock_shard(lock);
        if self.directory.cond_shard(cond) != owner {
            return Err(DsdError::ShardMismatch { cond, lock });
        }
        let updates = self.collect_outgoing()?;
        self.gthv.space_mut().reset_and_protect();
        let mut updates = self.flush_updates(updates, owner)?;
        let reply = loop {
            match self.request(
                owner,
                DsdMsg::CondWait {
                    cond,
                    lock,
                    rank: self.thread_rank,
                    updates: updates.clone(),
                },
            )? {
                // Bounced before the release+park: re-flush and re-wait.
                DsdMsg::EntryMoved { entries } => {
                    self.learn_moves(&entries);
                    updates = self.flush_updates(std::mem::take(&mut updates), owner)?;
                }
                other => break other,
            }
        };
        match reply {
            DsdMsg::LockGrant { lock: l, updates } if l == lock => {
                let mut all = updates;
                all.extend(self.fetch_others(owner)?);
                self.apply_incoming(&all)?;
                Ok(())
            }
            _ => Err(DsdError::Unexpected("LockGrant (cond wake)")),
        }
    }

    fn cond_signal_impl(&mut self, cond: u32, broadcast: bool) -> Result<(), DsdError> {
        self.begin_op(OpKind::Cond, cond);
        let r = self.cond_signal_body(cond, broadcast);
        self.end_op();
        r
    }

    fn cond_signal_body(&mut self, cond: u32, broadcast: bool) -> Result<(), DsdError> {
        let owner = self.directory.cond_shard(cond);
        match self.request(
            owner,
            DsdMsg::CondSignal {
                cond,
                rank: self.thread_rank,
                broadcast,
            },
        )? {
            DsdMsg::Ack => Ok(()),
            _ => Err(DsdError::Unexpected("Ack")),
        }
    }

    fn barrier_impl(&mut self, barrier: u32) -> Result<(), DsdError> {
        self.begin_op(OpKind::Barrier, barrier);
        let r = self.barrier_body(barrier);
        self.end_op();
        r
    }

    fn barrier_body(&mut self, barrier: u32) -> Result<(), DsdError> {
        let coordinator = self.directory.barrier_shard(barrier);
        let mut span = self.recorder.span(self.obs_rank, EventKind::Barrier);
        span.args(barrier as u64, 0);
        span.op(self.cur_op);
        let updates = self.collect_outgoing()?;
        self.gthv.space_mut().reset_and_protect();
        let mut updates = self.flush_updates(updates, coordinator)?;
        let reply = loop {
            match self.request(
                coordinator,
                DsdMsg::BarrierEnter {
                    barrier,
                    rank: self.thread_rank,
                    updates: updates.clone(),
                },
            )? {
                // Bounced before the coordinator counted our arrival:
                // re-flush the moved entries and re-enter.
                DsdMsg::EntryMoved { entries } => {
                    self.learn_moves(&entries);
                    updates = self.flush_updates(std::mem::take(&mut updates), coordinator)?;
                }
                other => break other,
            }
        };
        match reply {
            DsdMsg::BarrierRelease {
                barrier: b,
                updates,
            } if b == barrier => {
                self.recorder.release_to(self.thread_rank, coordinator);
                let mut all = updates;
                all.extend(self.fetch_others(coordinator)?);
                self.apply_incoming(&all)?;
                Ok(())
            }
            _ => Err(DsdError::Unexpected("BarrierRelease")),
        }
    }

    fn join_impl(mut self) -> Result<(CostBreakdown, ConversionStats, GthvInstance), DsdError> {
        self.begin_op(OpKind::Join, 0);
        let r = self.join_body();
        self.end_op();
        r?;
        Ok((self.costs, self.conv_stats, self.gthv))
    }

    fn join_body(&mut self) -> Result<(), DsdError> {
        // Sign off at every shard; each keeps its own participant table
        // and its Shutdown is the deferred (retransmittable) reply to the
        // Join it received.
        for shard in 0..self.directory.n_shards() {
            match self.request(
                shard,
                DsdMsg::Join {
                    rank: self.thread_rank,
                },
            ) {
                Ok(DsdMsg::Shutdown) => {}
                // A shard cannot exit its service loop before processing
                // every participant's Join — ours included. If it hung up
                // mid-retransmission, the Shutdown reply was lost after a
                // clean sign-off; nothing is owed to us.
                Err(DsdError::Net(NetError::Disconnected(_))) => {}
                Ok(_) => return Err(DsdError::Unexpected("Shutdown")),
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    // ----- the typed session API -----

    /// Acquire distributed mutex `lock` (paper §4.1 `MTh_lock`):
    /// outstanding updates arrive with the grant and are applied before
    /// this returns. Pair with [`Self::release`], or use [`Self::lock`]
    /// for an RAII guard.
    pub fn acquire(&mut self, lock: LockId) -> Result<(), DsdError> {
        self.lock_impl(lock.raw())
    }

    /// Release distributed mutex `lock` (paper §4.2 `MTh_unlock`): local
    /// modifications are diffed, tagged, packed and shipped home.
    pub fn release(&mut self, lock: LockId) -> Result<(), DsdError> {
        self.unlock_impl(lock.raw())
    }

    /// Acquire mutex `lock` and return a guard that releases it when
    /// dropped — including on panic, so a failing critical section still
    /// flushes its diffs home. The guard dereferences to the client.
    pub fn lock(&mut self, lock: LockId) -> Result<LockGuard<'_>, DsdError> {
        self.lock_impl(lock.raw())?;
        Ok(LockGuard {
            client: self,
            lock,
            released: false,
        })
    }

    /// `MTh_cond_wait(cond, lock)` — the distributed
    /// `pthread_cond_wait`: atomically release mutex `lock` (shipping this
    /// thread's updates, a full release) and sleep on condition `cond`;
    /// returns with the mutex re-acquired and outstanding updates applied
    /// (a full acquire). As with Pthreads, re-check the predicate in a
    /// loop — another thread may run between the signal and the wake.
    ///
    /// Under a sharded home the condition and the mutex must be homed at
    /// the same shard (`cond.raw() % S == lock.raw() % S`) so the
    /// release+park stays atomic at one owner.
    pub fn cond_wait(&mut self, cond: CondId, lock: LockId) -> Result<(), DsdError> {
        self.cond_wait_impl(cond.raw(), lock.raw())
    }

    /// `MTh_cond_signal(cond)` — wake one waiter. Acknowledged by the
    /// home so the signal survives a lossy fabric; callers conventionally
    /// hold the associated mutex while signalling.
    pub fn cond_signal(&mut self, cond: CondId) -> Result<(), DsdError> {
        self.cond_signal_impl(cond.raw(), false)
    }

    /// `MTh_cond_broadcast(cond)` — wake every waiter.
    pub fn cond_broadcast(&mut self, cond: CondId) -> Result<(), DsdError> {
        self.cond_signal_impl(cond.raw(), true)
    }

    /// `MTh_barrier(index, rank)` — a full release + acquire for every
    /// participant (paper §4: barriers spare the programmer from building
    /// them out of the distributed mutex).
    pub fn barrier(&mut self, barrier: BarrierId) -> Result<(), DsdError> {
        self.barrier_impl(barrier.raw())
    }

    /// `MTh_join()` — sign off and wait for the program to end. Consumes
    /// the client; returns the accumulated costs and the final local copy.
    /// The home's shutdown broadcast is the (deferred, retransmittable)
    /// reply to this request.
    pub fn join(self) -> Result<(CostBreakdown, ConversionStats, GthvInstance), DsdError> {
        self.join_impl()
    }

    /// Re-host this thread on a different (possibly heterogeneous) node,
    /// carrying the global data segment with it — MigThread ships the
    /// globals as part of the thread state (paper §3.1: "thread states
    /// typically consist of the global data segment, stack, heap, and
    /// register contents"). The whole local copy is receiver-makes-right
    /// converted to the new platform's representation, *including* the
    /// write-detection state: elements dirty before the move are dirty
    /// after it, so unreleased modifications still ship at the next
    /// release. The thread's consistency horizon at the home node remains
    /// valid, so no resynchronisation round is needed.
    ///
    /// Must be called at an adaptation point with no lock held.
    pub fn rehost(&mut self, platform: Platform) -> Result<(), DsdError> {
        use crate::runs::abstract_diffs;
        use crate::update::full_ranges;
        use hdsm_memory::diff::diff_pages;

        let def = self.gthv.def().clone();

        // 1. What has this thread modified since its last release?
        let runs = diff_pages(self.gthv.space());
        let dirty_ranges = abstract_diffs(self.gthv.table(), &runs);
        // 2. Snapshot the *current* values of those ranges (native + tags).
        let dirty_updates = extract_updates(&self.gthv, &dirty_ranges)?;

        // 3. Reconstruct the pre-write (twin) state on the old platform:
        //    current content with every diff run reverted to its twin
        //    bytes.
        let mut original = GthvInstance::new(def.clone(), self.gthv.platform().clone());
        let raw: Vec<u8> = self.gthv.space().raw().to_vec();
        let orig_base = original.space().base();
        original
            .space_mut()
            .write_untracked(orig_base, &raw)
            .expect("same-size copy");
        for run in &runs {
            let page_size = self.gthv.space().page_size();
            let base = self.gthv.space().base();
            // A run may span pages; revert per page from each twin.
            let mut addr = run.addr;
            let mut remaining = run.len;
            while remaining > 0 {
                let page = ((addr - base) as usize) / page_size;
                let page_end = base + ((page + 1) * page_size) as u64;
                let chunk = remaining.min((page_end - addr) as usize);
                let twin = self
                    .gthv
                    .space()
                    .twin(page)
                    .expect("dirty run implies twin");
                let off = (addr - (base + (page * page_size) as u64)) as usize;
                original
                    .space_mut()
                    .write_untracked(addr, &twin[off..off + chunk])
                    .expect("revert in range");
                addr += chunk as u64;
                remaining -= chunk;
            }
        }

        // 4. Convert the pre-write state to the new platform.
        let full = extract_updates(&original, &full_ranges(&original))?;
        let mut fresh = GthvInstance::new(def, platform);
        let mut stats = ConversionStats::default();
        apply_batch(&mut fresh, &full, &mut stats)?;
        // 5. Arm write detection, then replay the thread's unreleased
        //    modifications through the *tracked* write path so they fault,
        //    twin and stay dirty on the new node.
        fresh.space_mut().reset_and_protect();
        self.gthv = fresh;
        let t0 = Instant::now();
        for u in &dirty_updates {
            apply_tracked(&mut self.gthv, u, &mut stats)?;
        }
        self.conv_stats.merge(&stats);
        self.costs.t_conv += t0.elapsed();
        Ok(())
    }

    /// Re-host with a *cold* copy instead of carrying the globals: the new
    /// node starts zeroed and the home service is told to fully refresh
    /// this thread at its next acquire. This models a skeleton thread that
    /// received only the compute state (stack/registers) without the
    /// global segment. Unreleased modifications are lost — callers must
    /// release first.
    pub fn rehost_cold(&mut self, platform: Platform) -> Result<(), DsdError> {
        let def = self.gthv.def().clone();
        self.gthv = GthvInstance::new(def, platform);
        self.gthv.space_mut().reset_and_protect();
        // Every shard tracks its own horizon for this thread; each must
        // drop it so the next acquire fully refreshes every slice.
        for shard in 0..self.directory.n_shards() {
            match self.request(
                shard,
                DsdMsg::Resync {
                    rank: self.thread_rank,
                },
            )? {
                DsdMsg::Ack => {}
                _ => return Err(DsdError::Unexpected("Ack")),
            }
        }
        Ok(())
    }

    // ----- typed convenience accessors (forwarders) -----

    /// Read an integer element of the shared structure.
    pub fn read_int(&self, entry: u32, elem: u64) -> Result<i128, DsdError> {
        self.recorder.entry_read(entry);
        Ok(self.gthv.read_int(entry, elem)?)
    }

    /// Write an integer element (write-detected).
    pub fn write_int(&mut self, entry: u32, elem: u64, v: i128) -> Result<(), DsdError> {
        self.recorder.entry_write(entry);
        Ok(self.gthv.write_int(entry, elem, v)?)
    }

    /// Read a float element.
    pub fn read_float(&self, entry: u32, elem: u64) -> Result<f64, DsdError> {
        self.recorder.entry_read(entry);
        Ok(self.gthv.read_float(entry, elem)?)
    }

    /// Write a float element (write-detected).
    pub fn write_float(&mut self, entry: u32, elem: u64, v: f64) -> Result<(), DsdError> {
        self.recorder.entry_write(entry);
        Ok(self.gthv.write_float(entry, elem, v)?)
    }

    /// Read a pointer element as a logical `(entry, elem)` target.
    pub fn read_ptr(&self, entry: u32, elem: u64) -> Result<Option<(u32, u64)>, DsdError> {
        self.recorder.entry_read(entry);
        Ok(self.gthv.read_ptr(entry, elem)?)
    }

    /// Write a pointer element (write-detected).
    pub fn write_ptr(
        &mut self,
        entry: u32,
        elem: u64,
        target: Option<(u32, u64)>,
    ) -> Result<(), DsdError> {
        self.recorder.entry_write(entry);
        Ok(self.gthv.write_ptr(entry, elem, target)?)
    }
}

/// RAII guard over an acquired distributed mutex, returned by
/// [`DsdClient::lock`]. Dereferences to the client so the critical
/// section reads and writes through the guard; the mutex is released —
/// shipping the section's diffs home — when the guard drops, explicitly
/// via [`LockGuard::unlock`] or implicitly at scope exit, including
/// during a panic unwind.
pub struct LockGuard<'a> {
    client: &'a mut DsdClient,
    lock: LockId,
    released: bool,
}

impl LockGuard<'_> {
    /// The mutex this guard holds.
    pub fn lock_id(&self) -> LockId {
        self.lock
    }

    /// Release explicitly, surfacing any protocol error (a drop-release
    /// can only swallow it).
    pub fn unlock(mut self) -> Result<(), DsdError> {
        self.released = true;
        self.client.unlock_impl(self.lock.raw())
    }
}

impl std::ops::Deref for LockGuard<'_> {
    type Target = DsdClient;
    fn deref(&self) -> &DsdClient {
        self.client
    }
}

impl std::ops::DerefMut for LockGuard<'_> {
    fn deref_mut(&mut self) -> &mut DsdClient {
        self.client
    }
}

impl Drop for LockGuard<'_> {
    fn drop(&mut self) {
        if !self.released {
            // Best effort: the release must not panic inside a drop
            // (possibly already unwinding). A failed release surfaces at
            // the next protocol operation instead.
            let _ = self.client.unlock_impl(self.lock.raw());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gthv::GthvDef;
    use crate::home::{HomeConfig, HomeService};
    use hdsm_net::endpoint::Network;
    use hdsm_net::stats::NetConfig;
    use hdsm_platform::ctype::StructBuilder;
    use hdsm_platform::scalar::ScalarKind;
    use hdsm_platform::spec::{Platform, PlatformSpec};

    const L0: LockId = LockId::new(0);
    const B0: BarrierId = BarrierId::new(0);
    const C0: CondId = CondId::new(0);
    const C1: CondId = CondId::new(1);

    fn tiny_def() -> GthvDef {
        GthvDef::new(
            StructBuilder::new("G")
                .array("xs", ScalarKind::Int, 128)
                .scalar("flag", ScalarKind::Int)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    /// Spin up a home + N clients on given platforms and run `body` per
    /// client in its own thread.
    fn with_cluster<F>(platforms: Vec<Platform>, n_locks: u32, n_barriers: u32, body: F)
    where
        F: Fn(&mut DsdClient) + Send + Sync,
    {
        let def = tiny_def();
        let home_plat = PlatformSpec::linux_x86();
        let (_net, mut eps) = Network::new(platforms.len() + 1, NetConfig::instant());
        let home_ep = eps.remove(0);
        let participants: Vec<u32> = (1..=platforms.len() as u32).collect();
        let mut home = HomeService::new(
            GthvInstance::new(def.clone(), home_plat),
            home_ep,
            HomeConfig {
                n_locks,
                n_barriers,
                n_conds: 2,
                participants,
                ..Default::default()
            },
        );
        home.init_with(|g| {
            for i in 0..128 {
                g.write_int(0, i, 1000 + i as i128).unwrap();
            }
        });
        std::thread::scope(|s| {
            s.spawn(move || {
                home.run().expect("home service");
            });
            for (i, (plat, ep)) in platforms.iter().zip(eps.drain(..)).enumerate() {
                let def = def.clone();
                let plat = plat.clone();
                let body = &body;
                s.spawn(move || {
                    let gthv = GthvInstance::new(def, plat);
                    let mut c = DsdClient::new(i as u32 + 1, ep, 0, gthv);
                    body(&mut c);
                    c.join().expect("join");
                });
            }
        });
    }

    #[test]
    fn lock_pulls_initial_state_heterogeneous() {
        with_cluster(vec![PlatformSpec::solaris_sparc()], 1, 0, |c| {
            c.acquire(L0).unwrap();
            assert_eq!(c.read_int(0, 0).unwrap(), 1000);
            assert_eq!(c.read_int(0, 127).unwrap(), 1127);
            c.release(L0).unwrap();
        });
    }

    #[test]
    fn updates_flow_between_heterogeneous_threads() {
        // Thread 1 (sparc) increments flag; thread 2 (linux) waits to see
        // it. Use the lock to serialize.
        with_cluster(
            vec![PlatformSpec::solaris_sparc(), PlatformSpec::linux_x86()],
            1,
            1,
            |c| {
                if c.thread_rank() == 1 {
                    c.acquire(L0).unwrap();
                    c.write_int(1, 0, 7).unwrap();
                    for i in 0..64 {
                        c.write_int(0, i, -(i as i128)).unwrap();
                    }
                    c.release(L0).unwrap();
                    c.barrier(B0).unwrap();
                } else {
                    c.barrier(B0).unwrap();
                    c.acquire(L0).unwrap();
                    assert_eq!(c.read_int(1, 0).unwrap(), 7);
                    assert_eq!(c.read_int(0, 63).unwrap(), -63);
                    // Untouched tail still has the initial contents.
                    assert_eq!(c.read_int(0, 100).unwrap(), 1100);
                    c.release(L0).unwrap();
                }
            },
        );
    }

    #[test]
    fn barrier_merges_disjoint_writes() {
        with_cluster(
            vec![
                PlatformSpec::solaris_sparc(),
                PlatformSpec::linux_x86(),
                PlatformSpec::linux_x86_64(),
            ],
            0,
            1,
            |c| {
                let r = c.thread_rank() as u64 - 1;
                // Pull the initial state first — release consistency only
                // guarantees a coherent view after an acquire.
                c.barrier(B0).unwrap();
                // Each thread writes its own 32-element stripe.
                for i in (r * 32)..(r * 32 + 32) {
                    c.write_int(0, i, (i as i128) * 10).unwrap();
                }
                c.barrier(B0).unwrap();
                // Everyone sees every stripe.
                for i in 0..96 {
                    assert_eq!(c.read_int(0, i).unwrap(), (i as i128) * 10, "elem {i}");
                }
            },
        );
    }

    #[test]
    fn lock_contention_serializes_increments() {
        let counter_entry = 1; // "flag" scalar used as shared counter
        with_cluster(
            vec![
                PlatformSpec::solaris_sparc(),
                PlatformSpec::linux_x86(),
                PlatformSpec::aix_power(),
            ],
            1,
            1,
            move |c| {
                for _ in 0..10 {
                    c.acquire(L0).unwrap();
                    let v = c.read_int(counter_entry, 0).unwrap();
                    c.write_int(counter_entry, 0, v + 1).unwrap();
                    c.release(L0).unwrap();
                }
                c.barrier(B0).unwrap();
                c.acquire(L0).unwrap();
                assert_eq!(c.read_int(counter_entry, 0).unwrap(), 30);
                c.release(L0).unwrap();
            },
        );
    }

    #[test]
    fn costs_are_recorded() {
        with_cluster(vec![PlatformSpec::solaris_sparc()], 1, 0, |c| {
            c.acquire(L0).unwrap();
            for i in 0..128 {
                c.write_int(0, i, i as i128).unwrap();
            }
            c.release(L0).unwrap();
            let costs = c.costs();
            assert!(costs.updates_sent >= 1);
            assert!(costs.updates_applied >= 1); // initial state batch
            assert!(costs.c_share() > std::time::Duration::ZERO);
        });
    }

    #[test]
    fn condvar_producer_consumer_across_endiannesses() {
        // Classic bounded-buffer handshake through MTh_cond_wait /
        // MTh_cond_signal: thread 1 (big-endian) produces 10 items into
        // xs[0..10]; thread 2 (little-endian) consumes them. flag (entry
        // 1) holds the number of items available.
        with_cluster(
            vec![PlatformSpec::solaris_sparc(), PlatformSpec::linux_x86()],
            1,
            1,
            |c| {
                const ITEMS: i128 = 10;
                if c.thread_rank() == 1 {
                    // Producer.
                    for i in 0..ITEMS {
                        c.acquire(L0).unwrap();
                        c.write_int(0, i as u64, 500 + i).unwrap();
                        c.write_int(1, 0, i + 1).unwrap();
                        c.cond_signal(C0).unwrap();
                        c.release(L0).unwrap();
                    }
                    c.barrier(B0).unwrap();
                } else {
                    // Consumer.
                    let mut consumed = 0i128;
                    c.acquire(L0).unwrap();
                    while consumed < ITEMS {
                        let available = c.read_int(1, 0).unwrap();
                        if available <= consumed {
                            // Predicate loop around cond_wait, as with
                            // pthread_cond_wait.
                            c.cond_wait(C0, L0).unwrap();
                            continue;
                        }
                        for i in consumed..available {
                            assert_eq!(c.read_int(0, i as u64).unwrap(), 500 + i, "item {i}");
                        }
                        consumed = available;
                    }
                    c.release(L0).unwrap();
                    c.barrier(B0).unwrap();
                }
            },
        );
    }

    #[test]
    fn cond_broadcast_wakes_all_waiters() {
        with_cluster(
            vec![
                PlatformSpec::linux_x86(),
                PlatformSpec::solaris_sparc(),
                PlatformSpec::linux_x86_64(),
            ],
            1,
            1,
            |c| {
                if c.thread_rank() == 1 {
                    // The broadcaster waits for both waiters to park (they
                    // bump entry 1 under the lock before waiting), then
                    // sets the flag and wakes everyone.
                    loop {
                        c.acquire(L0).unwrap();
                        let parked = c.read_int(1, 0).unwrap();
                        if parked == 2 {
                            c.write_int(0, 0, 777).unwrap();
                            c.cond_broadcast(C1).unwrap();
                            c.release(L0).unwrap();
                            break;
                        }
                        c.release(L0).unwrap();
                        std::thread::yield_now();
                    }
                } else {
                    c.acquire(L0).unwrap();
                    let parked = c.read_int(1, 0).unwrap();
                    c.write_int(1, 0, parked + 1).unwrap();
                    while c.read_int(0, 0).unwrap() != 777 {
                        c.cond_wait(C1, L0).unwrap();
                    }
                    c.release(L0).unwrap();
                }
                c.barrier(B0).unwrap();
            },
        );
    }

    #[test]
    fn promotion_ships_whole_entry_when_mostly_dirty() {
        with_cluster(vec![PlatformSpec::linux_x86()], 1, 0, |c| {
            c.set_promotion_threshold(50);
            c.acquire(L0).unwrap();
            // Write > 50% of entry 0 in two disjoint chunks; with
            // promotion the release ships one full-entry update.
            for i in 0..50 {
                c.write_int(0, i, i as i128 + 2000).unwrap();
            }
            for i in 90..120 {
                c.write_int(0, i, i as i128 + 2000).unwrap();
            }
            c.release(L0).unwrap();
            // One update frame for the promoted entry (128 elements,
            // 512 bytes) rather than two fragments.
            let costs = c.costs();
            assert_eq!(costs.updates_sent, 1);
            assert!(costs.bytes_sent > 512);
            // And the values are correct at the next acquire (including
            // the untouched gap, which keeps its pre-critical values).
            c.acquire(L0).unwrap();
            assert_eq!(c.read_int(0, 49).unwrap(), 2049);
            assert_eq!(c.read_int(0, 70).unwrap(), 1070); // initial value
            assert_eq!(c.read_int(0, 91).unwrap(), 2091);
            c.release(L0).unwrap();
        });
    }

    #[test]
    fn cold_rehost_pulls_full_state_on_new_platform() {
        with_cluster(vec![PlatformSpec::linux_x86()], 1, 0, |c| {
            c.acquire(L0).unwrap();
            c.write_int(1, 0, 99).unwrap();
            c.release(L0).unwrap();
            // Migrate this thread to a big-endian LP64 node, cold.
            c.rehost_cold(PlatformSpec::solaris_sparc64()).unwrap();
            assert_eq!(c.platform().name, "solaris-sparc64");
            // Cold copy: zero until the next acquire.
            assert_eq!(c.read_int(1, 0).unwrap(), 0);
            c.acquire(L0).unwrap();
            assert_eq!(c.read_int(1, 0).unwrap(), 99);
            assert_eq!(c.read_int(0, 5).unwrap(), 1005);
            c.release(L0).unwrap();
        });
    }

    #[test]
    fn warm_rehost_carries_globals_and_dirty_state() {
        with_cluster(vec![PlatformSpec::linux_x86()], 1, 0, |c| {
            // Acquire initial state, then write *without releasing*.
            c.acquire(L0).unwrap();
            c.write_int(0, 10, -42).unwrap();
            // Migrate mid-critical-section data to a BE LP64 node.
            c.rehost(PlatformSpec::solaris_sparc64()).unwrap();
            assert_eq!(c.platform().name, "solaris-sparc64");
            // The global segment travelled with the thread: both the
            // pulled initial state and the unreleased write are visible.
            assert_eq!(c.read_int(0, 10).unwrap(), -42);
            assert_eq!(c.read_int(0, 5).unwrap(), 1005);
            // Releasing after the move still ships the pre-move write.
            c.release(L0).unwrap();
            c.rehost_cold(PlatformSpec::linux_x86()).unwrap();
            c.acquire(L0).unwrap();
            assert_eq!(c.read_int(0, 10).unwrap(), -42, "write survived");
            c.release(L0).unwrap();
        });
    }

    #[test]
    fn lock_guard_releases_on_drop() {
        with_cluster(vec![PlatformSpec::linux_x86()], 1, 0, |c| {
            {
                let mut g = c.lock(L0).unwrap();
                g.write_int(1, 0, 11).unwrap();
                assert_eq!(g.lock_id(), L0);
            }
            // If the drop hadn't released, this second acquire would
            // deadlock (the home only grants a free mutex).
            let g = c.lock(L0).unwrap();
            assert_eq!(g.read_int(1, 0).unwrap(), 11);
            g.unlock().unwrap();
            assert!(c.costs().updates_sent >= 1, "drop shipped the diff");
        });
    }

    #[test]
    fn panicking_critical_section_still_flushes_diffs() {
        with_cluster(
            vec![PlatformSpec::linux_x86(), PlatformSpec::solaris_sparc()],
            1,
            1,
            |c| {
                if c.thread_rank() == 1 {
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut g = c.lock(L0).unwrap();
                        g.write_int(1, 0, 123).unwrap();
                        panic!("simulated failure inside the critical section");
                    }));
                    assert!(r.is_err());
                    c.barrier(B0).unwrap();
                } else {
                    c.barrier(B0).unwrap();
                    // The panicking thread's guard released on unwind and
                    // shipped its write home.
                    c.acquire(L0).unwrap();
                    assert_eq!(c.read_int(1, 0).unwrap(), 123);
                    c.release(L0).unwrap();
                }
            },
        );
    }

    /// Two home shards, two workers: entry 0 ("xs") is owned by shard 0,
    /// entry 1 ("flag") by shard 1, so a critical section touching both
    /// must flush to the non-owning shard and the next acquirer must
    /// fetch from it.
    #[test]
    fn updates_flow_across_two_shards() {
        let def = tiny_def();
        let dir = Directory::new(2);
        let (_net, mut eps) =
            hdsm_net::endpoint::Network::new(2 + 2, hdsm_net::stats::NetConfig::instant());
        let shard1_ep = eps.remove(1);
        let shard0_ep = eps.remove(0);
        let mut shards = Vec::new();
        for (shard, ep) in [(0u32, shard0_ep), (1u32, shard1_ep)] {
            let mut h = HomeService::new(
                GthvInstance::new(def.clone(), PlatformSpec::linux_x86()),
                ep,
                HomeConfig {
                    n_locks: 1,
                    n_barriers: 1,
                    n_conds: 0,
                    participants: vec![1, 2],
                    shard,
                    directory: dir,
                    ..Default::default()
                },
            );
            h.init_with(|g| {
                for i in 0..128 {
                    g.write_int(0, i, 1000 + i as i128).unwrap();
                }
            });
            shards.push(h);
        }
        std::thread::scope(|s| {
            for h in shards {
                s.spawn(move || h.run().expect("shard"));
            }
            for (i, ep) in eps.drain(..).enumerate() {
                let def = def.clone();
                s.spawn(move || {
                    let gthv = GthvInstance::new(def, PlatformSpec::linux_x86());
                    let mut c = DsdClient::new(i as u32 + 1, ep, 0, gthv);
                    c.set_directory(dir);
                    if c.thread_rank() == 1 {
                        c.acquire(L0).unwrap();
                        // Initial state arrived from shard 0's slice.
                        assert_eq!(c.read_int(0, 5).unwrap(), 1005);
                        c.write_int(0, 0, -1).unwrap(); // shard 0's entry
                        c.write_int(1, 0, 77).unwrap(); // shard 1's entry
                        c.release(L0).unwrap();
                        c.barrier(B0).unwrap();
                    } else {
                        c.barrier(B0).unwrap();
                        c.acquire(L0).unwrap();
                        assert_eq!(c.read_int(0, 0).unwrap(), -1, "granting shard's slice");
                        assert_eq!(c.read_int(1, 0).unwrap(), 77, "fetched shard's slice");
                        assert_eq!(c.read_int(0, 99).unwrap(), 1099, "untouched initial state");
                        c.release(L0).unwrap();
                    }
                    c.join().expect("join");
                });
            }
        });
    }

    #[test]
    fn backoff_jitter_stays_within_bounds() {
        use std::time::Duration;
        let base = Duration::from_millis(100);
        let cap = Duration::from_millis(800);
        let mut rng = 0x1234_5678_u64;
        let mut prev = base;
        for i in 0..10_000 {
            let next = decorrelated_backoff(prev, base, cap, &mut rng);
            assert!(next >= base.min(cap), "delay {i} fell below base: {next:?}");
            assert!(next <= cap, "delay {i} blew the cap: {next:?}");
            // Pre-cap the draw is bounded by 3x the previous delay (the
            // +1 keeps the uniform range non-empty when prev == base).
            let pre_cap_hi = (prev * 3).max(base + Duration::from_micros(1));
            assert!(next <= pre_cap_hi.min(cap), "delay {i} overshot: {next:?}");
            prev = next;
        }
    }

    #[test]
    fn backoff_jitter_is_deterministic_per_seed_and_decorrelated_across_seeds() {
        use std::time::Duration;
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(5);
        let draw = |seed: u64| {
            let mut rng = seed;
            let mut prev = base;
            (0..32)
                .map(|_| {
                    prev = decorrelated_backoff(prev, base, cap, &mut rng);
                    prev
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7), "same seed must replay the same delays");
        assert_ne!(draw(7), draw(8), "different seeds must not march in step");
    }

    #[test]
    fn backoff_cap_clamps_even_a_tiny_cap() {
        use std::time::Duration;
        let base = Duration::from_millis(100);
        let cap = Duration::from_millis(30); // cap below base: cap wins
        let mut rng = 99;
        let mut prev = base;
        for _ in 0..100 {
            prev = decorrelated_backoff(prev, base, cap, &mut rng);
            assert_eq!(prev, cap);
        }
    }

    #[test]
    fn worker_lost_error_reports_detector_evidence() {
        use std::time::Duration;
        let e = DsdError::WorkerLost {
            rank: 3,
            heard_age: Some(Duration::from_millis(310)),
            lease: Some(Duration::from_millis(250)),
        };
        let s = e.to_string();
        assert!(s.contains("worker 3"), "{s}");
        assert!(s.contains("310"), "{s}");
        assert!(s.contains("250"), "{s}");
        let legacy = DsdError::WorkerLost {
            rank: 3,
            heard_age: None,
            lease: None,
        };
        assert!(legacy.to_string().contains("lease expired"));
    }
}
