//! Simulated heterogeneous cluster orchestration.
//!
//! A cluster is a home node (running the stub service that owns the
//! authoritative `GThV`) plus worker nodes, each with its own platform
//! specification and its own native-representation copy of the shared
//! structure. Workers run as OS threads connected by the simulated
//! network — nothing crosses a node boundary except serialized bytes.
//!
//! Two execution modes:
//! * [`ClusterBuilder::run`] — SPMD-style: every worker executes the
//!   same closure against its [`DsdClient`]. Data placement is static
//!   (`entry % shards`) unless [`ClusterBuilder::placement`] selects an
//!   adaptive [`PlacementPolicy`], in which case a placement engine
//!   re-homes hot entries toward their dominant writers mid-run;
//! * [`ClusterBuilder::run_adaptive`] — workers execute
//!   [`Computation`]s from a [`ProgramRegistry`] and a migration schedule
//!   moves threads between (possibly heterogeneous) platforms at their
//!   adaptation points, exercising the full MigThread pack → ship →
//!   receiver-makes-right → resync pipeline mid-computation. With an
//!   adaptive policy and no explicit schedule, the moves are derived
//!   from the platforms' `cpu_factor`s
//!   ([`crate::placement::plan_thread_moves`]).
//!
//! A note on what "node" means here: a node is a platform specification
//! plus an address space holding data in that platform's representation.
//! When a thread migrates, the hosting OS thread survives but everything
//! platform-visible — byte order, type sizes, page size, the protected
//! address space — is torn down and rebuilt for the destination platform,
//! which is exactly the state a real migration would transfer.

use crate::client::{DsdClient, DsdError};
use crate::costs::CostBreakdown;
use crate::directory::Directory;
use crate::gthv::{GthvDef, GthvInstance};
use crate::home::{HomeConfig, HomeError, HomeRunOutcome, HomeShard};
use crate::ids::{BarrierId, CondId, LockId, ShardId};
use crate::placement::{PlacementInputs, PlacementPolicy};
use crate::protocol::DsdMsg;
use crate::tenant::{ResidualReport, SessionSpec, TenantSpace};
use crate::update::{apply_batch, extract_updates, full_ranges};
use hdsm_migthread::compute::{Computation, ProgramRegistry, StepStatus};
use hdsm_migthread::packfmt::{pack_state_observed, MigrateError};
use hdsm_migthread::state::ThreadState;
use hdsm_net::endpoint::{Endpoint, NetError, Network};
use hdsm_net::fault::LinkFaults;
use hdsm_net::message::MsgKind;
use hdsm_net::stats::{NetConfig, NetStats};
use hdsm_net::{ActorId, FabricClock, FabricMode, FaultPlan, SimFabric, Ticker};
use hdsm_obs::{DecisionRow, EventKind, ObsSnapshot, Recorder, WatchdogConfig};
use hdsm_platform::spec::{Platform, PlatformSpec};
use hdsm_tags::convert::ConversionStats;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Errors from cluster orchestration.
#[derive(Debug)]
pub enum ClusterError {
    /// The builder was incomplete.
    Config(String),
    /// The home service failed.
    Home(HomeError),
    /// A worker failed.
    Worker {
        /// Worker index.
        index: usize,
        /// The failure.
        error: DsdError,
    },
    /// A migration failed.
    Migration(MigrateError),
    /// A worker thread panicked.
    Panic(String),
    /// A worker crashed or was partitioned away and the home's failure
    /// detector declared it dead; the run could not complete normally.
    WorkerLost {
        /// Thread rank of the lost worker.
        rank: u32,
        /// How long the home had gone without hearing from the worker
        /// when the detector fired (`None` when not reported).
        heard_age: Option<Duration>,
        /// The lease deadline that silence exceeded (`None` as above).
        lease: Option<Duration>,
    },
    /// A proactive shard handoff ([`ClusterCtl::handoff`]) failed.
    Handoff {
        /// The shard being drained.
        shard: u32,
        /// The underlying failure.
        error: DsdError,
    },
    /// A handoff or per-entry re-homing found the shard fenced —
    /// mid-promotion, deposed or busy with another move. Transient:
    /// back off and retry once the view settles, as the adaptive
    /// placement loop does.
    HandoffBusy {
        /// The shard that bounced the request.
        shard: u32,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Config(s) => write!(f, "bad cluster config: {s}"),
            ClusterError::Home(e) => write!(f, "home: {e}"),
            ClusterError::Worker { index, error } => write!(f, "worker {index}: {error}"),
            ClusterError::Migration(e) => write!(f, "migration: {e}"),
            ClusterError::Panic(s) => write!(f, "worker panicked: {s}"),
            ClusterError::WorkerLost {
                rank,
                heard_age,
                lease,
            } => match (heard_age, lease) {
                (Some(age), Some(lease)) => write!(
                    f,
                    "worker rank {rank} lost: silent {}ms, past its {}ms lease",
                    age.as_millis(),
                    lease.as_millis()
                ),
                _ => write!(f, "worker rank {rank} lost"),
            },
            ClusterError::Handoff { shard, error } => {
                write!(f, "handoff of shard {shard} failed: {error}")
            }
            ClusterError::HandoffBusy { shard } => {
                write!(
                    f,
                    "shard {shard} is fenced (mid-promotion or mid-move); back off and retry"
                )
            }
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Home(e) => Some(e),
            ClusterError::Worker { error, .. } => Some(error),
            ClusterError::Migration(e) => Some(e),
            ClusterError::Handoff { error, .. } => Some(error),
            ClusterError::Config(_)
            | ClusterError::Panic(_)
            | ClusterError::WorkerLost { .. }
            | ClusterError::HandoffBusy { .. } => None,
        }
    }
}

impl From<HomeError> for ClusterError {
    fn from(e: HomeError) -> ClusterError {
        ClusterError::Home(e)
    }
}

impl From<MigrateError> for ClusterError {
    fn from(e: MigrateError) -> ClusterError {
        ClusterError::Migration(e)
    }
}

/// Per-worker identity handed to the SPMD body.
#[derive(Debug, Clone)]
pub struct WorkerInfo {
    /// Worker index, `0..n_workers`.
    pub index: usize,
    /// Total workers.
    pub n_workers: usize,
    /// The worker's (initial) platform.
    pub platform: Platform,
    /// The tenancy session this worker belongs to, when the cluster was
    /// built with [`ClusterBuilder::sessions`]: the offset map minting
    /// its session-local lock/barrier/cond handles. `None` in classic
    /// single-session mode.
    pub session: Option<TenantSpace>,
}

/// Statistics about migrations performed during an adaptive run.
#[derive(Debug, Clone, Copy, Default)]
pub struct MigrationStats {
    /// Number of migrations executed.
    pub migrations: u64,
    /// Time spent packing states.
    pub pack_time: Duration,
    /// Time spent restoring (receiver-makes-right) states.
    pub restore_time: Duration,
    /// Total image bytes shipped.
    pub image_bytes: u64,
}

/// Everything a finished cluster run reports.
#[derive(Debug)]
pub struct ClusterOutcome<R> {
    /// Per-worker results, in worker order.
    pub results: Vec<R>,
    /// Per-worker Eq. 1 cost breakdowns.
    pub worker_costs: Vec<CostBreakdown>,
    /// Per-worker conversion statistics.
    pub worker_conv: Vec<ConversionStats>,
    /// Home-side cost breakdown.
    pub home_costs: CostBreakdown,
    /// Home-side conversion statistics.
    pub home_conv: ConversionStats,
    /// The final authoritative shared structure.
    pub final_gthv: GthvInstance,
    /// Network traffic statistics.
    pub net_stats: NetStats,
    /// Migration statistics (zero for static runs).
    pub migration_stats: MigrationStats,
    /// Observability snapshot, when the cluster ran with
    /// [`ClusterBuilder::obs`] wired to an enabled recorder.
    pub obs: Option<ObsSnapshot>,
    /// Per-shard tenancy-hygiene reports from the winning home
    /// instances: state still held for closed-session ranks at loop
    /// exit. All-clean unless a session purge leaked.
    pub residuals: Vec<ResidualReport>,
}

/// One scheduled migration for [`ClusterBuilder::run_adaptive`].
#[derive(Debug, Clone)]
pub struct MigrationEvent {
    /// Worker index to move.
    pub worker: usize,
    /// Migrate when the worker has completed this many steps.
    pub after_steps: u64,
    /// Destination platform.
    pub to_platform: Platform,
}

/// Home-side initialisation closure.
type InitFn = Box<dyn FnOnce(&mut GthvInstance) + Send>;

/// Admin control script run concurrently with the workers.
type ControlFn = Box<dyn FnOnce(ClusterCtl) + Send>;

/// Handle given to a [`ClusterBuilder::control`] script: administrative
/// operations against the *running* cluster — fault injection (kills,
/// partitions) and membership changes (live shard handoff). The script
/// runs on its own thread with its own endpoint; everything it does
/// crosses the simulated fabric like any other traffic.
pub struct ClusterCtl {
    net: Network,
    ep: Endpoint,
    directory: Directory,
    /// Cooperative kill switches, indexed by home endpoint rank.
    kills: Vec<Arc<AtomicBool>>,
    /// The fabric's time source. Control scripts that pace themselves
    /// must use [`ClusterCtl::sleep`], not `std::thread::sleep`, so the
    /// pacing rides the virtual clock in simulation mode.
    clock: FabricClock,
    /// The cluster's recorder, for [`ClusterCtl::dump`].
    recorder: Recorder,
}

impl ClusterCtl {
    /// The cluster's shard directory (for endpoint arithmetic).
    pub fn directory(&self) -> Directory {
        self.directory
    }

    /// Fire the black-box flight recorder by hand: freeze the current
    /// diagnostic bundle (last events per rank, in-flight sync ops,
    /// directory epochs, recent time-series frames) and write it to the
    /// configured directory. Returns the bundle path, or `None` when the
    /// cluster was built without [`ClusterBuilder::flight_recorder`] or
    /// without an enabled recorder.
    pub fn dump(&self) -> Option<String> {
        self.recorder.blackbox_trigger("dump")
    }

    /// Sleep on the fabric timeline: real time in threaded mode, virtual
    /// time in simulation mode. Always prefer this over
    /// `std::thread::sleep` inside a control script.
    pub fn sleep(&self, d: Duration) {
        self.clock.sleep(d);
    }

    /// Handle to the fabric (stats, partitions).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Kill shard `shard`'s primary instance: its service loop exits at
    /// the next turn and its endpoint drops, so in-flight senders see
    /// `Disconnected` — the sharpest failure the fabric can model.
    pub fn kill_shard(&self, shard: ShardId) {
        self.kills[self.directory.shard_ep(shard.raw()) as usize].store(true, Ordering::Relaxed);
    }

    /// Kill shard `shard`'s standby replica. Requires replicas.
    pub fn kill_replica(&self, shard: ShardId) {
        self.kills[self.directory.replica_ep(shard.raw()) as usize].store(true, Ordering::Relaxed);
    }

    /// Sever the link between two endpoint ranks, both ways. Unlike a
    /// kill, sends still succeed — frames just vanish, like a pulled
    /// cable — so neither side learns anything except from silence.
    pub fn partition(&self, a: u32, b: u32) {
        self.net.partition(a, b);
    }

    /// Sever the replication link of shard `shard` (primary ↔ replica):
    /// the primary self-fences at ¾ of the lease, the replica promotes
    /// at a full lease of silence.
    pub fn partition_replication(&self, shard: ShardId) {
        self.partition(
            self.directory.shard_ep(shard.raw()),
            self.directory.replica_ep(shard.raw()),
        );
    }

    /// Restore every severed link.
    pub fn heal(&self) {
        self.net.heal();
    }

    /// Drain shard `shard` into its standby and retire the old primary:
    /// the primary fences (clients bounce to the replica and replay
    /// there), snapshots its full state — entry bytes, update log,
    /// lease and dedup tables — through the wire, and retires once the
    /// replica confirms installation under the bumped epoch. Blocks
    /// until the handoff completes; zero client operations fail.
    pub fn handoff(&mut self, shard: ShardId) -> Result<(), ClusterError> {
        let s = shard.raw();
        let dst = self.directory.shard_ep(s);
        let req = DsdMsg::HandoffRequest { shard: s }.encode_enveloped(0);
        let deadline = self.clock.now() + Duration::from_secs(30);
        let mut next_send = self.clock.now();
        loop {
            if self.clock.now() >= deadline {
                return Err(ClusterError::Handoff {
                    shard: s,
                    error: DsdError::Net(NetError::Timeout),
                });
            }
            if self.clock.now() >= next_send {
                match self.ep.send(dst, MsgKind::HandoffRequest, req.clone()) {
                    // A dead primary cannot be drained, but its replica
                    // promotes on its own; nothing to hand off.
                    Ok(()) | Err(NetError::Disconnected(_)) => {}
                    Err(e) => {
                        return Err(ClusterError::Handoff {
                            shard: s,
                            error: e.into(),
                        })
                    }
                }
                next_send = self.clock.now() + Duration::from_millis(100);
            }
            match self.ep.recv_timeout(Duration::from_millis(50)) {
                Ok(m) if m.kind == MsgKind::HandoffDone => {
                    if let Ok((_, DsdMsg::HandoffDone { shard: hs, .. })) =
                        DsdMsg::decode_enveloped(m.kind, m.payload)
                    {
                        if hs == s {
                            return Ok(());
                        }
                    }
                }
                // A shard fenced for any reason other than this very drain
                // (deposed, mid-promotion, busy with an entry move) bounces
                // the request with `ViewChange` instead of starting it.
                // Surface the typed busy error — the old behaviour was a
                // generic 30 s timeout — so callers can back off. Safe
                // against false positives: the admin link is FIFO and a
                // shard draining *for us* answers duplicates silently, so
                // a `ViewChange` here never races a later `HandoffDone`.
                Ok(m) if m.kind == MsgKind::ViewChange => {
                    return Err(ClusterError::HandoffBusy { shard: s });
                }
                Ok(_) => {} // stray redirects etc.: ignore
                Err(NetError::Timeout) => {}
                Err(e) => {
                    return Err(ClusterError::Handoff {
                        shard: s,
                        error: DsdError::Net(e),
                    })
                }
            }
        }
    }

    /// Migrate one index entry's home from shard `from` to shard `to` —
    /// the actuator behind heat-driven placement, also available to
    /// control scripts directly. The source shard snapshots the entry's
    /// authoritative bytes, flips its ownership overlay under a fresh
    /// per-entry epoch and offers the state to the target; client
    /// traffic for the entry is deferred at the source until the target
    /// acknowledges, and clients with a stale view are bounced
    /// `EntryMoved` rows to merge. Blocks until the move is confirmed.
    ///
    /// Returns [`ClusterError::HandoffBusy`] when the source shard is
    /// fenced or mid-move — transient; retry after backing off.
    pub fn rehome_entry(
        &mut self,
        entry: u32,
        from: ShardId,
        to: ShardId,
    ) -> Result<(), ClusterError> {
        let (s_from, s_to) = (from.raw(), to.raw());
        let req = DsdMsg::EntryHandoff {
            entry,
            to_shard: s_to,
        }
        .encode_enveloped(0);
        // Offer to both of the source shard's endpoints: the mute shadow
        // drops it, a retired primary is Disconnected, the serving
        // instance (original or promoted) acts on it.
        let mut dsts = vec![self.directory.shard_ep(s_from)];
        if self.directory.n_replicas() > 0 {
            dsts.push(self.directory.replica_ep(s_from));
        }
        let deadline = self.clock.now() + Duration::from_secs(10);
        let mut next_send = self.clock.now();
        loop {
            if self.clock.now() >= deadline {
                return Err(ClusterError::Handoff {
                    shard: s_from,
                    error: DsdError::Net(NetError::Timeout),
                });
            }
            if self.clock.now() >= next_send {
                let mut alive = false;
                for &dst in &dsts {
                    match self.ep.send(dst, MsgKind::EntryHandoff, req.clone()) {
                        Ok(()) => alive = true,
                        Err(NetError::Disconnected(_)) => {}
                        Err(e) => {
                            return Err(ClusterError::Handoff {
                                shard: s_from,
                                error: e.into(),
                            })
                        }
                    }
                }
                if !alive {
                    // Every endpoint of the source shard is gone — the
                    // cluster is tearing down. Let the caller break.
                    return Err(ClusterError::Handoff {
                        shard: s_from,
                        error: DsdError::Net(NetError::Disconnected(dsts[0])),
                    });
                }
                next_send = self.clock.now() + Duration::from_millis(100);
            }
            match self.ep.recv_timeout(Duration::from_millis(50)) {
                Ok(m) if m.kind == MsgKind::EntryDone => {
                    if let Ok((_, DsdMsg::EntryDone { entry: e, to_shard })) =
                        DsdMsg::decode_enveloped(m.kind, m.payload)
                    {
                        if e == entry && to_shard == s_to {
                            return Ok(());
                        }
                    }
                }
                Ok(m) if m.kind == MsgKind::ViewChange => {
                    return Err(ClusterError::HandoffBusy { shard: s_from });
                }
                Ok(_) => {} // late acks for earlier moves etc.: ignore
                Err(NetError::Timeout) => {}
                Err(e) => {
                    return Err(ClusterError::Handoff {
                        shard: s_from,
                        error: DsdError::Net(e),
                    })
                }
            }
        }
    }
}

/// Cluster shape: shard fan-out, replication and execution fabric.
///
/// Set with [`ClusterBuilder::topology`].
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// Home shard count (default 1). Index-table entries, mutexes,
    /// barriers and condition variables are partitioned across
    /// independent [`HomeShard`]s by the deterministic [`Directory`]
    /// (`id % n`); `shards: 1` is the classic single-home layout and
    /// produces a byte-identical message sequence.
    pub shards: u32,
    /// Warm standby replicas per shard, 0 or 1 (default 0). A replica
    /// shadows its primary through an op-log relay and promotes itself
    /// when the primary goes silent past the lease; 0 keeps the wire
    /// protocol byte-identical to the unreplicated layout.
    pub replicas: u32,
    /// Execution fabric (default [`FabricMode::Threads`] — free-running
    /// OS threads on the wall clock). [`FabricMode::Sim`] multiplexes the
    /// same node code under a seeded discrete-event scheduler on a
    /// virtual clock, making the whole run an exactly reproducible
    /// function of `(workload, config, seed)`.
    pub fabric: FabricMode,
    /// Hot-path implementation selection for every node (default `true`:
    /// compiled conversion plans, the grouped v2 wire format and the
    /// parallel diff scan). `false` forces the original tag-interpreting
    /// slow paths — the differential suite runs both and requires
    /// byte-identical final state.
    pub fast_path: bool,
}

impl Default for TopologyConfig {
    /// One unreplicated shard on the threaded fabric with the hot paths
    /// on — the classic single-home layout.
    fn default() -> TopologyConfig {
        TopologyConfig {
            shards: 1,
            replicas: 0,
            fabric: FabricMode::Threads,
            fast_path: true,
        }
    }
}

/// Protocol timing: the liveness lease, receive bounds, the client
/// retransmission schedule and the stall-watchdog budget.
///
/// Set with [`ClusterBuilder::timing`].
#[derive(Debug, Clone)]
pub struct TimingConfig {
    /// Liveness lease; `None` disables failure detection and the
    /// heartbeat pumps (default 30 s).
    pub lease: Option<Duration>,
    /// Bound on every worker's blocking protocol receive (default
    /// unbounded).
    pub recv_deadline: Option<Duration>,
    /// Retransmissions each client attempts per request before waiting
    /// out its deadline (`None` = the client default of 10).
    pub max_retries: Option<u32>,
    /// First client retransmission delay, doubling per attempt
    /// (`None` = the client default of 250 ms).
    pub retry_base: Option<Duration>,
    /// Fixed stall-watchdog budget: an in-flight sync op older than this
    /// fires a [`hdsm_obs::StallReport`] (and the flight recorder, when
    /// enabled). `None` (the default) derives per-kind budgets from each
    /// op's rolling p99 latency. Only observed when
    /// [`ClusterBuilder::telemetry`] is on.
    pub stall_budget: Option<Duration>,
}

impl Default for TimingConfig {
    /// The builder defaults: a 30 s lease, unbounded receives, the
    /// client's own retransmission schedule and p99-derived stall
    /// budgets.
    fn default() -> TimingConfig {
        TimingConfig {
            lease: Some(Duration::from_secs(30)),
            recv_deadline: None,
            max_retries: None,
            retry_base: None,
            stall_budget: None,
        }
    }
}

/// Fault injection for the simulated fabric.
///
/// Set with [`ClusterBuilder::faults`]. The home automatically lingers
/// after shutdown to answer retransmissions.
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// The fault plan (drops, duplicates, reorders, jitter — see
    /// [`FaultPlan`]); `None` (the default) runs a clean fabric.
    pub plan: Option<FaultPlan>,
}

/// Builder for a simulated cluster.
pub struct ClusterBuilder {
    def: Option<GthvDef>,
    home_platform: Platform,
    worker_platforms: Vec<Platform>,
    n_locks: u32,
    n_barriers: u32,
    n_conds: u32,
    shards: u32,
    replicas: u32,
    net_config: NetConfig,
    init: Option<InitFn>,
    control: Option<ControlFn>,
    recv_deadline: Option<Duration>,
    lease: Option<Duration>,
    max_retries: Option<u32>,
    retry_base: Option<Duration>,
    recorder: Recorder,
    fast_path: bool,
    fabric: FabricMode,
    sessions: Vec<SessionSpec>,
    placement: PlacementPolicy,
    stall_budget: Option<Duration>,
    telemetry: Option<(Duration, usize)>,
    obs_ring_capacity: Option<usize>,
    blackbox_dir: Option<String>,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterBuilder {
    /// Start building; the home node defaults to the paper's Linux/x86.
    pub fn new() -> ClusterBuilder {
        ClusterBuilder {
            def: None,
            home_platform: PlatformSpec::linux_x86(),
            worker_platforms: Vec::new(),
            n_locks: 1,
            n_barriers: 1,
            n_conds: 0,
            shards: 1,
            replicas: 0,
            net_config: NetConfig::instant(),
            init: None,
            control: None,
            recv_deadline: None,
            lease: Some(Duration::from_secs(30)),
            max_retries: None,
            retry_base: None,
            recorder: Recorder::disabled(),
            fast_path: true,
            fabric: FabricMode::Threads,
            sessions: Vec::new(),
            placement: PlacementPolicy::Static,
            stall_budget: None,
            telemetry: None,
            obs_ring_capacity: None,
            blackbox_dir: None,
        }
    }

    /// Choose how index entries are placed on home shards (default
    /// [`PlacementPolicy::Static`] — entries stay at `entry % shards`,
    /// byte-identical to every release so far). An adaptive policy
    /// provisions a placement endpoint and engine thread that watches
    /// the run's write heat and re-homes hot entries mid-run; see the
    /// [`crate::placement`] module docs. Adaptive policies require an
    /// enabled [`ClusterBuilder::obs`] recorder: the signals they plan
    /// from come from the observability layer.
    pub fn placement(mut self, policy: PlacementPolicy) -> Self {
        self.placement = policy;
        self
    }

    /// Set the cluster shape — shards, replicas, fabric and hot-path
    /// selection — in one typed call.
    pub fn topology(mut self, t: TopologyConfig) -> Self {
        self.shards = t.shards;
        self.replicas = t.replicas;
        self.fabric = t.fabric;
        self.fast_path = t.fast_path;
        self
    }

    /// Set the protocol timing — lease, receive bound, retransmission
    /// schedule and stall budget — in one typed call.
    pub fn timing(mut self, t: TimingConfig) -> Self {
        self.lease = t.lease;
        self.recv_deadline = t.recv_deadline;
        self.max_retries = t.max_retries;
        self.retry_base = t.retry_base;
        self.stall_budget = t.stall_budget;
        self
    }

    /// Set fault injection in one typed call.
    pub fn faults(mut self, f: FaultConfig) -> Self {
        self.net_config.fault_plan = f.plan;
        self
    }

    /// Observe the run: the recorder is wired through the fabric, every
    /// worker client and the home service, and the finished outcome
    /// carries [`ClusterOutcome::obs`]. Pass [`Recorder::disabled`] (the
    /// default) for a counter-free no-op.
    pub fn obs(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Turn on live telemetry: a cluster "telemetry" actor — registered
    /// on the fabric like the placement engine, so simulated runs stay
    /// deterministic — closes one time-series window per `interval` of
    /// fabric time (keeping the most recent `frames` delta frames) and
    /// runs the stall watchdog on the same tick. Requires an enabled
    /// [`Self::obs`] recorder; with a disabled recorder this knob is
    /// ignored and no actor is spawned.
    pub fn telemetry(mut self, interval: Duration, frames: usize) -> Self {
        self.telemetry = Some((interval, frames));
        self
    }

    /// Override the per-rank event-ring capacity of the enabled
    /// [`Self::obs`] recorder (default 65 536 events per rank). Rings
    /// that wrap surface per-rank drop counts in
    /// `ObsSnapshot::report()`'s event-rings section.
    pub fn obs_ring_capacity(mut self, cap: usize) -> Self {
        self.obs_ring_capacity = Some(cap);
        self
    }

    /// Enable the black-box flight recorder: on a watchdog firing, a
    /// lost worker, a lease expiry, a view change, a sim deadlock or an
    /// explicit [`ClusterCtl::dump`], a diagnostic bundle is written to
    /// `<dir>/blackbox-<trigger>-<seq>.json`. Requires an enabled
    /// [`Self::obs`] recorder.
    pub fn flight_recorder(mut self, dir: impl Into<String>) -> Self {
        self.blackbox_dir = Some(dir.into());
        self
    }

    /// Multi-session tenancy: partition the configured workers (in rank
    /// order) into independent sessions, each with a private lock,
    /// barrier and cond namespace carved out of the shared home-shard
    /// pool. The spec worker counts must sum to the worker count; lock,
    /// barrier and cond totals override [`Self::locks`]/[`Self::barriers`]
    /// /[`Self::conds`]. Each session shuts down — and has its home-side
    /// per-rank state purged — as soon as its own members finish, while
    /// other sessions keep running.
    pub fn sessions(mut self, specs: Vec<SessionSpec>) -> Self {
        self.sessions = specs;
        self
    }

    /// Set the shared structure definition (required).
    pub fn gthv(mut self, def: GthvDef) -> Self {
        self.def = Some(def);
        self
    }

    /// Set the home node's platform (authoritative copy representation).
    pub fn home(mut self, platform: Platform) -> Self {
        self.home_platform = platform;
        self
    }

    /// Add a worker node on `platform`.
    pub fn worker(mut self, platform: Platform) -> Self {
        self.worker_platforms.push(platform);
        self
    }

    /// Number of distributed mutexes (default 1).
    pub fn locks(mut self, n: u32) -> Self {
        self.n_locks = n;
        self
    }

    /// Number of barriers (default 1).
    pub fn barriers(mut self, n: u32) -> Self {
        self.n_barriers = n;
        self
    }

    /// Number of condition variables (default 0).
    pub fn conds(mut self, n: u32) -> Self {
        self.n_conds = n;
        self
    }

    /// Run an admin control script concurrently with the workers. The
    /// script gets a [`ClusterCtl`] on its own fabric endpoint and can
    /// kill shards, partition links and drain shards into their
    /// standbys while the computation runs.
    pub fn control<F: FnOnce(ClusterCtl) + Send + 'static>(mut self, f: F) -> Self {
        self.control = Some(Box::new(f));
        self
    }

    /// Typed handles for the configured mutexes, in index order. Mint
    /// these once after [`ClusterBuilder::locks`] and hand them to the
    /// workers — the session API on [`DsdClient`] only accepts the
    /// matching handle kind.
    pub fn lock_ids(&self) -> Vec<LockId> {
        (0..self.n_locks).map(LockId::new).collect()
    }

    /// Typed handles for the configured barriers, in index order.
    pub fn barrier_ids(&self) -> Vec<BarrierId> {
        (0..self.n_barriers).map(BarrierId::new).collect()
    }

    /// Typed handles for the configured condition variables, in index
    /// order.
    pub fn cond_ids(&self) -> Vec<CondId> {
        (0..self.n_conds).map(CondId::new).collect()
    }

    /// Network cost model (default: instant, for tests).
    pub fn net(mut self, config: NetConfig) -> Self {
        self.net_config = config;
        self
    }

    /// Initialise the shared structure at the home node before workers
    /// start; the contents reach each worker with its first acquire.
    pub fn init<F: FnOnce(&mut GthvInstance) + Send + 'static>(mut self, f: F) -> Self {
        self.init = Some(Box::new(f));
        self
    }

    fn take_parts(&mut self) -> Result<(GthvDef, Network, Vec<Endpoint>), ClusterError> {
        let def = self
            .def
            .take()
            .ok_or_else(|| ClusterError::Config("gthv definition missing".into()))?;
        if self.worker_platforms.is_empty() {
            return Err(ClusterError::Config("no workers".into()));
        }
        if self.shards == 0 {
            return Err(ClusterError::Config(
                "at least one home shard required".into(),
            ));
        }
        if self.replicas > 1 {
            return Err(ClusterError::Config(
                "at most one replica per shard is supported".into(),
            ));
        }
        if self.replicas > 0 && self.lease.is_none() {
            return Err(ClusterError::Config(
                "replicas need a lease: promotion is driven by lease-timed silence".into(),
            ));
        }
        let adaptive = self.placement.is_adaptive();
        if adaptive && !self.recorder.is_enabled() {
            return Err(ClusterError::Config(
                "adaptive placement needs an enabled recorder: the signals it plans from \
                 (write heat, release destinations) come from the observability layer"
                    .into(),
            ));
        }
        let n_home_eps = (self.shards * (1 + self.replicas)) as usize;
        let n_eps = n_home_eps
            + self.worker_platforms.len()
            + usize::from(self.control.is_some())
            + usize::from(adaptive);
        if let Some(plan) = &mut self.net_config.fault_plan {
            // The replication relay and the admin control channel assume
            // a FIFO-reliable link (the paper's fabric guarantee); chaos
            // plans keep battering the client↔home links, but these two
            // internal link classes stay clean. Runtime partitions still
            // sever them — partitions are checked before link faults.
            if self.replicas > 0 {
                for s in 0..self.shards {
                    let (p, r) = (s, self.shards + s);
                    *plan = std::mem::take(plan).link(p, r, LinkFaults::default()).link(
                        r,
                        p,
                        LinkFaults::default(),
                    );
                }
            }
            if self.control.is_some() {
                let admin = (n_home_eps + self.worker_platforms.len()) as u32;
                for ep in 0..n_home_eps as u32 {
                    *plan = std::mem::take(plan)
                        .link(admin, ep, LinkFaults::default())
                        .link(ep, admin, LinkFaults::default());
                }
            }
            if adaptive {
                // Same control-plane exemption for the placement engine's
                // endpoint and the shard↔shard entry-state transfers it
                // triggers. Gated on an adaptive policy so static faulty
                // runs keep their exact fault schedules.
                let placement = (n_eps - 1) as u32;
                for a in 0..n_home_eps as u32 {
                    *plan = std::mem::take(plan)
                        .link(placement, a, LinkFaults::default())
                        .link(a, placement, LinkFaults::default());
                    for b in 0..n_home_eps as u32 {
                        if a != b {
                            *plan = std::mem::take(plan).link(a, b, LinkFaults::default());
                        }
                    }
                }
            }
        }
        let (net, eps) = match self.fabric {
            FabricMode::Threads => {
                Network::new_observed(n_eps, self.net_config.clone(), self.recorder.clone())
            }
            FabricMode::Sim { seed } => {
                let sim = SimFabric::new(seed);
                Network::new_sim(n_eps, self.net_config.clone(), self.recorder.clone(), &sim)
            }
        };
        if let Some(sim) = net.sim() {
            // Obs timestamps ride the virtual clock too, so snapshots of
            // same-seed runs compare byte-for-byte.
            let f = sim.clone();
            self.recorder
                .set_time_source(std::sync::Arc::new(move || f.now_us()));
        }
        // The telemetry knobs are no-ops on a disabled recorder — the
        // calls below return without touching anything.
        if let Some(cap) = self.obs_ring_capacity {
            self.recorder.set_ring_capacity(cap);
        }
        if let Some((interval, frames)) = self.telemetry {
            self.recorder
                .enable_timeseries(interval.as_micros().max(1) as u64, frames);
            self.recorder.configure_watchdog(WatchdogConfig {
                budget_us: self.stall_budget.map(|d| d.as_micros().max(1) as u64),
                ..WatchdogConfig::default()
            });
        }
        if let Some(dir) = &self.blackbox_dir {
            self.recorder.enable_blackbox(dir, 256);
        }
        Ok((def, net, eps))
    }

    /// Run an SPMD body on every worker. The body gets the worker's DSD
    /// client and identity; `join` is called automatically when the
    /// body returns.
    pub fn run<R, F>(mut self, body: F) -> Result<ClusterOutcome<R>, ClusterError>
    where
        R: Send,
        F: Fn(&mut DsdClient, &WorkerInfo) -> Result<R, DsdError> + Send + Sync,
    {
        // Tenancy layout first: session totals override the flat
        // lock/barrier/cond counts before anything is sized from them.
        let spaces: Vec<TenantSpace> = TenantSpace::layout(&self.sessions);
        if !spaces.is_empty() {
            let total: u32 = self.sessions.iter().map(|t| t.workers).sum();
            if total as usize != self.worker_platforms.len() {
                return Err(ClusterError::Config(format!(
                    "sessions claim {total} workers, cluster has {}",
                    self.worker_platforms.len()
                )));
            }
            self.n_locks = self.sessions.iter().map(|t| t.locks).sum();
            self.n_barriers = self.sessions.iter().map(|t| t.barriers).sum();
            self.n_conds = self.sessions.iter().map(|t| t.conds).sum();
        }
        let (def, net, mut eps) = self.take_parts()?;
        let sim = net.sim().cloned();
        let directory = Directory::with_replicas(self.shards, self.replicas);
        let adaptive = self.placement.is_adaptive();
        // Endpoint layout: primaries, then replicas, then workers, then
        // the admin control endpoint (when a control script runs), then
        // the placement engine's endpoint (when the policy is adaptive)
        // — appended in that order so static clusters keep their exact
        // endpoint numbering.
        let mut placement_ep = adaptive.then(|| eps.pop().expect("placement ep"));
        let mut admin_ep = self.control.is_some().then(|| eps.pop().expect("admin ep"));
        let n_home_eps = (self.shards * (1 + self.replicas)) as usize;
        let home_eps: Vec<Endpoint> = eps.drain(..n_home_eps).collect();
        let mut control = self.control.take();
        // Cooperative kill switches, one per home endpoint, flipped by
        // `ClusterCtl::kill_shard` / `kill_replica`. Only wired when a
        // control script can actually flip them.
        let kills: Vec<Arc<AtomicBool>> = (0..n_home_eps)
            .map(|_| Arc::new(AtomicBool::new(false)))
            .collect();
        let n_workers = self.worker_platforms.len();
        let participants: Vec<u32> = (1..=n_workers as u32).collect();
        let retry_base = self.retry_base.unwrap_or(Duration::from_millis(250));
        // With a faulty fabric the final Shutdown can be dropped; the home
        // sticks around long enough to answer Join retransmissions.
        let linger = if self.net_config.fault_plan.is_some() {
            (retry_base * 16).min(Duration::from_secs(2))
        } else {
            Duration::ZERO
        };
        // The obs report keys its shard-utilization section off this gauge.
        self.recorder.gauge("cluster.shards", self.shards as i64);
        let mut init = self.init.take();
        // With one shard the initialiser runs directly on the home
        // instance, exactly the pre-shard path. With several, it runs once
        // on a seed instance and its raw bytes replay into every shard —
        // all homes share one platform, so an untracked byte copy
        // reproduces the closure's effect exactly, and each shard then
        // logs only the slice of the structure it owns.
        let init_image: Option<Vec<u8>> = if directory.n_shards() > 1 || self.replicas > 0 {
            init.take().map(|f| {
                let mut seed = GthvInstance::new(def.clone(), self.home_platform.clone());
                f(&mut seed);
                seed.space().raw().to_vec()
            })
        } else {
            None
        };
        // Every home endpoint gets an instance: primaries first, then
        // (with replication) each shard's standby, configured to shadow
        // its primary through the relay stream.
        let mut shard_services = Vec::with_capacity(n_home_eps);
        for (i, ep) in home_eps.into_iter().enumerate() {
            let is_replica = i >= directory.n_shards() as usize;
            let s = if is_replica {
                i as u32 - directory.n_shards()
            } else {
                i as u32
            };
            let mut home = HomeShard::new(
                GthvInstance::new(def.clone(), self.home_platform.clone()),
                ep,
                HomeConfig {
                    n_locks: self.n_locks,
                    n_barriers: self.n_barriers,
                    n_conds: self.n_conds,
                    participants: participants.clone(),
                    lease: self.lease,
                    linger,
                    recorder: self.recorder.clone(),
                    fast_path: self.fast_path,
                    shard: s,
                    directory,
                    replica_ep: (!is_replica && self.replicas > 0).then(|| directory.replica_ep(s)),
                    primary_ep: is_replica.then(|| directory.shard_ep(s)),
                    kill: control.is_some().then(|| kills[i].clone()),
                    sessions: spaces.clone(),
                    adaptive,
                },
            );
            if let Some(image) = &init_image {
                home.init_with(|g| {
                    let base = g.space().base();
                    g.space_mut()
                        .write_untracked(base, image)
                        .expect("init image matches structure size");
                });
            } else if let Some(f) = init.take() {
                home.init_with(f);
            }
            shard_services.push((s, home));
        }

        let mut results: Vec<Option<(R, CostBreakdown, ConversionStats)>> =
            (0..n_workers).map(|_| None).collect();
        // Finished instances per shard (primary and, with replication,
        // its standby); the authoritative highest-epoch one wins the
        // stitch below.
        let mut home_outs: Vec<Vec<HomeRunOutcome>> =
            (0..directory.n_shards()).map(|_| Vec::new()).collect();
        let deadline = self.recv_deadline;
        let max_retries = self.max_retries;
        let retry_base_opt = self.retry_base;
        let fast_path = self.fast_path;
        let mut first_error: Option<ClusterError> = None;
        let mut home_error: Option<ClusterError> = None;
        let mut worker_errors: Vec<(usize, DsdError)> = Vec::new();
        // Per-worker liveness flags for the heartbeat pump: a crashed
        // worker stops beating so the home's lease detector notices.
        let alive: Vec<AtomicBool> = (0..n_workers).map(|_| AtomicBool::new(true)).collect();
        let pump_done = AtomicBool::new(false);
        let placement_done = AtomicBool::new(false);
        let telemetry_done = AtomicBool::new(false);
        // Threads-mode nap the teardown can cut short, so shutdown never
        // waits out a telemetry slice (that wait would be pure wall-time
        // overhead on short runs).
        let telemetry_stop: (Mutex<bool>, Condvar) = (Mutex::new(false), Condvar::new());
        let telemetry_cfg = self
            .telemetry
            .filter(|_| self.recorder.is_enabled())
            .map(|(interval, _)| interval.max(Duration::from_micros(1)));

        let replicated = self.replicas > 0;
        // Simulation mode: register every node as a scheduler actor, in
        // a fixed order from this one thread, before anything spawns —
        // actor ids are part of the deterministic schedule.
        let home_actors: Vec<Option<ActorId>> = (0..n_home_eps)
            .map(|i| {
                sim.as_ref().map(|f| {
                    let n_shards = directory.n_shards() as usize;
                    if i < n_shards {
                        f.add_actor(&format!("home-shard{i}"))
                    } else {
                        f.add_actor(&format!("home-replica{}", i - n_shards))
                    }
                })
            })
            .collect();
        let pump_actor = if self.lease.is_some() {
            sim.as_ref().map(|f| f.add_actor("pump"))
        } else {
            None
        };
        let ctl_actor = if control.is_some() {
            sim.as_ref().map(|f| f.add_actor("control"))
        } else {
            None
        };
        let placement_actor = if adaptive {
            sim.as_ref().map(|f| f.add_actor("placement"))
        } else {
            None
        };
        let telemetry_actor = if telemetry_cfg.is_some() {
            sim.as_ref().map(|f| f.add_actor("telemetry"))
        } else {
            None
        };
        let worker_actors: Vec<Option<ActorId>> = (0..n_workers)
            .map(|i| {
                sim.as_ref()
                    .map(|f| f.add_actor(&format!("worker{}", i + 1)))
            })
            .collect();
        std::thread::scope(|s| {
            let home_handles: Vec<_> = shard_services
                .into_iter()
                .zip(home_actors)
                .map(|((shard, home), actor)| {
                    let sim = sim.clone();
                    (
                        shard,
                        s.spawn(move || {
                            let _guard = actor.map(|a| sim.as_ref().unwrap().enter(a));
                            home.run()
                        }),
                    )
                })
                .collect();
            // Heartbeat pump: beats on behalf of every live worker at a
            // quarter of the lease, so blocked-but-alive workers (e.g.
            // waiting in a barrier) are never declared dead. Every shard
            // runs its own lease table, so each beat fans out to all of
            // them — including standbys: a shadow drops direct beats
            // (its lease table is fed by the relay stream), but after a
            // promotion the direct beat is what keeps workers alive at
            // the new primary.
            let pump_handle = self.lease.map(|lease| {
                let net = net.clone();
                let sim = sim.clone();
                let alive = &alive;
                let pump_done = &pump_done;
                let interval = (lease / 4).max(Duration::from_millis(5));
                s.spawn(move || {
                    let _guard = pump_actor.map(|a| sim.as_ref().unwrap().enter(a));
                    let clock = net.clock();
                    let mut last_beat = clock.now();
                    // Exit when every worker has signed off (flags flip
                    // at deterministic points) or the run tears down;
                    // the flag check keeps the heartbeat count a pure
                    // function of the schedule in simulation mode.
                    while !pump_done.load(Ordering::Relaxed)
                        && alive.iter().any(|a| a.load(Ordering::Relaxed))
                    {
                        if clock.now().saturating_since(last_beat) >= interval {
                            last_beat = clock.now();
                            for (i, a) in alive.iter().enumerate() {
                                if a.load(Ordering::Relaxed) {
                                    let rank = i as u32 + 1;
                                    let src = directory.worker_ep(rank);
                                    for dst in directory.home_eps() {
                                        let payload = if replicated {
                                            DsdMsg::Heartbeat { rank }
                                                .encode_enveloped_epoch(0, 0, false)
                                        } else {
                                            DsdMsg::Heartbeat { rank }.encode_enveloped(0)
                                        };
                                        let _ = net.send_as(src, dst, MsgKind::Heartbeat, payload);
                                    }
                                }
                            }
                        }
                        clock.sleep(Duration::from_millis(5));
                    }
                })
            });
            // The admin control script, on its own endpoint.
            let ctl_handle = control.take().map(|f| {
                let ctl = ClusterCtl {
                    net: net.clone(),
                    ep: admin_ep.take().expect("control implies admin endpoint"),
                    directory,
                    kills: kills.clone(),
                    clock: net.clock(),
                    recorder: self.recorder.clone(),
                };
                let sim = sim.clone();
                s.spawn(move || {
                    let _guard = ctl_actor.map(|a| sim.as_ref().unwrap().enter(a));
                    f(ctl)
                })
            });
            // The adaptive placement engine, on its own endpoint: once
            // per policy epoch it folds the recorder's cumulative
            // signals through the pure planner and applies each decision
            // as a per-entry home handoff over the admin plane. Pacing
            // rides the fabric clock in small slices, so in simulation
            // the engine is an ordinary actor and its decisions are a
            // deterministic function of (signals, seed), while in
            // threaded mode shutdown is noticed within a slice.
            let placement_handle = adaptive.then(|| {
                let net = net.clone();
                let ep = placement_ep.take().expect("adaptive implies placement ep");
                let policy = self.placement.clone();
                let recorder = self.recorder.clone();
                let sim = sim.clone();
                let kills = kills.clone();
                let placement_done = &placement_done;
                let alive = &alive;
                let shards = directory.n_shards();
                s.spawn(move || {
                    let _guard = placement_actor.map(|a| sim.as_ref().unwrap().enter(a));
                    let mut ctl = ClusterCtl {
                        net: net.clone(),
                        ep,
                        directory,
                        kills,
                        clock: net.clock(),
                        recorder: recorder.clone(),
                    };
                    let epoch = policy.epoch();
                    // The engine's own view of where every moved entry
                    // lives: entry → (shard, per-entry move count). Fed
                    // back into the planner so settled moves become
                    // no-ops instead of oscillation.
                    let mut owners: std::collections::BTreeMap<u32, (u32, u32)> =
                        std::collections::BTreeMap::new();
                    let done = || {
                        placement_done.load(Ordering::Relaxed)
                            || !alive.iter().any(|a| a.load(Ordering::Relaxed))
                    };
                    'engine: loop {
                        let mut slept = Duration::ZERO;
                        while slept < epoch {
                            if done() {
                                break 'engine;
                            }
                            let slice = Duration::from_millis(5).min(epoch - slept);
                            ctl.sleep(slice);
                            slept += slice;
                        }
                        let inputs = PlacementInputs {
                            write_heat: recorder.write_heat(),
                            release_dests: recorder.release_dests(),
                            owners: owners.iter().map(|(&e, &(s, _))| (e, s)).collect(),
                            shards,
                        };
                        for d in policy.plan(&inputs) {
                            if done() {
                                break 'engine;
                            }
                            match ctl.rehome_entry(
                                d.entry,
                                ShardId::new(d.from_shard),
                                ShardId::new(d.to_shard),
                            ) {
                                Ok(()) => {
                                    let moves =
                                        owners.get(&d.entry).map(|&(_, m)| m).unwrap_or(0) + 1;
                                    owners.insert(d.entry, (d.to_shard, moves));
                                    recorder.placement_decision(DecisionRow {
                                        entry: d.entry,
                                        from_shard: d.from_shard,
                                        to_shard: d.to_shard,
                                        writer: d.writer,
                                        epoch: moves,
                                    });
                                    recorder.count("placement.rehomes", 1);
                                }
                                Err(ClusterError::HandoffBusy { .. }) => {
                                    // The shard is mid-promotion or
                                    // mid-move: back off to the next
                                    // epoch rather than hammering it.
                                    recorder.count("placement.busy_backoffs", 1);
                                    break;
                                }
                                Err(_) => break 'engine, // teardown
                            }
                        }
                    }
                })
            });
            // The telemetry actor: closes time-series windows and runs
            // the stall watchdog on exact tick boundaries of the fabric
            // clock. Registered like the placement engine, so in
            // simulation mode the ticks are deterministic events and
            // same-seed runs emit byte-identical frame streams and fire
            // the watchdog at identical virtual times.
            let telemetry_handle = telemetry_cfg.map(|interval| {
                let net = net.clone();
                let recorder = self.recorder.clone();
                let sim = sim.clone();
                let telemetry_done = &telemetry_done;
                let telemetry_stop = &telemetry_stop;
                let alive = &alive;
                s.spawn(move || {
                    let _guard = telemetry_actor.map(|a| sim.as_ref().unwrap().enter(a));
                    let clock = net.clock();
                    let slice = Duration::from_millis(5).min(interval);
                    let mut ticker = Ticker::new(clock.now(), interval);
                    while !telemetry_done.load(Ordering::Relaxed)
                        && alive.iter().any(|a| a.load(Ordering::Relaxed))
                    {
                        if sim.is_some() {
                            // Virtual time is free; the slice bounds how
                            // late past a boundary a tick event can run.
                            clock.sleep(slice);
                        } else {
                            let (lock, cv) = &*telemetry_stop;
                            let stop = lock.lock().unwrap_or_else(|e| e.into_inner());
                            if !*stop {
                                drop(cv.wait_timeout(stop, slice));
                            }
                        }
                        // Drain every boundary the sleep passed; frames
                        // are stamped with the boundary, not the wake.
                        while let Some(t) = ticker.due(clock.now()) {
                            let t_us = t.as_micros();
                            recorder.tick_window(t_us);
                            if !recorder.watchdog_scan(t_us).is_empty() {
                                recorder.blackbox_trigger_at("stall", t_us);
                            }
                        }
                    }
                })
            });
            let mut handles = Vec::new();
            let recorder = &self.recorder;
            for ((i, plat), ep) in self.worker_platforms.iter().enumerate().zip(eps.drain(..)) {
                let def = def.clone();
                let plat = plat.clone();
                let body = &body;
                let alive = &alive;
                let sim = sim.clone();
                let actor = worker_actors[i];
                let session = spaces
                    .iter()
                    .copied()
                    .find(|t| t.contains_rank(i as u32 + 1));
                handles.push(s.spawn(move || {
                    let _guard = actor.map(|a| sim.as_ref().unwrap().enter(a));
                    let info = WorkerInfo {
                        index: i,
                        n_workers,
                        platform: plat.clone(),
                        session,
                    };
                    let gthv = GthvInstance::new(def, plat);
                    let mut client = DsdClient::new(i as u32 + 1, ep, 0, gthv);
                    client.set_directory(directory);
                    client.set_recorder(recorder.clone());
                    client.set_fast_path(fast_path);
                    if let Some(d) = deadline {
                        client.set_recv_deadline(d);
                    }
                    if let Some(n) = max_retries {
                        client.set_max_retries(n);
                    }
                    if let Some(b) = retry_base_opt {
                        client.set_retry_base(b);
                    }
                    let result = body(&mut client, &info);
                    if matches!(result, Err(DsdError::Crashed)) {
                        // Simulated crash: fall silent without signing
                        // off — the home must detect the dead worker.
                        alive[i].store(false, Ordering::Relaxed);
                        return Err(DsdError::Crashed);
                    }
                    // Always join so every home shard can terminate, even
                    // if the body failed.
                    let join = client.join();
                    alive[i].store(false, Ordering::Relaxed);
                    match (result, join) {
                        (Ok(r), Ok((costs, conv, _gthv))) => Ok((r, costs, conv)),
                        (Err(e), _) => Err(e),
                        (_, Err(e)) => Err(e),
                    }
                }));
            }
            if let Some(f) = &sim {
                // Every actor is parked at its entry turnstile: start the
                // deterministic schedule.
                f.begin();
            }
            for (i, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(Ok(triple)) => results[i] = Some(triple),
                    Ok(Err(e)) => worker_errors.push((i, e)),
                    Err(p) => {
                        first_error.get_or_insert(ClusterError::Panic(panic_msg(p)));
                    }
                }
            }
            if let Some(h) = ctl_handle {
                if let Err(p) = h.join() {
                    first_error.get_or_insert(ClusterError::Panic(panic_msg(p)));
                }
            }
            pump_done.store(true, Ordering::Relaxed);
            placement_done.store(true, Ordering::Relaxed);
            telemetry_done.store(true, Ordering::Relaxed);
            {
                let (lock, cv) = &telemetry_stop;
                *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
                cv.notify_all();
            }
            if let Some(h) = pump_handle {
                let _ = h.join();
            }
            if let Some(h) = placement_handle {
                if let Err(p) = h.join() {
                    first_error.get_or_insert(ClusterError::Panic(panic_msg(p)));
                }
            }
            if let Some(h) = telemetry_handle {
                if let Err(p) = h.join() {
                    first_error.get_or_insert(ClusterError::Panic(panic_msg(p)));
                }
            }
            for (shard, h) in home_handles {
                match h.join() {
                    Ok(Ok(out)) => home_outs[shard as usize].push(out),
                    Ok(Err(e)) => {
                        home_error.get_or_insert(ClusterError::from(e));
                    }
                    Err(p) => {
                        first_error.get_or_insert(ClusterError::Panic(panic_msg(p)));
                    }
                }
            }
        });

        // Error priority: panics, then a lost worker (the root cause,
        // reported over the secondary errors it induces in survivors),
        // then other worker errors, then home errors.
        if first_error.is_none() {
            let lost = worker_errors
                .iter()
                .find_map(|(_, e)| match e {
                    DsdError::WorkerLost {
                        rank,
                        heard_age,
                        lease,
                    } => Some((*rank, *heard_age, *lease)),
                    _ => None,
                })
                .or_else(|| {
                    worker_errors.iter().find_map(|(i, e)| match e {
                        DsdError::Crashed => Some((*i as u32 + 1, None, None)),
                        _ => None,
                    })
                });
            if let Some((rank, heard_age, lease)) = lost {
                self.recorder
                    .blackbox_trigger_once("worker-lost", rank as u64);
                first_error = Some(ClusterError::WorkerLost {
                    rank,
                    heard_age,
                    lease,
                });
            } else if let Some((index, error)) = worker_errors.into_iter().next() {
                first_error = Some(ClusterError::Worker { index, error });
            } else {
                first_error = home_error;
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        // Stitch the authoritative view back together. Per shard, the
        // winning instance is the authoritative one with the highest
        // epoch — the original primary when nothing failed over, the
        // promoted standby after a kill or handoff. Shard 0's winner
        // already holds the full initial image, so overlay every other
        // shard's owned slice on top (same platform, so each overlay is
        // a straight memcpy). Home-side costs and conversion stats sum
        // across the shards. Unreplicated, every shard has exactly one
        // authoritative epoch-0 outcome and this is the pre-replica path.
        let mut winners = Vec::with_capacity(directory.n_shards() as usize);
        for (s, outs) in home_outs.into_iter().enumerate() {
            let win = outs
                .into_iter()
                .filter(|o| o.authoritative)
                .max_by_key(|o| o.epoch)
                .ok_or_else(|| {
                    ClusterError::Home(HomeError::Violation(format!(
                        "no authoritative outcome for shard {s}: every instance \
                         was killed or fenced"
                    )))
                })?;
            winners.push(win);
        }
        let residuals: Vec<ResidualReport> = winners.iter().map(|w| w.residual).collect();
        // Adaptive placement may have re-homed entries away from their
        // static modulo shard. Merge every winner's ownership overlay
        // (max per-entry epoch wins, exactly the clients' merge rule) so
        // the overlay step below attributes each entry to its *effective*
        // final owner. Static runs have empty overlays and take the
        // classic modulo path unchanged.
        let mut overrides: std::collections::HashMap<u32, (u32, u32)> =
            std::collections::HashMap::new();
        for w in &winners {
            for &(entry, shard, epoch) in &w.entry_overrides {
                let cur = overrides.get(&entry).map(|&(_, e)| e);
                if cur.is_none_or(|c| epoch > c) {
                    overrides.insert(entry, (shard, epoch));
                }
            }
        }
        let effective_shard = |entry: u32| {
            overrides
                .get(&entry)
                .map(|&(s, _)| s)
                .unwrap_or_else(|| directory.entry_shard(entry))
        };
        let mut winners = winners.into_iter();
        let first = winners.next().expect("at least one shard");
        let (mut final_gthv, mut home_costs, mut home_conv) = (first.gthv, first.costs, first.conv);
        for (i, out) in winners.enumerate() {
            let shard = i as u32 + 1;
            let g = out.gthv;
            let owned: Vec<_> = full_ranges(&g)
                .into_iter()
                .filter(|r| effective_shard(r.entry) == shard)
                .collect();
            let updates = extract_updates(&g, &owned)
                .map_err(|e| ClusterError::Home(HomeError::Update(e)))?;
            let mut scratch = ConversionStats::default();
            apply_batch(&mut final_gthv, &updates, &mut scratch)
                .map_err(|e| ClusterError::Home(HomeError::Update(e)))?;
            home_costs.merge(&out.costs);
            home_conv.merge(&out.conv);
        }
        let mut out_results = Vec::with_capacity(n_workers);
        let mut worker_costs = Vec::with_capacity(n_workers);
        let mut worker_conv = Vec::with_capacity(n_workers);
        for r in results {
            let (r, c, v) = r.expect("worker finished");
            out_results.push(r);
            worker_costs.push(c);
            worker_conv.push(v);
        }
        Ok(ClusterOutcome {
            results: out_results,
            worker_costs,
            worker_conv,
            home_costs,
            home_conv,
            final_gthv,
            net_stats: net.stats(),
            migration_stats: MigrationStats::default(),
            obs: self.recorder.snapshot(),
            residuals,
        })
    }

    /// Run registered [`Computation`]s with a migration schedule. Worker
    /// `i` starts from `starts[i]` on its configured platform; each
    /// matching [`MigrationEvent`] is honoured at the worker's next
    /// adaptation point (capture → pack → receiver-makes-right restore →
    /// DSD resync). Returns the final thread states.
    ///
    /// With an adaptive [`Self::placement`] policy and an *empty*
    /// schedule, the thread-migration leg of the adaptive loop engages:
    /// a schedule is derived deterministically from the configured
    /// platforms' `cpu_factor`s ([`crate::placement::plan_thread_moves`]
    /// with a 2× slowness threshold), repacking every worker stuck on a
    /// badly slow simulated CPU onto the fastest configured platform at
    /// its first adaptation point. Pass an explicit schedule to keep
    /// full manual control.
    pub fn run_adaptive(
        self,
        registry: &ProgramRegistry<DsdClient>,
        starts: Vec<ThreadState>,
        schedule: &[MigrationEvent],
    ) -> Result<ClusterOutcome<ThreadState>, ClusterError> {
        if starts.len() != self.worker_platforms.len() {
            return Err(ClusterError::Config(format!(
                "{} starts for {} workers",
                starts.len(),
                self.worker_platforms.len()
            )));
        }
        if !matches!(self.fabric, FabricMode::Threads) {
            return Err(ClusterError::Config(
                "run_adaptive is not supported in simulation mode; use fabric(FabricMode::Threads)"
                    .into(),
            ));
        }
        let platforms = self.worker_platforms.clone();
        let schedule = if schedule.is_empty() && self.placement.is_adaptive() {
            let factors: Vec<f64> = platforms.iter().map(|p| p.cpu_factor).collect();
            crate::placement::plan_thread_moves(&factors, 2.0)
                .into_iter()
                .map(|m| MigrationEvent {
                    worker: m.thread_rank as usize,
                    after_steps: m.after_sweeps as u64,
                    to_platform: platforms[m.to_platform].clone(),
                })
                .collect()
        } else {
            schedule.to_vec()
        };
        let registry_ref = registry;
        let mig_stats = parking_lot::Mutex::new(MigrationStats::default());
        let mut outcome = {
            let starts_cell = parking_lot::Mutex::new(
                starts
                    .into_iter()
                    .map(Some)
                    .collect::<Vec<Option<ThreadState>>>(),
            );
            let mig_ref = &mig_stats;
            self.run(move |client, info| {
                let start = starts_cell.lock()[info.index]
                    .take()
                    .expect("start state taken once");
                run_one_adaptive(
                    client,
                    info,
                    registry_ref,
                    start,
                    &platforms[info.index],
                    &schedule,
                    mig_ref,
                )
            })?
        };
        outcome.migration_stats = mig_stats.into_inner();
        Ok(outcome)
    }
}

#[allow(clippy::too_many_arguments)]
fn run_one_adaptive(
    client: &mut DsdClient,
    info: &WorkerInfo,
    registry: &ProgramRegistry<DsdClient>,
    start: ThreadState,
    start_platform: &Platform,
    schedule: &[MigrationEvent],
    mig_stats: &parking_lot::Mutex<MigrationStats>,
) -> Result<ThreadState, DsdError> {
    let mut comp: Box<dyn Computation<DsdClient>> = registry
        .instantiate(start, start_platform.clone())
        .map_err(|_| DsdError::Unexpected("instantiate"))?;
    let mut my_events: Vec<&MigrationEvent> =
        schedule.iter().filter(|e| e.worker == info.index).collect();
    my_events.sort_by_key(|e| e.after_steps);
    let mut next_event = 0usize;
    let mut steps: u64 = 0;
    loop {
        // Honour any due migration at this adaptation point.
        while next_event < my_events.len() && my_events[next_event].after_steps <= steps {
            let ev = my_events[next_event];
            next_event += 1;
            let rec = client.recorder().clone();
            let rank = client.thread_rank();
            let t0 = Instant::now();
            let image = pack_state_observed(&comp.capture(), &rec, rank);
            let pack = t0.elapsed();
            let restore_start_us = rec.now_us();
            let t1 = Instant::now();
            comp = registry
                .restore(&image, ev.to_platform.clone())
                .map_err(|_| DsdError::Unexpected("restore"))?;
            let restore = t1.elapsed();
            rec.span_at(
                rank,
                EventKind::MigrationRestore,
                restore_start_us,
                restore.as_micros() as u64,
                image.bytes.len() as u64,
                steps,
                "",
            );
            rec.count("mig.migrations", 1);
            rec.count("mig.image_bytes", image.bytes.len() as u64);
            client.rehost(ev.to_platform.clone())?;
            let mut m = mig_stats.lock();
            m.migrations += 1;
            m.pack_time += pack;
            m.restore_time += restore;
            m.image_bytes += image.bytes.len() as u64;
        }
        match comp.step(client) {
            StepStatus::Yield => {
                steps += 1;
            }
            StepStatus::Done => break,
        }
    }
    Ok(comp.capture())
}

fn panic_msg(p: Box<dyn std::any::Any + Send>) -> String {
    p.downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic".into())
}
