//! Simulated heterogeneous cluster orchestration.
//!
//! A cluster is a home node (running the stub service that owns the
//! authoritative `GThV`) plus worker nodes, each with its own platform
//! specification and its own native-representation copy of the shared
//! structure. Workers run as OS threads connected by the simulated
//! network — nothing crosses a node boundary except serialized bytes.
//!
//! Two execution modes:
//! * [`ClusterBuilder::run`] — static placement, SPMD-style: every worker
//!   executes the same closure against its [`DsdClient`];
//! * [`ClusterBuilder::run_adaptive`] — workers execute
//!   [`Computation`]s from a [`ProgramRegistry`] and a migration schedule
//!   moves threads between (possibly heterogeneous) platforms at their
//!   adaptation points, exercising the full MigThread pack → ship →
//!   receiver-makes-right → resync pipeline mid-computation.
//!
//! A note on what "node" means here: a node is a platform specification
//! plus an address space holding data in that platform's representation.
//! When a thread migrates, the hosting OS thread survives but everything
//! platform-visible — byte order, type sizes, page size, the protected
//! address space — is torn down and rebuilt for the destination platform,
//! which is exactly the state a real migration would transfer.

use crate::client::{DsdClient, DsdError};
use crate::costs::CostBreakdown;
use crate::directory::Directory;
use crate::gthv::{GthvDef, GthvInstance};
use crate::home::{HomeConfig, HomeError, HomeShard};
use crate::ids::{BarrierId, CondId, LockId};
use crate::protocol::DsdMsg;
use crate::update::{apply_batch, extract_updates, full_ranges};
use hdsm_migthread::compute::{Computation, ProgramRegistry, StepStatus};
use hdsm_migthread::packfmt::{pack_state_observed, MigrateError};
use hdsm_migthread::state::ThreadState;
use hdsm_net::endpoint::Network;
use hdsm_net::message::MsgKind;
use hdsm_net::stats::{NetConfig, NetStats};
use hdsm_net::FaultPlan;
use hdsm_obs::{EventKind, ObsSnapshot, Recorder};
use hdsm_platform::spec::{Platform, PlatformSpec};
use hdsm_tags::convert::ConversionStats;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Errors from cluster orchestration.
#[derive(Debug)]
pub enum ClusterError {
    /// The builder was incomplete.
    Config(String),
    /// The home service failed.
    Home(HomeError),
    /// A worker failed.
    Worker {
        /// Worker index.
        index: usize,
        /// The failure.
        error: DsdError,
    },
    /// A migration failed.
    Migration(MigrateError),
    /// A worker thread panicked.
    Panic(String),
    /// A worker crashed or was partitioned away and the home's failure
    /// detector declared it dead; the run could not complete normally.
    WorkerLost {
        /// Thread rank of the lost worker.
        rank: u32,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Config(s) => write!(f, "bad cluster config: {s}"),
            ClusterError::Home(e) => write!(f, "home: {e}"),
            ClusterError::Worker { index, error } => write!(f, "worker {index}: {error}"),
            ClusterError::Migration(e) => write!(f, "migration: {e}"),
            ClusterError::Panic(s) => write!(f, "worker panicked: {s}"),
            ClusterError::WorkerLost { rank } => write!(f, "worker rank {rank} lost"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Home(e) => Some(e),
            ClusterError::Worker { error, .. } => Some(error),
            ClusterError::Migration(e) => Some(e),
            ClusterError::Config(_) | ClusterError::Panic(_) | ClusterError::WorkerLost { .. } => {
                None
            }
        }
    }
}

impl From<HomeError> for ClusterError {
    fn from(e: HomeError) -> ClusterError {
        ClusterError::Home(e)
    }
}

impl From<MigrateError> for ClusterError {
    fn from(e: MigrateError) -> ClusterError {
        ClusterError::Migration(e)
    }
}

/// Per-worker identity handed to the SPMD body.
#[derive(Debug, Clone)]
pub struct WorkerInfo {
    /// Worker index, `0..n_workers`.
    pub index: usize,
    /// Total workers.
    pub n_workers: usize,
    /// The worker's (initial) platform.
    pub platform: Platform,
}

/// Statistics about migrations performed during an adaptive run.
#[derive(Debug, Clone, Copy, Default)]
pub struct MigrationStats {
    /// Number of migrations executed.
    pub migrations: u64,
    /// Time spent packing states.
    pub pack_time: Duration,
    /// Time spent restoring (receiver-makes-right) states.
    pub restore_time: Duration,
    /// Total image bytes shipped.
    pub image_bytes: u64,
}

/// Everything a finished cluster run reports.
#[derive(Debug)]
pub struct ClusterOutcome<R> {
    /// Per-worker results, in worker order.
    pub results: Vec<R>,
    /// Per-worker Eq. 1 cost breakdowns.
    pub worker_costs: Vec<CostBreakdown>,
    /// Per-worker conversion statistics.
    pub worker_conv: Vec<ConversionStats>,
    /// Home-side cost breakdown.
    pub home_costs: CostBreakdown,
    /// Home-side conversion statistics.
    pub home_conv: ConversionStats,
    /// The final authoritative shared structure.
    pub final_gthv: GthvInstance,
    /// Network traffic statistics.
    pub net_stats: NetStats,
    /// Migration statistics (zero for static runs).
    pub migration_stats: MigrationStats,
    /// Observability snapshot, when the cluster ran with
    /// [`ClusterBuilder::obs`] wired to an enabled recorder.
    pub obs: Option<ObsSnapshot>,
}

/// One scheduled migration for [`ClusterBuilder::run_adaptive`].
#[derive(Debug, Clone)]
pub struct MigrationEvent {
    /// Worker index to move.
    pub worker: usize,
    /// Migrate when the worker has completed this many steps.
    pub after_steps: u64,
    /// Destination platform.
    pub to_platform: Platform,
}

/// Home-side initialisation closure.
type InitFn = Box<dyn FnOnce(&mut GthvInstance) + Send>;

/// Builder for a simulated cluster.
pub struct ClusterBuilder {
    def: Option<GthvDef>,
    home_platform: Platform,
    worker_platforms: Vec<Platform>,
    n_locks: u32,
    n_barriers: u32,
    n_conds: u32,
    shards: u32,
    net_config: NetConfig,
    init: Option<InitFn>,
    recv_deadline: Option<Duration>,
    lease: Option<Duration>,
    max_retries: Option<u32>,
    retry_base: Option<Duration>,
    recorder: Recorder,
    fast_path: bool,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterBuilder {
    /// Start building; the home node defaults to the paper's Linux/x86.
    pub fn new() -> ClusterBuilder {
        ClusterBuilder {
            def: None,
            home_platform: PlatformSpec::linux_x86(),
            worker_platforms: Vec::new(),
            n_locks: 1,
            n_barriers: 1,
            n_conds: 0,
            shards: 1,
            net_config: NetConfig::instant(),
            init: None,
            recv_deadline: None,
            lease: Some(Duration::from_secs(30)),
            max_retries: None,
            retry_base: None,
            recorder: Recorder::disabled(),
            fast_path: true,
        }
    }

    /// Select the hot-path implementation for every node in the cluster:
    /// compiled conversion plans, the grouped v2 wire format and the
    /// parallel diff scan (default `true`). `false` forces the original
    /// tag-interpreting slow paths — the differential suite runs both and
    /// requires byte-identical final state.
    pub fn fast_path(mut self, fast: bool) -> Self {
        self.fast_path = fast;
        self
    }

    /// Observe the run: the recorder is wired through the fabric, every
    /// worker client and the home service, and the finished outcome
    /// carries [`ClusterOutcome::obs`]. Pass [`Recorder::disabled`] (the
    /// default) for a counter-free no-op.
    pub fn obs(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Bound every worker's blocking protocol receive (defence against a
    /// wedged home service — mainly for negative tests).
    pub fn recv_deadline(mut self, d: Duration) -> Self {
        self.recv_deadline = Some(d);
        self
    }

    /// Liveness lease (default 30 s): a worker silent for this long is
    /// declared dead by the home — its locks are reclaimed and in-flight
    /// barriers fail with [`ClusterError::WorkerLost`] instead of
    /// hanging. Each worker gets a heartbeat pump beating at `lease / 4`.
    pub fn lease(mut self, d: Duration) -> Self {
        self.lease = Some(d);
        self
    }

    /// Disable failure detection (and the heartbeat pumps) entirely.
    pub fn no_lease(mut self) -> Self {
        self.lease = None;
        self
    }

    /// Retransmissions each client attempts per request before waiting
    /// out its deadline (default 10).
    pub fn max_retries(mut self, n: u32) -> Self {
        self.max_retries = Some(n);
        self
    }

    /// First client retransmission delay, doubling per attempt
    /// (default 250 ms).
    pub fn retry_base(mut self, d: Duration) -> Self {
        self.retry_base = Some(d);
        self
    }

    /// Inject faults into the simulated fabric (drops, duplicates,
    /// reorders, jitter — see [`FaultPlan`]). The home automatically
    /// lingers after shutdown to answer retransmissions.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.net_config.fault_plan = Some(plan);
        self
    }

    /// Set the shared structure definition (required).
    pub fn gthv(mut self, def: GthvDef) -> Self {
        self.def = Some(def);
        self
    }

    /// Set the home node's platform (authoritative copy representation).
    pub fn home(mut self, platform: Platform) -> Self {
        self.home_platform = platform;
        self
    }

    /// Add a worker node on `platform`.
    pub fn worker(mut self, platform: Platform) -> Self {
        self.worker_platforms.push(platform);
        self
    }

    /// Number of distributed mutexes (default 1).
    pub fn locks(mut self, n: u32) -> Self {
        self.n_locks = n;
        self
    }

    /// Number of barriers (default 1).
    pub fn barriers(mut self, n: u32) -> Self {
        self.n_barriers = n;
        self
    }

    /// Number of condition variables (default 0).
    pub fn conds(mut self, n: u32) -> Self {
        self.n_conds = n;
        self
    }

    /// Shard the home service `n` ways (default 1). Index-table entries,
    /// mutexes, barriers and condition variables are partitioned across
    /// independent [`HomeShard`]s by the deterministic [`Directory`]
    /// (`id % n`); each shard owns authoritative bytes, update log and
    /// sequence horizon for its slice only. `shards(1)` is the classic
    /// single-home layout and produces a byte-identical message sequence.
    pub fn shards(mut self, n: u32) -> Self {
        self.shards = n;
        self
    }

    /// Typed handles for the configured mutexes, in index order. Mint
    /// these once after [`ClusterBuilder::locks`] and hand them to the
    /// workers — the session API on [`DsdClient`] only accepts the
    /// matching handle kind.
    pub fn lock_ids(&self) -> Vec<LockId> {
        (0..self.n_locks).map(LockId::new).collect()
    }

    /// Typed handles for the configured barriers, in index order.
    pub fn barrier_ids(&self) -> Vec<BarrierId> {
        (0..self.n_barriers).map(BarrierId::new).collect()
    }

    /// Typed handles for the configured condition variables, in index
    /// order.
    pub fn cond_ids(&self) -> Vec<CondId> {
        (0..self.n_conds).map(CondId::new).collect()
    }

    /// Network cost model (default: instant, for tests).
    pub fn net(mut self, config: NetConfig) -> Self {
        self.net_config = config;
        self
    }

    /// Initialise the shared structure at the home node before workers
    /// start; the contents reach each worker with its first acquire.
    pub fn init<F: FnOnce(&mut GthvInstance) + Send + 'static>(mut self, f: F) -> Self {
        self.init = Some(Box::new(f));
        self
    }

    fn take_parts(
        &mut self,
    ) -> Result<(GthvDef, Network, Vec<hdsm_net::endpoint::Endpoint>), ClusterError> {
        let def = self
            .def
            .take()
            .ok_or_else(|| ClusterError::Config("gthv definition missing".into()))?;
        if self.worker_platforms.is_empty() {
            return Err(ClusterError::Config("no workers".into()));
        }
        if self.shards == 0 {
            return Err(ClusterError::Config(
                "at least one home shard required".into(),
            ));
        }
        let (net, eps) = Network::new_observed(
            self.worker_platforms.len() + self.shards as usize,
            self.net_config.clone(),
            self.recorder.clone(),
        );
        Ok((def, net, eps))
    }

    /// Run an SPMD body on every worker. The body gets the worker's DSD
    /// client and identity; `mth_join` is called automatically when the
    /// body returns.
    pub fn run<R, F>(mut self, body: F) -> Result<ClusterOutcome<R>, ClusterError>
    where
        R: Send,
        F: Fn(&mut DsdClient, &WorkerInfo) -> Result<R, DsdError> + Send + Sync,
    {
        let (def, net, mut eps) = self.take_parts()?;
        let directory = Directory::new(self.shards);
        let shard_eps: Vec<hdsm_net::endpoint::Endpoint> =
            eps.drain(..self.shards as usize).collect();
        let n_workers = self.worker_platforms.len();
        let participants: Vec<u32> = (1..=n_workers as u32).collect();
        let retry_base = self.retry_base.unwrap_or(Duration::from_millis(250));
        // With a faulty fabric the final Shutdown can be dropped; the home
        // sticks around long enough to answer Join retransmissions.
        let linger = if self.net_config.fault_plan.is_some() {
            (retry_base * 16).min(Duration::from_secs(2))
        } else {
            Duration::ZERO
        };
        // The obs report keys its shard-utilization section off this gauge.
        self.recorder.gauge("cluster.shards", self.shards as i64);
        let mut init = self.init.take();
        // With one shard the initialiser runs directly on the home
        // instance, exactly the pre-shard path. With several, it runs once
        // on a seed instance and its raw bytes replay into every shard —
        // all homes share one platform, so an untracked byte copy
        // reproduces the closure's effect exactly, and each shard then
        // logs only the slice of the structure it owns.
        let init_image: Option<Vec<u8>> = if directory.n_shards() > 1 {
            init.take().map(|f| {
                let mut seed = GthvInstance::new(def.clone(), self.home_platform.clone());
                f(&mut seed);
                seed.space().raw().to_vec()
            })
        } else {
            None
        };
        let mut shard_services = Vec::with_capacity(directory.n_shards() as usize);
        for (s, ep) in shard_eps.into_iter().enumerate() {
            let mut home = HomeShard::new(
                GthvInstance::new(def.clone(), self.home_platform.clone()),
                ep,
                HomeConfig {
                    n_locks: self.n_locks,
                    n_barriers: self.n_barriers,
                    n_conds: self.n_conds,
                    participants: participants.clone(),
                    lease: self.lease,
                    linger,
                    recorder: self.recorder.clone(),
                    fast_path: self.fast_path,
                    shard: s as u32,
                    directory,
                },
            );
            if let Some(image) = &init_image {
                home.init_with(|g| {
                    let base = g.space().base();
                    g.space_mut()
                        .write_untracked(base, image)
                        .expect("init image matches structure size");
                });
            } else if let Some(f) = init.take() {
                home.init_with(f);
            }
            shard_services.push(home);
        }

        let mut results: Vec<Option<(R, CostBreakdown, ConversionStats)>> =
            (0..n_workers).map(|_| None).collect();
        let mut home_outs: Vec<Option<(GthvInstance, CostBreakdown, ConversionStats)>> =
            (0..directory.n_shards()).map(|_| None).collect();
        let deadline = self.recv_deadline;
        let max_retries = self.max_retries;
        let retry_base_opt = self.retry_base;
        let fast_path = self.fast_path;
        let mut first_error: Option<ClusterError> = None;
        let mut home_error: Option<ClusterError> = None;
        let mut worker_errors: Vec<(usize, DsdError)> = Vec::new();
        // Per-worker liveness flags for the heartbeat pump: a crashed
        // worker stops beating so the home's lease detector notices.
        let alive: Vec<AtomicBool> = (0..n_workers).map(|_| AtomicBool::new(true)).collect();
        let pump_done = AtomicBool::new(false);

        std::thread::scope(|s| {
            let home_handles: Vec<_> = shard_services
                .into_iter()
                .map(|home| s.spawn(move || home.run()))
                .collect();
            // Heartbeat pump: beats on behalf of every live worker at a
            // quarter of the lease, so blocked-but-alive workers (e.g.
            // waiting in a barrier) are never declared dead. Every shard
            // runs its own lease table, so each beat fans out to all of
            // them.
            let pump_handle = self.lease.map(|lease| {
                let net = net.clone();
                let alive = &alive;
                let pump_done = &pump_done;
                let interval = (lease / 4).max(Duration::from_millis(5));
                s.spawn(move || {
                    let mut last_beat = Instant::now();
                    while !pump_done.load(Ordering::Relaxed) {
                        if last_beat.elapsed() >= interval {
                            last_beat = Instant::now();
                            for (i, a) in alive.iter().enumerate() {
                                if a.load(Ordering::Relaxed) {
                                    let rank = i as u32 + 1;
                                    let src = directory.worker_ep(rank);
                                    for dst in directory.shard_eps() {
                                        let payload =
                                            DsdMsg::Heartbeat { rank }.encode_enveloped(0);
                                        let _ = net.send_as(src, dst, MsgKind::Heartbeat, payload);
                                    }
                                }
                            }
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                })
            });
            let mut handles = Vec::new();
            let recorder = &self.recorder;
            for ((i, plat), ep) in self.worker_platforms.iter().enumerate().zip(eps.drain(..)) {
                let def = def.clone();
                let plat = plat.clone();
                let body = &body;
                let alive = &alive;
                handles.push(s.spawn(move || {
                    let info = WorkerInfo {
                        index: i,
                        n_workers,
                        platform: plat.clone(),
                    };
                    let gthv = GthvInstance::new(def, plat);
                    let mut client = DsdClient::new(i as u32 + 1, ep, 0, gthv);
                    client.set_directory(directory);
                    client.set_recorder(recorder.clone());
                    client.set_fast_path(fast_path);
                    if let Some(d) = deadline {
                        client.set_recv_deadline(d);
                    }
                    if let Some(n) = max_retries {
                        client.set_max_retries(n);
                    }
                    if let Some(b) = retry_base_opt {
                        client.set_retry_base(b);
                    }
                    let result = body(&mut client, &info);
                    if matches!(result, Err(DsdError::Crashed)) {
                        // Simulated crash: fall silent without signing
                        // off — the home must detect the dead worker.
                        alive[i].store(false, Ordering::Relaxed);
                        return Err(DsdError::Crashed);
                    }
                    // Always join so every home shard can terminate, even
                    // if the body failed.
                    let join = client.join();
                    alive[i].store(false, Ordering::Relaxed);
                    match (result, join) {
                        (Ok(r), Ok((costs, conv, _gthv))) => Ok((r, costs, conv)),
                        (Err(e), _) => Err(e),
                        (_, Err(e)) => Err(e),
                    }
                }));
            }
            for (i, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(Ok(triple)) => results[i] = Some(triple),
                    Ok(Err(e)) => worker_errors.push((i, e)),
                    Err(p) => {
                        first_error.get_or_insert(ClusterError::Panic(panic_msg(p)));
                    }
                }
            }
            pump_done.store(true, Ordering::Relaxed);
            if let Some(h) = pump_handle {
                let _ = h.join();
            }
            for (sidx, h) in home_handles.into_iter().enumerate() {
                match h.join() {
                    Ok(Ok(out)) => home_outs[sidx] = Some(out),
                    Ok(Err(e)) => {
                        home_error.get_or_insert(ClusterError::from(e));
                    }
                    Err(p) => {
                        first_error.get_or_insert(ClusterError::Panic(panic_msg(p)));
                    }
                }
            }
        });

        // Error priority: panics, then a lost worker (the root cause,
        // reported over the secondary errors it induces in survivors),
        // then other worker errors, then home errors.
        if first_error.is_none() {
            let lost_rank = worker_errors
                .iter()
                .find_map(|(_, e)| match e {
                    DsdError::WorkerLost(r) => Some(*r),
                    _ => None,
                })
                .or_else(|| {
                    worker_errors.iter().find_map(|(i, e)| match e {
                        DsdError::Crashed => Some(*i as u32 + 1),
                        _ => None,
                    })
                });
            if let Some(rank) = lost_rank {
                first_error = Some(ClusterError::WorkerLost { rank });
            } else if let Some((index, error)) = worker_errors.into_iter().next() {
                first_error = Some(ClusterError::Worker { index, error });
            } else {
                first_error = home_error;
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        // Stitch the authoritative view back together: shard 0's instance
        // already holds the full initial image, so overlay every other
        // shard's owned slice on top (same platform, so each overlay is a
        // straight memcpy). Home-side costs and conversion stats sum
        // across the shards. With one shard this is a move, byte-identical
        // to the pre-shard path.
        let mut shard_results = home_outs
            .into_iter()
            .map(|o| o.expect("home shard finished"));
        let (mut final_gthv, mut home_costs, mut home_conv) =
            shard_results.next().expect("at least one shard");
        for (i, (g, c, v)) in shard_results.enumerate() {
            let shard = i as u32 + 1;
            let owned: Vec<_> = full_ranges(&g)
                .into_iter()
                .filter(|r| directory.entry_shard(r.entry) == shard)
                .collect();
            let updates = extract_updates(&g, &owned)
                .map_err(|e| ClusterError::Home(HomeError::Update(e)))?;
            let mut scratch = ConversionStats::default();
            apply_batch(&mut final_gthv, &updates, &mut scratch)
                .map_err(|e| ClusterError::Home(HomeError::Update(e)))?;
            home_costs.merge(&c);
            home_conv.merge(&v);
        }
        let mut out_results = Vec::with_capacity(n_workers);
        let mut worker_costs = Vec::with_capacity(n_workers);
        let mut worker_conv = Vec::with_capacity(n_workers);
        for r in results {
            let (r, c, v) = r.expect("worker finished");
            out_results.push(r);
            worker_costs.push(c);
            worker_conv.push(v);
        }
        Ok(ClusterOutcome {
            results: out_results,
            worker_costs,
            worker_conv,
            home_costs,
            home_conv,
            final_gthv,
            net_stats: net.stats(),
            migration_stats: MigrationStats::default(),
            obs: self.recorder.snapshot(),
        })
    }

    /// Run registered [`Computation`]s with a migration schedule. Worker
    /// `i` starts from `starts[i]` on its configured platform; each
    /// matching [`MigrationEvent`] is honoured at the worker's next
    /// adaptation point (capture → pack → receiver-makes-right restore →
    /// DSD resync). Returns the final thread states.
    pub fn run_adaptive(
        self,
        registry: &ProgramRegistry<DsdClient>,
        starts: Vec<ThreadState>,
        schedule: &[MigrationEvent],
    ) -> Result<ClusterOutcome<ThreadState>, ClusterError> {
        if starts.len() != self.worker_platforms.len() {
            return Err(ClusterError::Config(format!(
                "{} starts for {} workers",
                starts.len(),
                self.worker_platforms.len()
            )));
        }
        let platforms = self.worker_platforms.clone();
        let schedule = schedule.to_vec();
        let registry_ref = registry;
        let mig_stats = parking_lot::Mutex::new(MigrationStats::default());
        let mut outcome = {
            let starts_cell = parking_lot::Mutex::new(
                starts
                    .into_iter()
                    .map(Some)
                    .collect::<Vec<Option<ThreadState>>>(),
            );
            let mig_ref = &mig_stats;
            self.run(move |client, info| {
                let start = starts_cell.lock()[info.index]
                    .take()
                    .expect("start state taken once");
                run_one_adaptive(
                    client,
                    info,
                    registry_ref,
                    start,
                    &platforms[info.index],
                    &schedule,
                    mig_ref,
                )
            })?
        };
        outcome.migration_stats = mig_stats.into_inner();
        Ok(outcome)
    }
}

#[allow(clippy::too_many_arguments)]
fn run_one_adaptive(
    client: &mut DsdClient,
    info: &WorkerInfo,
    registry: &ProgramRegistry<DsdClient>,
    start: ThreadState,
    start_platform: &Platform,
    schedule: &[MigrationEvent],
    mig_stats: &parking_lot::Mutex<MigrationStats>,
) -> Result<ThreadState, DsdError> {
    let mut comp: Box<dyn Computation<DsdClient>> = registry
        .instantiate(start, start_platform.clone())
        .map_err(|_| DsdError::Unexpected("instantiate"))?;
    let mut my_events: Vec<&MigrationEvent> =
        schedule.iter().filter(|e| e.worker == info.index).collect();
    my_events.sort_by_key(|e| e.after_steps);
    let mut next_event = 0usize;
    let mut steps: u64 = 0;
    loop {
        // Honour any due migration at this adaptation point.
        while next_event < my_events.len() && my_events[next_event].after_steps <= steps {
            let ev = my_events[next_event];
            next_event += 1;
            let rec = client.recorder().clone();
            let rank = client.thread_rank();
            let t0 = Instant::now();
            let image = pack_state_observed(&comp.capture(), &rec, rank);
            let pack = t0.elapsed();
            let restore_start_us = rec.now_us();
            let t1 = Instant::now();
            comp = registry
                .restore(&image, ev.to_platform.clone())
                .map_err(|_| DsdError::Unexpected("restore"))?;
            let restore = t1.elapsed();
            rec.span_at(
                rank,
                EventKind::MigrationRestore,
                restore_start_us,
                restore.as_micros() as u64,
                image.bytes.len() as u64,
                steps,
                "",
            );
            rec.count("mig.migrations", 1);
            rec.count("mig.image_bytes", image.bytes.len() as u64);
            client.rehost(ev.to_platform.clone())?;
            let mut m = mig_stats.lock();
            m.migrations += 1;
            m.pack_time += pack;
            m.restore_time += restore;
            m.image_bytes += image.bytes.len() as u64;
        }
        match comp.step(client) {
            StepStatus::Yield => {
                steps += 1;
            }
            StepStatus::Done => break,
        }
    }
    Ok(comp.capture())
}

fn panic_msg(p: Box<dyn std::any::Any + Send>) -> String {
    p.downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic".into())
}
