//! Cost accounting for Eq. 1.
//!
//! `C_share = t_index + t_tag + t_pack + t_unpack + t_conv` (paper §5).
//! Every DSD participant accumulates one of these per phase; the figure
//! harnesses aggregate them per node / per platform pair.

use std::fmt;
use std::iter::Sum;
use std::ops::AddAssign;
use std::time::Duration;

/// The five cost components of data sharing, plus bookkeeping counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostBreakdown {
    /// Mapping writes (twin/diff byte scan + run→index mapping).
    pub t_index: Duration,
    /// Forming application-level tags from indexes (incl. coalescing).
    pub t_tag: Duration,
    /// Packing tag + data frames.
    pub t_pack: Duration,
    /// Unpacking received frames.
    pub t_unpack: Duration,
    /// Applying data: memcpy (homogeneous) or conversion (heterogeneous).
    pub t_conv: Duration,
    /// Updates sent.
    pub updates_sent: u64,
    /// Updates applied.
    pub updates_applied: u64,
    /// Payload bytes shipped.
    pub bytes_sent: u64,
    /// Payload bytes applied.
    pub bytes_applied: u64,
}

impl CostBreakdown {
    /// Total sharing cost (Eq. 1).
    pub fn c_share(&self) -> Duration {
        self.t_index + self.t_tag + self.t_pack + self.t_unpack + self.t_conv
    }

    /// Merge another breakdown into this one.
    pub fn merge(&mut self, other: &CostBreakdown) {
        self.t_index += other.t_index;
        self.t_tag += other.t_tag;
        self.t_pack += other.t_pack;
        self.t_unpack += other.t_unpack;
        self.t_conv += other.t_conv;
        self.updates_sent += other.updates_sent;
        self.updates_applied += other.updates_applied;
        self.bytes_sent += other.bytes_sent;
        self.bytes_applied += other.bytes_applied;
    }

    /// Scale every time component by `factor` — used by the figure
    /// harnesses to model a slower CPU (the paper's 1.28 GHz SPARC vs
    /// 2.4 GHz P4); counters are unchanged. Never used in protocol logic.
    pub fn scaled(&self, factor: f64) -> CostBreakdown {
        let scale = |d: Duration| d.mul_f64(factor);
        CostBreakdown {
            t_index: scale(self.t_index),
            t_tag: scale(self.t_tag),
            t_pack: scale(self.t_pack),
            t_unpack: scale(self.t_unpack),
            t_conv: scale(self.t_conv),
            ..*self
        }
    }

    /// Percentage share of each component of `c_share` (index, tag, pack,
    /// unpack, conv), as in paper Figure 7.
    pub fn percentages(&self) -> [f64; 5] {
        let total = self.c_share().as_secs_f64();
        if total <= 0.0 {
            return [0.0; 5];
        }
        [
            self.t_index.as_secs_f64() / total * 100.0,
            self.t_tag.as_secs_f64() / total * 100.0,
            self.t_pack.as_secs_f64() / total * 100.0,
            self.t_unpack.as_secs_f64() / total * 100.0,
            self.t_conv.as_secs_f64() / total * 100.0,
        ]
    }
}

impl AddAssign<&CostBreakdown> for CostBreakdown {
    fn add_assign(&mut self, other: &CostBreakdown) {
        self.merge(other);
    }
}

impl AddAssign for CostBreakdown {
    fn add_assign(&mut self, other: CostBreakdown) {
        self.merge(&other);
    }
}

impl Sum for CostBreakdown {
    fn sum<I: Iterator<Item = CostBreakdown>>(iter: I) -> CostBreakdown {
        let mut total = CostBreakdown::default();
        for c in iter {
            total.merge(&c);
        }
        total
    }
}

impl<'a> Sum<&'a CostBreakdown> for CostBreakdown {
    fn sum<I: Iterator<Item = &'a CostBreakdown>>(iter: I) -> CostBreakdown {
        let mut total = CostBreakdown::default();
        for c in iter {
            total.merge(c);
        }
        total
    }
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "index {:?} | tag {:?} | pack {:?} | unpack {:?} | conv {:?} | total {:?}",
            self.t_index,
            self.t_tag,
            self.t_pack,
            self.t_unpack,
            self.t_conv,
            self.c_share()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CostBreakdown {
        CostBreakdown {
            t_index: Duration::from_millis(10),
            t_tag: Duration::from_millis(20),
            t_pack: Duration::from_millis(5),
            t_unpack: Duration::from_millis(5),
            t_conv: Duration::from_millis(60),
            updates_sent: 3,
            updates_applied: 2,
            bytes_sent: 100,
            bytes_applied: 50,
        }
    }

    #[test]
    fn c_share_is_sum() {
        assert_eq!(sample().c_share(), Duration::from_millis(100));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.c_share(), Duration::from_millis(200));
        assert_eq!(a.updates_sent, 6);
        assert_eq!(a.bytes_applied, 100);
    }

    #[test]
    fn add_assign_and_sum_match_merge() {
        let mut a = sample();
        a += sample();
        let mut b = sample();
        b += &sample();
        let mut merged = sample();
        merged.merge(&sample());
        assert_eq!(a, merged);
        assert_eq!(b, merged);
        let owned: CostBreakdown = vec![sample(), sample()].into_iter().sum();
        assert_eq!(owned, merged);
        let parts = [sample(), sample()];
        let borrowed: CostBreakdown = parts.iter().sum();
        assert_eq!(borrowed, merged);
    }

    #[test]
    fn percentages_sum_to_100() {
        let p = sample().percentages();
        assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((p[4] - 60.0).abs() < 1e-9);
    }

    #[test]
    fn empty_percentages_are_zero() {
        assert_eq!(CostBreakdown::default().percentages(), [0.0; 5]);
    }

    #[test]
    fn scaling_only_touches_times() {
        let s = sample().scaled(2.0);
        assert_eq!(s.c_share(), Duration::from_millis(200));
        assert_eq!(s.updates_sent, 3);
    }
}
