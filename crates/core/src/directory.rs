//! The home directory: which shard owns what.
//!
//! A sharded DSD partitions the home service into `S` independent
//! [`crate::home::HomeShard`]s. The directory is the *deterministic*
//! function every node evaluates locally to route work — there is no
//! directory server and no lookup traffic:
//!
//! * index-table entry `e` is owned by shard `e % S` (its authoritative
//!   bytes, update log and sequence horizon live there);
//! * mutex `l`, barrier `b` and condition variable `c` are homed
//!   round-robin the same way (`id % S`);
//! * shard `s` listens on endpoint rank `s` (ranks `0..S`); with
//!   replication enabled its warm standby listens at `S + s`; worker
//!   thread rank `r` (ranks start at 1) sits after all home endpoints,
//!   at `S * (1 + R) + r - 1`.
//!
//! With `S == 1` and `R == 0` every function collapses to the
//! single-home layout the rest of the stack grew up with: shard 0 at
//! endpoint 0, worker rank `r` at endpoint `r`.
//!
//! The *epoch* of a shard is not part of the static map: it starts at 0
//! (primary serving) and each promotion or handoff bumps it by one.
//! Clients track observed epochs per shard and re-resolve between the
//! primary and replica endpoint when a fenced shard answers with
//! `ViewChange` — see DESIGN.md §14.

/// Deterministic entry/lock/barrier/cond → shard mapping for a home
/// service sharded `S` ways, with `R` warm standby replicas per shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Directory {
    shards: u32,
    replicas: u32,
}

impl Directory {
    /// Directory over `shards` home shards without replication.
    /// `shards` must be at least 1.
    pub fn new(shards: u32) -> Directory {
        Directory::with_replicas(shards, 0)
    }

    /// Directory over `shards` home shards, each with `replicas` warm
    /// standbys (at most 1 today).
    pub fn with_replicas(shards: u32, replicas: u32) -> Directory {
        assert!(shards >= 1, "a cluster needs at least one home shard");
        assert!(replicas <= 1, "at most one replica per shard is supported");
        Directory { shards, replicas }
    }

    /// The classic single-home layout.
    pub fn single() -> Directory {
        Directory {
            shards: 1,
            replicas: 0,
        }
    }

    /// Number of home shards.
    pub fn n_shards(&self) -> u32 {
        self.shards
    }

    /// Number of warm standby replicas per shard (0 = replication off).
    pub fn n_replicas(&self) -> u32 {
        self.replicas
    }

    /// Shard owning index-table entry `entry`.
    pub fn entry_shard(&self, entry: u32) -> u32 {
        entry % self.shards
    }

    /// Shard homing mutex `lock`.
    pub fn lock_shard(&self, lock: u32) -> u32 {
        lock % self.shards
    }

    /// Shard coordinating barrier `barrier` (arrival fan-in point).
    pub fn barrier_shard(&self, barrier: u32) -> u32 {
        barrier % self.shards
    }

    /// Shard homing condition variable `cond`. `MTh_cond_wait` atomically
    /// releases a mutex and parks, so the client requires
    /// `cond_shard(cond) == lock_shard(lock)` when `S > 1`.
    pub fn cond_shard(&self, cond: u32) -> u32 {
        cond % self.shards
    }

    /// Endpoint rank shard `shard`'s primary listens on.
    pub fn shard_ep(&self, shard: u32) -> u32 {
        debug_assert!(shard < self.shards);
        shard
    }

    /// Endpoint rank shard `shard`'s warm standby listens on. Only
    /// meaningful when `n_replicas() > 0`.
    pub fn replica_ep(&self, shard: u32) -> u32 {
        debug_assert!(shard < self.shards);
        debug_assert!(self.replicas > 0, "replication is off");
        self.shards + shard
    }

    /// Endpoint rank worker thread `rank` (threads rank from 1) sits on.
    pub fn worker_ep(&self, rank: u32) -> u32 {
        debug_assert!(rank >= 1, "thread ranks start at 1");
        self.shards * (1 + self.replicas) + rank - 1
    }

    /// All *primary* shard endpoint ranks.
    pub fn shard_eps(&self) -> impl Iterator<Item = u32> {
        0..self.shards
    }

    /// Every home-service endpoint rank: primaries, then replicas.
    pub fn home_eps(&self) -> impl Iterator<Item = u32> {
        0..self.shards * (1 + self.replicas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_home_layout_is_preserved() {
        let d = Directory::single();
        assert_eq!(d.n_shards(), 1);
        assert_eq!(d.n_replicas(), 0);
        for id in [0u32, 1, 7, 4095, u32::MAX] {
            assert_eq!(d.entry_shard(id), 0);
            assert_eq!(d.lock_shard(id), 0);
        }
        // Worker rank r at endpoint r — exactly the pre-shard layout.
        assert_eq!(d.worker_ep(1), 1);
        assert_eq!(d.worker_ep(5), 5);
        assert_eq!(d.shard_ep(0), 0);
    }

    #[test]
    fn round_robin_covers_every_shard() {
        let d = Directory::new(3);
        assert_eq!(
            (0..6).map(|e| d.entry_shard(e)).collect::<Vec<_>>(),
            [0, 1, 2, 0, 1, 2]
        );
        assert_eq!(d.worker_ep(1), 3);
        assert_eq!(d.worker_ep(2), 4);
        assert_eq!(d.shard_eps().collect::<Vec<_>>(), [0, 1, 2]);
    }

    #[test]
    fn replicated_layout_slots_standbys_between_shards_and_workers() {
        let d = Directory::with_replicas(3, 1);
        // Primaries keep their legacy endpoints, so the modulo routing
        // is untouched by replication.
        assert_eq!(d.shard_ep(2), 2);
        assert_eq!(d.replica_ep(0), 3);
        assert_eq!(d.replica_ep(2), 5);
        // Workers shift up past the replica block.
        assert_eq!(d.worker_ep(1), 6);
        assert_eq!(d.worker_ep(4), 9);
        assert_eq!(d.home_eps().collect::<Vec<_>>(), [0, 1, 2, 3, 4, 5]);
        assert_eq!(d.shard_eps().collect::<Vec<_>>(), [0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one home shard")]
    fn zero_shards_rejected() {
        Directory::new(0);
    }

    #[test]
    #[should_panic(expected = "at most one replica")]
    fn multi_replica_rejected() {
        Directory::with_replicas(2, 2);
    }
}
