//! The shared global structure `GThV`.
//!
//! MigThread's preprocessor "collects all global data into a single
//! structure, GThV" (paper §4); the programmer-facing replacement here is
//! [`GthvDef`], an explicit declaration of that structure. Each node
//! instantiates the definition as a [`GthvInstance`]: the structure laid
//! out in the node's *native representation* inside a write-protected
//! [`AddressSpace`], plus the node's [`IndexTable`].
//!
//! All application access goes through the typed accessors, which emulate
//! plain C loads/stores: writes run through the page-protection check
//! (twin/diff write detection), reads never fault.

use crate::index_table::IndexTable;
use hdsm_memory::space::{AddressSpace, MemError};
use hdsm_platform::ctype::{CType, StructDef, TypeError};
use hdsm_platform::endian::{read_float, read_int, read_uint, write_float, write_int, write_uint};
use hdsm_platform::layout::TypeLayout;
use hdsm_platform::scalar::{ScalarClass, ScalarKind};
use hdsm_platform::spec::Platform;
use hdsm_tags::plan::{PlanCache, RunPlan};
use std::fmt;
use std::sync::Arc;

/// The paper's Table 1 base address; used as the default simulated base.
pub const DEFAULT_BASE: u64 = 0x4005_8000;

/// The shared declaration of the global structure (identical on every
/// node — it is part of the program).
#[derive(Debug, Clone)]
pub struct GthvDef {
    /// The struct definition.
    pub def: Arc<StructDef>,
    /// The struct as a C type.
    pub ty: CType,
    /// Simulated base address for instances.
    pub base: u64,
}

impl GthvDef {
    /// Wrap a struct definition, validating it.
    pub fn new(def: Arc<StructDef>) -> Result<GthvDef, TypeError> {
        let ty = CType::Struct(def.clone());
        ty.validate()?;
        Ok(GthvDef {
            def,
            ty,
            base: DEFAULT_BASE,
        })
    }

    /// Same, with an explicit base address.
    pub fn with_base(def: Arc<StructDef>, base: u64) -> Result<GthvDef, TypeError> {
        let mut d = GthvDef::new(def)?;
        d.base = base;
        Ok(d)
    }

    /// Entry id of a top-level field by name (panics if absent — a typo in
    /// the program, not a runtime condition). Only valid when the field
    /// flattens to a single row (scalar or array-of-scalar).
    pub fn entry_of(&self, field: &str) -> u32 {
        // Entry order equals flattening order; for flat structs (the
        // common case) that is field order.
        let mut entry = 0u32;
        for f in &self.def.fields {
            let leaf_rows = rows_for(&f.ty);
            if f.name == field {
                assert_eq!(
                    leaf_rows, 1,
                    "field {field} flattens to {leaf_rows} rows; address it by path"
                );
                return entry;
            }
            entry += leaf_rows;
        }
        panic!("no field named {field} in {}", self.def.name);
    }
}

fn rows_for(ty: &CType) -> u32 {
    match ty {
        CType::Scalar(_) => 1,
        CType::Array(elem, len) => match &**elem {
            CType::Scalar(_) => 1,
            other => rows_for(other) * (*len as u32),
        },
        CType::Struct(def) => def.fields.iter().map(|f| rows_for(&f.ty)).sum(),
    }
}

/// Errors from typed global-data access.
#[derive(Debug, Clone, PartialEq)]
pub enum GthvError {
    /// Entry id out of range.
    NoSuchEntry(u32),
    /// Element index out of range for the entry.
    ElemOutOfRange {
        /// Entry accessed.
        entry: u32,
        /// Element requested.
        elem: u64,
        /// Elements available.
        count: u64,
    },
    /// Scalar class mismatch (e.g. float accessor on an int entry).
    KindMismatch {
        /// Entry accessed.
        entry: u32,
        /// Actual kind.
        actual: ScalarKind,
    },
    /// Underlying memory error.
    Mem(MemError),
    /// Value not representable on this platform.
    Overflow,
}

impl fmt::Display for GthvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GthvError::NoSuchEntry(e) => write!(f, "no entry {e}"),
            GthvError::ElemOutOfRange { entry, elem, count } => {
                write!(
                    f,
                    "element {elem} out of range for entry {entry} ({count} elements)"
                )
            }
            GthvError::KindMismatch { entry, actual } => {
                write!(f, "entry {entry} is {actual:?}")
            }
            GthvError::Mem(e) => write!(f, "memory: {e}"),
            GthvError::Overflow => write!(f, "value not representable"),
        }
    }
}

impl std::error::Error for GthvError {}

impl From<MemError> for GthvError {
    fn from(e: MemError) -> Self {
        GthvError::Mem(e)
    }
}

/// A node's instantiation of the global structure.
#[derive(Debug)]
pub struct GthvInstance {
    def: GthvDef,
    platform: Platform,
    layout: TypeLayout,
    table: IndexTable,
    space: AddressSpace,
    plans: PlanCache,
}

impl GthvInstance {
    /// Lay out the definition on `platform` and build the index table.
    /// The backing space starts unprotected (initialisation phase).
    pub fn new(def: GthvDef, platform: Platform) -> GthvInstance {
        let layout = TypeLayout::compute(&def.ty, &platform);
        let table = IndexTable::build(&def.ty, def.base, &platform);
        let space = AddressSpace::new(def.base, layout.size as usize, platform.page_size);
        // Compile conversion plans alongside the index table: one slot per
        // entry, primed with the homogeneous identity plan (updates from a
        // like-shaped sender are a memcpy). Heterogeneous senders re-lower
        // lazily on first contact and stay memoized thereafter.
        let mut plans = PlanCache::with_entries(table.rows().len());
        for (i, row) in table.rows().iter().enumerate() {
            plans.prime(
                i,
                row.size,
                platform.endian,
                RunPlan::lower(
                    row.kind.class(),
                    row.size,
                    platform.endian,
                    row.size,
                    platform.endian,
                ),
            );
        }
        GthvInstance {
            def,
            platform,
            layout,
            table,
            space,
            plans,
        }
    }

    /// The shared declaration.
    pub fn def(&self) -> &GthvDef {
        &self.def
    }

    /// This node's platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// This node's layout of the structure.
    pub fn layout(&self) -> &TypeLayout {
        &self.layout
    }

    /// This node's index table.
    pub fn table(&self) -> &IndexTable {
        &self.table
    }

    /// The protected address space (mutable, for the DSD protocol).
    pub fn space_mut(&mut self) -> &mut AddressSpace {
        &mut self.space
    }

    /// The protected address space.
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// The compiled conversion-plan cache (read-only view).
    pub fn plans(&self) -> &PlanCache {
        &self.plans
    }

    /// The compiled conversion-plan cache, for the hot apply path.
    pub fn plans_mut(&mut self) -> &mut PlanCache {
        &mut self.plans
    }

    fn row_checked(
        &self,
        entry: u32,
        elem: u64,
    ) -> Result<&crate::index_table::IndexRow, GthvError> {
        let row = self.table.row(entry).ok_or(GthvError::NoSuchEntry(entry))?;
        if elem >= row.count {
            return Err(GthvError::ElemOutOfRange {
                entry,
                elem,
                count: row.count,
            });
        }
        Ok(row)
    }

    /// Read an integer element.
    pub fn read_int(&self, entry: u32, elem: u64) -> Result<i128, GthvError> {
        let row = self.row_checked(entry, elem)?;
        let bytes = self.space.read(row.elem_addr(elem), row.size as usize)?;
        Ok(match row.kind.class() {
            ScalarClass::Signed => read_int(bytes, self.platform.endian),
            ScalarClass::Unsigned => read_uint(bytes, self.platform.endian) as i128,
            _ => {
                return Err(GthvError::KindMismatch {
                    entry,
                    actual: row.kind,
                })
            }
        })
    }

    /// Write an integer element (tracked: may fault / create a twin).
    pub fn write_int(&mut self, entry: u32, elem: u64, value: i128) -> Result<(), GthvError> {
        let row = self.row_checked(entry, elem)?.clone();
        let mut buf = [0u8; 16];
        let out = &mut buf[..row.size as usize];
        match row.kind.class() {
            ScalarClass::Signed => {
                if !hdsm_platform::endian::fits_int(value, out.len()) {
                    return Err(GthvError::Overflow);
                }
                write_int(value, out, self.platform.endian);
            }
            ScalarClass::Unsigned => {
                if value < 0 || !hdsm_platform::endian::fits_uint(value as u128, out.len()) {
                    return Err(GthvError::Overflow);
                }
                write_uint(value as u128, out, self.platform.endian);
            }
            _ => {
                return Err(GthvError::KindMismatch {
                    entry,
                    actual: row.kind,
                })
            }
        }
        let addr = row.elem_addr(elem);
        self.space.write(addr, &buf[..row.size as usize])?;
        Ok(())
    }

    /// Read a float element.
    pub fn read_float(&self, entry: u32, elem: u64) -> Result<f64, GthvError> {
        let row = self.row_checked(entry, elem)?;
        if row.kind.class() != ScalarClass::Float {
            return Err(GthvError::KindMismatch {
                entry,
                actual: row.kind,
            });
        }
        let bytes = self.space.read(row.elem_addr(elem), row.size as usize)?;
        Ok(read_float(bytes, self.platform.endian))
    }

    /// Write a float element (tracked).
    pub fn write_float(&mut self, entry: u32, elem: u64, value: f64) -> Result<(), GthvError> {
        let row = self.row_checked(entry, elem)?.clone();
        if row.kind.class() != ScalarClass::Float {
            return Err(GthvError::KindMismatch {
                entry,
                actual: row.kind,
            });
        }
        let mut buf = [0u8; 8];
        let out = &mut buf[..row.size as usize];
        write_float(value, out, self.platform.endian);
        let addr = row.elem_addr(elem);
        self.space.write(addr, &buf[..row.size as usize])?;
        Ok(())
    }

    /// Read a pointer element as a logical target `(entry, elem)`.
    pub fn read_ptr(&self, entry: u32, elem: u64) -> Result<Option<(u32, u64)>, GthvError> {
        let row = self.row_checked(entry, elem)?;
        if row.kind != ScalarKind::Ptr {
            return Err(GthvError::KindMismatch {
                entry,
                actual: row.kind,
            });
        }
        let bytes = self.space.read(row.elem_addr(elem), row.size as usize)?;
        let raw = read_uint(bytes, self.platform.endian) as u64;
        if raw == 0 {
            return Ok(None);
        }
        Ok(self.table.locate(raw))
    }

    /// Write a pointer element pointing at `(entry, elem)` of the shared
    /// region (or NULL). The stored value is a *native simulated address*,
    /// exactly like a C pointer; cross-node translation happens in the
    /// update layer via the index table.
    pub fn write_ptr(
        &mut self,
        entry: u32,
        elem: u64,
        target: Option<(u32, u64)>,
    ) -> Result<(), GthvError> {
        let row = self.row_checked(entry, elem)?.clone();
        if row.kind != ScalarKind::Ptr {
            return Err(GthvError::KindMismatch {
                entry,
                actual: row.kind,
            });
        }
        let raw: u64 = match target {
            None => 0,
            Some((te, tel)) => {
                let trow = self.table.row(te).ok_or(GthvError::NoSuchEntry(te))?;
                if tel >= trow.count {
                    return Err(GthvError::ElemOutOfRange {
                        entry: te,
                        elem: tel,
                        count: trow.count,
                    });
                }
                trow.elem_addr(tel)
            }
        };
        if !hdsm_platform::endian::fits_uint(u128::from(raw), row.size as usize) {
            return Err(GthvError::Overflow);
        }
        let mut buf = [0u8; 8];
        let out = &mut buf[..row.size as usize];
        write_uint(u128::from(raw), out, self.platform.endian);
        let addr = row.elem_addr(elem);
        self.space.write(addr, &buf[..row.size as usize])?;
        Ok(())
    }

    /// Bulk-read a run of integer elements (convenience for apps/tests).
    pub fn read_int_run(&self, entry: u32, first: u64, count: u64) -> Result<Vec<i128>, GthvError> {
        (first..first + count)
            .map(|e| self.read_int(entry, e))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsm_platform::ctype::{paper_figure4_struct, StructBuilder};
    use hdsm_platform::spec::PlatformSpec;

    fn figure4_instance(p: Platform) -> GthvInstance {
        GthvInstance::new(GthvDef::new(paper_figure4_struct()).unwrap(), p)
    }

    #[test]
    fn entry_ids_match_fields() {
        let d = GthvDef::new(paper_figure4_struct()).unwrap();
        assert_eq!(d.entry_of("GThP"), 0);
        assert_eq!(d.entry_of("A"), 1);
        assert_eq!(d.entry_of("B"), 2);
        assert_eq!(d.entry_of("C"), 3);
        assert_eq!(d.entry_of("n"), 4);
    }

    #[test]
    #[should_panic(expected = "no field named")]
    fn entry_of_unknown_field_panics() {
        GthvDef::new(paper_figure4_struct()).unwrap().entry_of("Z");
    }

    #[test]
    fn int_accessors_roundtrip_on_be_platform() {
        let mut g = figure4_instance(PlatformSpec::solaris_sparc());
        g.write_int(1, 100, -12345).unwrap();
        assert_eq!(g.read_int(1, 100).unwrap(), -12345);
        // Bytes really are big-endian in the space.
        let row = g.table().row(1).unwrap().clone();
        let raw = g.space().read(row.elem_addr(100), 4).unwrap();
        assert_eq!(raw, (-12345i32).to_be_bytes());
    }

    #[test]
    fn writes_fault_and_dirty_when_protected() {
        let mut g = figure4_instance(PlatformSpec::linux_x86());
        g.space_mut().protect_all();
        g.write_int(1, 0, 7).unwrap();
        assert_eq!(g.space().stats().faults, 1);
        assert_eq!(g.space().dirty_count(), 1);
    }

    #[test]
    fn bounds_and_kind_checks() {
        let mut g = figure4_instance(PlatformSpec::linux_x86());
        assert!(matches!(g.read_int(9, 0), Err(GthvError::NoSuchEntry(9))));
        assert!(matches!(
            g.read_int(1, 56169),
            Err(GthvError::ElemOutOfRange { .. })
        ));
        assert!(matches!(
            g.read_float(1, 0),
            Err(GthvError::KindMismatch { .. })
        ));
        assert!(matches!(
            g.write_int(1, 0, 1i128 << 40),
            Err(GthvError::Overflow)
        ));
    }

    #[test]
    fn float_entries() {
        let def = StructBuilder::new("F")
            .array("xs", ScalarKind::Double, 10)
            .array("ys", ScalarKind::Float, 10)
            .build()
            .unwrap();
        let mut g = GthvInstance::new(GthvDef::new(def).unwrap(), PlatformSpec::solaris_sparc());
        g.write_float(0, 3, 2.5).unwrap();
        g.write_float(1, 3, 0.25).unwrap();
        assert_eq!(g.read_float(0, 3).unwrap(), 2.5);
        assert_eq!(g.read_float(1, 3).unwrap(), 0.25);
    }

    #[test]
    fn pointer_accessors_store_native_addresses() {
        let mut g = figure4_instance(PlatformSpec::linux_x86());
        // GThP = &A[10]
        g.write_ptr(0, 0, Some((1, 10))).unwrap();
        assert_eq!(g.read_ptr(0, 0).unwrap(), Some((1, 10)));
        // Raw stored value is the simulated address of A[10].
        let raw = g.space().read(g.table().row(0).unwrap().addr, 4).unwrap();
        let addr = u32::from_le_bytes(raw.try_into().unwrap()) as u64;
        assert_eq!(addr, g.table().row(1).unwrap().elem_addr(10));
        // NULL
        g.write_ptr(0, 0, None).unwrap();
        assert_eq!(g.read_ptr(0, 0).unwrap(), None);
    }

    #[test]
    fn pointer_to_invalid_target_rejected() {
        let mut g = figure4_instance(PlatformSpec::linux_x86());
        assert!(g.write_ptr(0, 0, Some((9, 0))).is_err());
        assert!(g.write_ptr(0, 0, Some((1, u64::MAX))).is_err());
    }

    #[test]
    fn same_def_different_layout_sizes() {
        let g32 = figure4_instance(PlatformSpec::linux_x86());
        let g64 = figure4_instance(PlatformSpec::solaris_sparc64());
        assert!(g64.layout().size > g32.layout().size);
        assert_eq!(g32.table().rows().len(), g64.table().rows().len());
    }
}
