//! The home node's stub service, shardable across several owners.
//!
//! Paper §3.1/§4: after local threads migrate away, stub threads remain at
//! the home node "for future resource access" — they own the authoritative
//! copy of `GThV`, the lock table and the barrier table, and serve
//! lock/unlock/barrier/join requests from every computing thread.
//!
//! The service is a [`HomeShard`]: one of `S` independent owners between
//! which the [`crate::directory::Directory`] partitions index-table
//! entries, mutexes, barriers and condition variables. Each shard keeps
//! authoritative bytes, update log, sequence horizon, lease table and
//! at-most-once dedup state for *its slice only*, and shards never talk
//! to each other — clients fan released updates out to the owning shards
//! (`UpdateFlush`) before releasing, and pull outstanding updates from
//! every non-granting shard (`UpdateFetch`) after acquiring. With `S == 1`
//! (the default directory) a shard *is* the classic single home service
//! and produces a byte-identical message sequence.
//!
//! Consistency bookkeeping is a sequence-numbered update log: every
//! absorbed [`UpdateRange`] is logged under a global sequence number, and
//! each thread records the highest sequence it has seen. A grant or
//! barrier release ships the *current authoritative bytes* of every range
//! logged after the thread's horizon — so updates naturally batch up for
//! threads that have not synchronized in a while (the paper's Figure 9
//! "batch update" spike is this mechanism at work).

use crate::costs::CostBreakdown;
use crate::directory::Directory;
use crate::gthv::GthvInstance;
use crate::protocol::{DsdMsg, ProtocolError};
use crate::runs::{coalesce, UpdateRange};
use crate::update::{apply_batch_mode, extract_updates, full_ranges, UpdateError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use hdsm_net::endpoint::{Endpoint, NetError};
use hdsm_net::message::{Message, MsgKind};
use hdsm_net::{FabricClock, FabricInstant};
use hdsm_obs::{EventKind, OpCtx, OpKind, Recorder};
use hdsm_tags::convert::ConversionStats;
use hdsm_tags::wire::{pack_batch, unpack_batch};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::tenant::{ResidualReport, TenantSpace};

/// Configuration of the home service.
#[derive(Debug, Clone)]
pub struct HomeConfig {
    /// Number of distributed mutexes.
    pub n_locks: u32,
    /// Number of barriers.
    pub n_barriers: u32,
    /// Number of condition variables.
    pub n_conds: u32,
    /// Thread ranks that will participate (barriers wait for all of them;
    /// the program ends when all of them join).
    pub participants: Vec<u32>,
    /// Liveness lease: a participant that has neither joined nor been
    /// heard from (any message, including heartbeats) for this long is
    /// declared dead — its locks are reclaimed and blocked barrier
    /// entrants receive [`DsdMsg::WorkerLost`]. `None` disables failure
    /// detection (the service blocks forever, pre-reliability behaviour).
    pub lease: Option<Duration>,
    /// How long the service keeps answering retransmissions after the
    /// final shutdown broadcast, so clients whose last reply was dropped
    /// by a faulty fabric can still complete.
    pub linger: Duration,
    /// Observability hook for home-side spans (absorb/extract timing,
    /// lease expiries). Disabled by default.
    pub recorder: Recorder,
    /// Use the compiled-plan apply path and the grouped v2 wire format
    /// (default). The differential suite turns this off to compare against
    /// the original slow paths.
    pub fast_path: bool,
    /// Which shard of the home service this instance is (`0..S`).
    pub shard: u32,
    /// The deterministic entry/lock/barrier → shard partition shared by
    /// the whole cluster. Defaults to the single-home layout.
    pub directory: Directory,
    /// Endpoint of this shard's warm standby. Set on a *primary* when
    /// replication is on: every deduplicated client request is relayed
    /// there before it is processed, so the standby replays the identical
    /// sequence against shadow state.
    pub replica_ep: Option<u32>,
    /// Endpoint of this shard's primary. Set on a *replica*: the instance
    /// starts as a mute shadow, drops direct client traffic, and promotes
    /// itself (epoch + 1) when the primary goes silent past the lease or
    /// its endpoint dies.
    pub primary_ep: Option<u32>,
    /// Cooperative kill switch for fault injection: when the flag flips,
    /// the shard abandons its loop mid-run (recording a `ShardKill`
    /// event) and drops its endpoint, exactly like a crashed process.
    pub kill: Option<Arc<AtomicBool>>,
    /// Multi-session tenancy: the sessions sharing this shard pool, with
    /// their rank and synchronization-id slices. Empty (the default) is
    /// classic single-session mode with byte-identical wire behaviour.
    pub sessions: Vec<TenantSpace>,
    /// An adaptive placement loop may re-home entries through this shard
    /// mid-run. Forces the periodic loop tick even without a lease or
    /// replica, so an in-flight `EntryState` offer is retransmitted
    /// instead of blocking forever in `recv`.
    pub adaptive: bool,
}

impl Default for HomeConfig {
    fn default() -> Self {
        HomeConfig {
            n_locks: 1,
            n_barriers: 1,
            n_conds: 0,
            participants: Vec::new(),
            lease: None,
            linger: Duration::ZERO,
            recorder: Recorder::disabled(),
            fast_path: true,
            shard: 0,
            directory: Directory::single(),
            replica_ep: None,
            primary_ep: None,
            kill: None,
            sessions: Vec::new(),
            adaptive: false,
        }
    }
}

/// Whether a [`HomeShard`] instance serves clients or shadows a primary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Primary,
    Replica,
}

/// What a finished [`HomeShard::run`] hands back: the instance and cost
/// books as before, plus the epoch the shard ended on and whether its
/// state is *authoritative* — `false` for a shadow replica that was never
/// promoted, a deposed/fenced primary, a drained handoff source, or a
/// killed shard. With replication off the outcome is always
/// `authoritative` at epoch 0, matching the pre-failover contract.
pub struct HomeRunOutcome {
    /// The shard's final instance (authoritative only for its slice).
    pub gthv: GthvInstance,
    /// Home-side share-operation cost breakdown.
    pub costs: CostBreakdown,
    /// Home-side conversion statistics.
    pub conv: ConversionStats,
    /// The epoch the shard last served under (0 = never failed over).
    pub epoch: u32,
    /// Is this instance the shard's authoritative survivor?
    pub authoritative: bool,
    /// State still held for closed-session ranks at loop exit (tenancy
    /// hygiene; always clean in classic mode, asserted clean by the
    /// churn soak).
    pub residual: ResidualReport,
    /// Per-entry ownership overrides this shard learned during the run:
    /// `(entry, owning shard, ownership epoch)` rows, sorted by entry.
    /// Empty unless the placement engine re-homed entries. The cluster's
    /// final stitch resolves conflicting rows by highest epoch.
    pub entry_overrides: Vec<(u32, u32, u32)>,
}

/// Errors surfaced by the home service loop.
#[derive(Debug)]
pub enum HomeError {
    /// Transport failure.
    Net(NetError),
    /// Malformed message.
    Protocol(ProtocolError),
    /// Update application failed.
    Update(UpdateError),
    /// Protocol violation (e.g. unlocking a mutex the thread doesn't hold).
    Violation(String),
}

impl fmt::Display for HomeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HomeError::Net(e) => write!(f, "net: {e}"),
            HomeError::Protocol(e) => write!(f, "protocol: {e}"),
            HomeError::Update(e) => write!(f, "update: {e}"),
            HomeError::Violation(s) => write!(f, "protocol violation: {s}"),
        }
    }
}

impl std::error::Error for HomeError {}

impl From<NetError> for HomeError {
    fn from(e: NetError) -> Self {
        HomeError::Net(e)
    }
}
impl From<ProtocolError> for HomeError {
    fn from(e: ProtocolError) -> Self {
        HomeError::Protocol(e)
    }
}
impl From<UpdateError> for HomeError {
    fn from(e: UpdateError) -> Self {
        HomeError::Update(e)
    }
}

/// Writer id used for home-side initialisation log entries.
const HOME_WRITER: u32 = u32::MAX;

#[derive(Debug, Default)]
struct LockState {
    holder: Option<u32>,
    waiters: VecDeque<u32>,
}

#[derive(Debug, Default)]
struct BarrierState {
    entered: Vec<u32>,
}

#[derive(Debug, Default)]
struct CondState {
    /// Parked threads with the mutex each must re-acquire on wake.
    waiters: VecDeque<(u32, u32)>,
}

/// In-flight per-entry re-homing at the *source* shard: ownership has
/// already flipped in `entry_home` (and the log rows for the entry were
/// purged), but the target has not yet acknowledged installation — every
/// client-path message is deferred until it does, closing the window in
/// which neither shard could serve the entry's pre-move updates.
#[derive(Debug)]
struct EntryHandoffState {
    /// The entry being re-homed.
    entry: u32,
    /// Endpoint of the admin that requested the move (gets `EntryDone`).
    admin_ep: u32,
    /// The shard gaining ownership.
    to_shard: u32,
    /// The new ownership epoch (strictly above any previous epoch for
    /// this entry, so late/duplicate rows lose max-epoch-wins merges).
    epoch: u32,
    /// Packed authoritative contents of the entry, retransmitted until
    /// the target acknowledges with `EntryInstalled`.
    state: Bytes,
    /// The override row (owner, epoch) in force before this move, if any
    /// — restored (epoch + 1) when the move aborts.
    prev: Option<(u32, u32)>,
}

/// One shard of the home service: owns the authoritative bytes, update
/// log and synchronization tables of its directory slice and runs the
/// message loop until every participant has joined. A cluster with a
/// single shard is exactly the classic home service.
pub struct HomeShard {
    gthv: GthvInstance,
    ep: Endpoint,
    shard: u32,
    directory: Directory,
    locks: Vec<LockState>,
    barriers: Vec<BarrierState>,
    conds: Vec<CondState>,
    /// Global sequence counter for absorbed updates.
    seq: u64,
    /// Update log: `(seq, writer, range)` in absorption order. The
    /// writer rank lets grants exclude a thread's own updates without
    /// corrupting its horizon (a thread has by definition "seen" what it
    /// wrote itself, but nothing else absorbed in between).
    log: Vec<(u64, u32, UpdateRange)>,
    /// Oldest sequence still in the log; horizons below this need a full
    /// refresh (log compaction / cold migrated copies).
    log_floor: u64,
    /// Highest sequence each thread has seen.
    seen: HashMap<u32, u64>,
    /// Transport endpoint of each thread's latest message.
    routes: HashMap<u32, u32>,
    participants: HashSet<u32>,
    joined: HashSet<u32>,
    /// Participants declared dead by the lease detector.
    dead: HashSet<u32>,
    /// Last time each participant was heard from (any message), on the
    /// fabric timeline — the source of the `heard_ms` forensics in
    /// [`DsdMsg::WorkerLost`], virtual-clock exact in simulation mode.
    last_heard: HashMap<u32, FabricInstant>,
    /// Highest request id handled per thread (at-most-once dedup).
    last_req: HashMap<u32, u64>,
    /// Last reply sent to each thread, resent verbatim when the same
    /// request id arrives again (the reply, not the request, was lost).
    reply_cache: HashMap<u32, (u64, MsgKind, Bytes)>,
    lease: Option<Duration>,
    linger: Duration,
    costs: CostBreakdown,
    conv_stats: ConversionStats,
    recorder: Recorder,
    fast_path: bool,
    /// The sync operation each thread's outstanding request is doing work
    /// for (from the request's trace context), so replies — including
    /// deferred grants and barrier releases — and home-side spans are
    /// attributed to the op that caused them. Empty when obs is disabled.
    op_ctx: HashMap<u32, OpCtx>,
    /// Primary (serves clients) or replica (mute shadow until promoted).
    role: Role,
    /// The epoch this instance serves under; bumped by promotion/handoff.
    epoch: u32,
    /// Fenced: stopped serving; answers clients with `ViewChange` only.
    fenced: bool,
    /// Partner endpoint: the replica (on a primary) / primary (on a
    /// replica). `None` when replication is off.
    replica_ep: Option<u32>,
    primary_ep: Option<u32>,
    /// Last sign of life from the replication-link partner.
    peer_last_heard: FabricInstant,
    /// The partner's endpoint is gone (crashed replica): stop relaying.
    replica_gone: bool,
    /// On a replica: promoted to serving primary.
    promoted: bool,
    /// Replaying a relayed request: suppress every outbound send while
    /// still populating the reply cache, so the shadow's dedup state
    /// stays byte-identical to the primary's.
    mute: bool,
    /// Cooperative kill switch (fault injection).
    kill: Option<Arc<AtomicBool>>,
    /// A promoted replica still owes the old primary a `Depose`.
    pending_depose: bool,
    /// Handoff drain in progress: (admin endpoint, new epoch, snapshot).
    handoff: Option<(u32, u32, Bytes)>,
    /// Start (µs) of the handoff drain, for the obs span.
    handoff_start_us: u64,
    /// First post-promotion client reply already recorded.
    first_grant_recorded: bool,
    /// The fabric's time source; every lease, drain and promotion timer
    /// reads it so failover timing is seed-deterministic in sim mode.
    clock: FabricClock,
    /// Tenancy layout (empty = classic single-session mode).
    sessions: Vec<TenantSpace>,
    /// Ranks whose session has shut down: their per-rank state (lease,
    /// horizon, reply cache) is purged; only the `last_req` watermark
    /// survives so a late duplicate is still answered at-most-once —
    /// with an uncached `Shutdown`, never by re-entering the tables.
    closed: HashSet<u32>,
    /// Per-entry ownership overrides layered over the modulo directory:
    /// entry → (owning shard, ownership epoch). Written identically at
    /// the move's source and target (and relayed to replicas), so every
    /// surviving shard can report a consistent final ownership map.
    entry_home: HashMap<u32, (u32, u32)>,
    /// In-flight outbound entry re-homing (source side); at most one at
    /// a time per shard — the admin serializes moves cluster-wide.
    entry_handoff: Option<EntryHandoffState>,
    /// Placement may re-home entries through this shard (forces ticks).
    adaptive: bool,
    /// Client-path messages deferred while `entry_handoff` is in flight,
    /// drained in arrival order once the target installs (or the move
    /// aborts).
    entry_pending: VecDeque<Message>,
}

/// The pre-sharding name of [`HomeShard`], kept for downstream code that
/// spawns a single home service directly.
pub type HomeService = HomeShard;

impl HomeShard {
    /// Create the service around the authoritative instance.
    pub fn new(gthv: GthvInstance, ep: Endpoint, config: HomeConfig) -> HomeShard {
        let locks = (0..config.n_locks).map(|_| LockState::default()).collect();
        let barriers = (0..config.n_barriers)
            .map(|_| BarrierState::default())
            .collect();
        let conds = (0..config.n_conds).map(|_| CondState::default()).collect();
        let clock = ep.clock();
        HomeShard {
            gthv,
            ep,
            shard: config.shard,
            directory: config.directory,
            locks,
            barriers,
            conds,
            seq: 0,
            log: Vec::new(),
            log_floor: 0,
            seen: config.participants.iter().map(|&r| (r, 0)).collect(),
            routes: HashMap::new(),
            participants: config.participants.into_iter().collect(),
            joined: HashSet::new(),
            dead: HashSet::new(),
            last_heard: HashMap::new(),
            last_req: HashMap::new(),
            reply_cache: HashMap::new(),
            lease: config.lease,
            linger: config.linger,
            costs: CostBreakdown::default(),
            conv_stats: ConversionStats::default(),
            recorder: config.recorder,
            fast_path: config.fast_path,
            op_ctx: HashMap::new(),
            role: if config.primary_ep.is_some() {
                Role::Replica
            } else {
                Role::Primary
            },
            epoch: 0,
            fenced: false,
            replica_ep: config.replica_ep,
            primary_ep: config.primary_ep,
            peer_last_heard: clock.now(),
            replica_gone: false,
            promoted: false,
            mute: false,
            kill: config.kill,
            pending_depose: false,
            handoff: None,
            handoff_start_us: 0,
            first_grant_recorded: false,
            clock,
            sessions: config.sessions,
            closed: HashSet::new(),
            entry_home: HashMap::new(),
            entry_handoff: None,
            adaptive: config.adaptive,
            entry_pending: VecDeque::new(),
        }
    }

    /// The sync op thread `rank`'s outstanding request belongs to.
    fn op_of(&self, rank: u32) -> OpCtx {
        self.op_ctx.get(&rank).copied().unwrap_or_default()
    }

    /// Initialise the authoritative copy and log this shard's slice of the
    /// structure as one big update, so every thread pulls the initial
    /// contents at its first acquire. Every shard runs the same
    /// initialiser; each logs (and later serves) only the entries it owns,
    /// so with one shard the whole structure is logged exactly as before.
    pub fn init_with<F: FnOnce(&mut GthvInstance)>(&mut self, f: F) {
        f(&mut self.gthv);
        self.seq += 1;
        let s = self.seq;
        let owned = self.owned_full_ranges();
        self.log
            .extend(owned.into_iter().map(|r| (s, HOME_WRITER, r)));
    }

    /// Authoritative instance (read access for inspection). Under a
    /// sharded home only the entries this shard owns are authoritative.
    pub fn gthv(&self) -> &GthvInstance {
        &self.gthv
    }

    /// Does this shard currently own `entry`? The placement overlay wins
    /// over the modulo directory; the single-shard layout owns everything
    /// it has no override row for.
    fn owns_entry(&self, entry: u32) -> bool {
        match self.entry_home.get(&entry) {
            Some(&(shard, _)) => shard == self.shard,
            None => {
                self.directory.n_shards() <= 1 || self.directory.entry_shard(entry) == self.shard
            }
        }
    }

    /// Full-structure ranges restricted to the entries this shard owns.
    fn owned_full_ranges(&self) -> Vec<UpdateRange> {
        let mut ranges = full_ranges(&self.gthv);
        if self.directory.n_shards() > 1 || !self.entry_home.is_empty() {
            ranges.retain(|r| self.owns_entry(r.entry));
        }
        ranges
    }

    /// Absorb a batch of incoming updates: unpack time was already spent
    /// decoding; here we apply (t_conv) and log the ranges.
    fn absorb(
        &mut self,
        writer: u32,
        updates: &[hdsm_tags::wire::WireUpdate],
    ) -> Result<(), HomeError> {
        if updates.is_empty() {
            return Ok(());
        }
        if self.directory.n_shards() > 1 || !self.entry_home.is_empty() {
            // Routing bugs must not silently corrupt another shard's
            // slice: this shard is only authoritative for what it owns.
            // (Misroutes caused by a client's stale placement view are
            // bounced with `EntryMoved` before reaching this check.)
            if let Some(u) = updates.iter().find(|u| !self.owns_entry(u.entry)) {
                return Err(HomeError::Violation(format!(
                    "shard {} received update for entry {} owned by shard {}",
                    self.shard,
                    u.entry,
                    self.entry_home
                        .get(&u.entry)
                        .map(|&(s, _)| s)
                        .unwrap_or_else(|| self.directory.entry_shard(u.entry))
                )));
            }
        }
        let t0 = Instant::now();
        {
            let mut span = self.recorder.span(self.ep.rank(), EventKind::Convert);
            span.args(
                updates.len() as u64,
                updates.iter().map(|u| u.data.len() as u64).sum(),
            );
            span.op(self.op_of(writer));
            apply_batch_mode(
                &mut self.gthv,
                updates,
                &mut self.conv_stats,
                self.fast_path,
            )?;
        }
        self.costs.t_conv += t0.elapsed();
        self.costs.updates_applied += updates.len() as u64;
        self.costs.bytes_applied += updates.iter().map(|u| u.data.len() as u64).sum::<u64>();
        self.seq += 1;
        let s = self.seq;
        for u in updates {
            self.log.push((
                s,
                writer,
                UpdateRange {
                    entry: u.entry,
                    first: u.elem_offset,
                    count: u.tag.element_count(),
                },
            ));
        }
        self.maybe_compact();
        Ok(())
    }

    /// Drop log entries every participant has already seen.
    fn maybe_compact(&mut self) {
        if self.log.len() < 4096 {
            return;
        }
        let min_seen = self
            .participants
            .iter()
            .filter(|r| !self.joined.contains(r))
            .map(|r| self.seen.get(r).copied().unwrap_or(0))
            .min()
            .unwrap_or(self.seq);
        self.log.retain(|(s, _, _)| *s > min_seen);
        self.log_floor = self.log_floor.max(min_seen);
    }

    /// Updates thread `rank` has not seen, as freshly extracted wire
    /// frames (t_tag for range coalescing + t_pack accounted by caller's
    /// encode; extraction itself is charged to t_pack).
    fn stale_updates_for(
        &mut self,
        rank: u32,
    ) -> Result<Vec<hdsm_tags::wire::WireUpdate>, HomeError> {
        let horizon = self.seen.get(&rank).copied().unwrap_or(0);
        let t_tag0 = Instant::now();
        let ranges: Vec<UpdateRange>;
        {
            let mut span = self.recorder.span(self.ep.rank(), EventKind::TagBuild);
            span.op(self.op_of(rank));
            ranges = if horizon < self.log_floor {
                // The thread's horizon predates the log: full refresh of
                // this shard's slice.
                self.owned_full_ranges()
            } else {
                coalesce(
                    self.log
                        .iter()
                        .filter(|(s, w, _)| *s > horizon && *w != rank)
                        .map(|(_, _, r)| *r)
                        .collect(),
                )
            };
            span.args(ranges.len() as u64, rank as u64);
        }
        self.costs.t_tag += t_tag0.elapsed();
        let t_pack0 = Instant::now();
        let ups;
        {
            let mut span = self.recorder.span(self.ep.rank(), EventKind::Pack);
            span.op(self.op_of(rank));
            ups = extract_updates(&self.gthv, &ranges)?;
            span.args(
                ups.iter().map(|u| u.data.len() as u64).sum(),
                ups.len() as u64,
            );
        }
        self.costs.t_pack += t_pack0.elapsed();
        self.costs.updates_sent += ups.len() as u64;
        self.costs.bytes_sent += ups.iter().map(|u| u.data.len() as u64).sum::<u64>();
        self.seen.insert(rank, self.seq);
        Ok(ups)
    }

    /// Transmit on the wire — unless this instance is a shadow replaying
    /// a relayed request, in which case the send is swallowed (the
    /// primary already answered) while all bookkeeping above this call
    /// stays byte-identical to the primary's.
    fn net_send(
        &mut self,
        ep_rank: u32,
        kind: MsgKind,
        payload: Bytes,
        op: OpCtx,
    ) -> Result<(), NetError> {
        if self.mute {
            return Ok(());
        }
        self.ep.send_op(ep_rank, kind, payload, op)
    }

    /// Send a reply to thread `rank`, enveloped with the request id of
    /// its outstanding request, and cache it for retransmission.
    fn send(&mut self, rank: u32, msg: DsdMsg) -> Result<(), HomeError> {
        let ep_rank = *self
            .routes
            .get(&rank)
            .ok_or_else(|| HomeError::Violation(format!("no route for thread {rank}")))?;
        let req_id = self.last_req.get(&rank).copied().unwrap_or(0);
        let t0 = Instant::now();
        let payload = msg.encode_enveloped_mode(req_id, self.fast_path);
        self.costs.t_pack += t0.elapsed();
        self.reply_cache
            .insert(rank, (req_id, msg.kind(), payload.clone()));
        // The reply — including a deferred grant or barrier release —
        // belongs to the op the requester is blocked in.
        let op = self.op_of(rank);
        self.net_send(ep_rank, msg.kind(), payload, op)?;
        if self.promoted && !self.first_grant_recorded && !self.mute {
            // The recovery-latency endpoint: the first client request
            // this shard served after taking over.
            self.first_grant_recorded = true;
            self.recorder.instant(
                self.ep.rank(),
                EventKind::FirstGrant,
                self.shard as u64,
                self.epoch as u64,
                "",
            );
        }
        Ok(())
    }

    /// The enriched lost-worker notification for `rank`: how stale its
    /// lease was when it expired, so survivors can report forensics.
    fn worker_lost_msg(&self, rank: u32) -> DsdMsg {
        DsdMsg::WorkerLost {
            rank,
            heard_ms: self
                .last_heard
                .get(&rank)
                .map(|t| self.clock.now().saturating_since(*t).as_millis() as u64)
                .unwrap_or(0),
            lease_ms: self.lease.map(|l| l.as_millis() as u64).unwrap_or(0),
        }
    }

    /// The tenancy session thread `rank` belongs to, if any.
    fn session_of_rank(&self, rank: u32) -> Option<&TenantSpace> {
        self.sessions.iter().find(|t| t.contains_rank(rank))
    }

    /// The tenancy session owning global barrier id `barrier`, if any.
    fn session_of_barrier(&self, barrier: u32) -> Option<&TenantSpace> {
        self.sessions.iter().find(|t| t.contains_barrier(barrier))
    }

    /// Ranks a barrier waits for: the owning session's live unjoined
    /// members under tenancy, every live unjoined participant otherwise.
    fn barrier_waiting_for(&self, barrier: u32) -> usize {
        match self.session_of_barrier(barrier) {
            Some(t) => t
                .member_ranks()
                .filter(|r| {
                    self.participants.contains(r)
                        && !self.joined.contains(r)
                        && !self.dead.contains(r)
                })
                .count(),
            None => self.participants.len() - self.joined.len() - self.dead.len(),
        }
    }

    /// A dead member whose loss dooms barriers `rank` participates in:
    /// session-scoped under tenancy (another tenant's crash must not
    /// fail this one's barriers), any dead participant otherwise.
    fn blocking_dead(&self, rank: u32) -> Option<u32> {
        match self.session_of_rank(rank) {
            Some(t) => t.member_ranks().filter(|r| self.dead.contains(r)).min(),
            None => self.dead.iter().min().copied(),
        }
    }

    /// If `rank`'s session is now fully accounted for (every member
    /// joined or dead), shut the session down: the deferred `Join`
    /// replies go out as `Shutdown`s, then every member's per-rank state
    /// is purged — except `last_req`, which keeps late duplicates
    /// at-most-once (they are re-answered with an uncached `Shutdown`
    /// via the `closed` set instead).
    fn maybe_close_session(&mut self, rank: u32) -> Result<(), HomeError> {
        let Some(t) = self.session_of_rank(rank).copied() else {
            return Ok(());
        };
        let complete = t
            .member_ranks()
            .filter(|r| self.participants.contains(r))
            .all(|r| self.joined.contains(&r) || self.dead.contains(&r));
        if !complete {
            return Ok(());
        }
        for r in t.member_ranks() {
            if !self.participants.contains(&r) || self.closed.contains(&r) {
                continue;
            }
            if self.joined.contains(&r) {
                match self.send(r, DsdMsg::Shutdown) {
                    Err(HomeError::Net(NetError::Disconnected(_))) => {}
                    other => other?,
                }
            }
            self.closed.insert(r);
            self.last_heard.remove(&r);
            self.seen.remove(&r);
            self.op_ctx.remove(&r);
            self.reply_cache.remove(&r);
        }
        self.recorder.count("home.sessions_closed", 1);
        Ok(())
    }

    /// Answer a closed-session rank with `Shutdown` without touching the
    /// purged reply cache.
    fn resend_shutdown_uncached(&mut self, rank: u32) -> Result<(), HomeError> {
        let Some(&ep_rank) = self.routes.get(&rank) else {
            return Ok(());
        };
        let req_id = self.last_req.get(&rank).copied().unwrap_or(0);
        let payload = DsdMsg::Shutdown.encode_enveloped_mode(req_id, self.fast_path);
        match self.net_send(ep_rank, MsgKind::Shutdown, payload, OpCtx::default()) {
            Err(NetError::Disconnected(_)) => Ok(()),
            other => Ok(other?),
        }
    }

    fn grant(&mut self, lock: u32, rank: u32) -> Result<(), HomeError> {
        let updates = self.stale_updates_for(rank)?;
        self.send(rank, DsdMsg::LockGrant { lock, updates })
    }

    /// Is replication on for this cluster (clients stamp epochs)?
    fn replicated(&self) -> bool {
        self.directory.n_replicas() > 0
    }

    /// Has the cooperative kill switch flipped?
    fn killed(&self) -> bool {
        self.kill
            .as_ref()
            .map(|k| k.load(Ordering::Relaxed))
            .unwrap_or(false)
    }

    /// Finish into the run outcome.
    fn outcome(self, authoritative: bool) -> HomeRunOutcome {
        let residual = ResidualReport {
            leases: self
                .closed
                .iter()
                .filter(|r| self.last_heard.contains_key(r))
                .count(),
            dedup: self
                .closed
                .iter()
                .filter(|r| self.reply_cache.contains_key(r))
                .count(),
            horizons: self
                .closed
                .iter()
                .filter(|r| self.seen.contains_key(r))
                .count(),
        };
        let mut entry_overrides: Vec<(u32, u32, u32)> = self
            .entry_home
            .iter()
            .map(|(&entry, &(shard, epoch))| (entry, shard, epoch))
            .collect();
        entry_overrides.sort_unstable();
        HomeRunOutcome {
            gthv: self.gthv,
            costs: self.costs,
            conv: self.conv_stats,
            epoch: self.epoch,
            authoritative,
            residual,
            entry_overrides,
        }
    }

    /// Run the service loop until all live participants joined (or this
    /// instance is killed, deposed or drained). Returns the instance,
    /// the home-side cost breakdown and the failover verdict.
    pub fn run(mut self) -> Result<HomeRunOutcome, HomeError> {
        let now = self.clock.now();
        for &r in &self.participants {
            self.last_heard.insert(r, now);
        }
        self.peer_last_heard = now;
        // Seed the telemetry epoch table (monotone max, so a replica's
        // epoch-0 report can't regress a promoted primary's).
        self.recorder.dir_epoch(self.shard, self.epoch as u64);
        // Replication, a lease and the kill switch all need periodic
        // wake-ups; without any of them the classic blocking recv stands.
        let tick = self
            .lease
            .map(|l| (l / 4).max(Duration::from_millis(10)))
            .unwrap_or(Duration::from_millis(10));
        let ticks =
            self.lease.is_some() || self.replicated() || self.kill.is_some() || self.adaptive;
        while self.joined.len() + self.dead.len() < self.participants.len() {
            if self.killed() {
                self.recorder.instant(
                    self.ep.rank(),
                    EventKind::ShardKill,
                    self.shard as u64,
                    self.epoch as u64,
                    "",
                );
                self.recorder.count("home.shards_killed", 1);
                return Ok(self.outcome(false));
            }
            let msg = if ticks {
                match self.ep.recv_timeout(tick) {
                    Ok(m) => Some(m),
                    Err(NetError::Timeout) => None,
                    Err(e) => return Err(e.into()),
                }
            } else {
                Some(self.ep.recv()?)
            };
            let idle = msg.is_none();
            if let Some(msg) = msg {
                self.process(msg)?;
            }
            self.tick_duties(idle)?;
            if self.fenced && self.handoff.is_none() {
                // Deposed, self-fenced or drained: this instance no
                // longer serves. Keep redirecting stragglers for a
                // while, then retire.
                self.fence_drain()?;
                return Ok(self.outcome(false));
            }
        }
        if self.role == Role::Replica && !self.promoted {
            // The primary drove the run to completion; this shadow's job
            // is done. The primary broadcasts the shutdown.
            return Ok(self.outcome(false));
        }
        // An adaptive placement move may still be in flight: conclude it
        // before shutting down, or the ownership flip would outlive the
        // state transfer and the stitch would attribute the entry to a
        // shard that never installed its bytes. Keep offering briefly;
        // if the target never acknowledges (it may be tearing down too),
        // revert ownership — the bytes stay authoritative here.
        if self.entry_handoff.is_some() {
            let deadline = self.clock.now() + Duration::from_millis(500);
            while self.entry_handoff.is_some() && self.clock.now() < deadline {
                match self.ep.recv_timeout(Duration::from_millis(10)) {
                    Ok(m) => self.process(m)?,
                    Err(NetError::Timeout) => self.send_entry_state()?,
                    Err(e) => return Err(e.into()),
                }
            }
            self.abort_entry_handoff()?;
        }
        // Every live participant joined: broadcast shutdown. The shutdown
        // is the (deferred) reply to each thread's Join request, so it is
        // cached and resent if the fabric drops it.
        // Broadcast in rank order: `joined` is a hash set, and iterating
        // it raw would make the shutdown send order (and with it the
        // dedup traffic of any straggler retransmits racing the
        // broadcast) vary run to run, breaking sim reproducibility.
        let mut ranks: Vec<u32> = self
            .joined
            .iter()
            .copied()
            .filter(|r| !self.closed.contains(r))
            .collect();
        ranks.sort_unstable();
        for r in ranks {
            // A duplicated copy of this very Shutdown (or a prior shard's)
            // may already have reached the worker, which then exits and
            // drops its endpoint before our enqueue lands. A disconnected
            // client has everything it was owed.
            match self.send(r, DsdMsg::Shutdown) {
                Err(HomeError::Net(NetError::Disconnected(_))) => {}
                other => other?,
            }
        }
        if !self.dead.is_empty() {
            // A declared-dead worker may only be partitioned and will
            // resurface retransmitting; stay around long enough to tell
            // it it was declared lost instead of letting it time out.
            if let Some(lease) = self.lease {
                self.linger = self.linger.max(lease * 2);
            }
        }
        self.linger_drain()?;
        Ok(self.outcome(true))
    }

    /// One incoming message: replication/failover control first, then the
    /// epoch-checked client path into [`Self::dispatch`].
    fn process(&mut self, msg: Message) -> Result<(), HomeError> {
        let op = msg.trace.map(|t| t.op).unwrap_or_default();
        match msg.kind {
            MsgKind::Replicate => return self.on_replicate(msg),
            MsgKind::ReplicaBeat => {
                self.peer_last_heard = self.clock.now();
                return Ok(());
            }
            MsgKind::Depose => {
                let (_, m) = DsdMsg::decode_enveloped(msg.kind, msg.payload)?;
                if let DsdMsg::Depose { shard, epoch } = m {
                    if shard == self.shard && !self.fenced {
                        self.fence();
                    }
                    let ack = DsdMsg::DeposeAck { shard, epoch }.encode_enveloped(0);
                    match self.net_send(msg.src, MsgKind::DeposeAck, ack, OpCtx::default()) {
                        Err(NetError::Disconnected(_)) => {}
                        other => other?,
                    }
                }
                return Ok(());
            }
            MsgKind::DeposeAck => {
                self.peer_last_heard = self.clock.now();
                self.pending_depose = false;
                return Ok(());
            }
            MsgKind::HandoffRequest => {
                let (_, m) = DsdMsg::decode_enveloped(msg.kind, msg.payload)?;
                if let DsdMsg::HandoffRequest { shard } = m {
                    if shard == self.shard {
                        self.start_handoff(msg.src)?;
                    }
                }
                return Ok(());
            }
            MsgKind::HandoffState => {
                let (_, m) = DsdMsg::decode_enveloped(msg.kind, msg.payload)?;
                if let DsdMsg::HandoffState {
                    shard,
                    epoch,
                    state,
                } = m
                {
                    if shard == self.shard {
                        self.on_handoff_state(msg.src, epoch, state)?;
                    }
                }
                return Ok(());
            }
            MsgKind::HandoffInstalled => {
                let (_, m) = DsdMsg::decode_enveloped(msg.kind, msg.payload)?;
                if let DsdMsg::HandoffInstalled { shard, epoch } = m {
                    if shard == self.shard {
                        self.peer_last_heard = self.clock.now();
                        self.finish_handoff(epoch)?;
                    }
                }
                return Ok(());
            }
            MsgKind::EntryHandoff => {
                let (_, m) = DsdMsg::decode_enveloped(msg.kind, msg.payload)?;
                if let DsdMsg::EntryHandoff { entry, to_shard } = m {
                    self.on_entry_handoff(msg.src, entry, to_shard)?;
                }
                return Ok(());
            }
            MsgKind::EntryState => {
                let (_, m) = DsdMsg::decode_enveloped(msg.kind, msg.payload)?;
                if let DsdMsg::EntryState {
                    entry,
                    epoch,
                    state,
                } = m
                {
                    self.on_entry_state(msg.src, entry, epoch, state)?;
                }
                return Ok(());
            }
            MsgKind::EntryInstalled => {
                let (_, m) = DsdMsg::decode_enveloped(msg.kind, msg.payload)?;
                if let DsdMsg::EntryInstalled { entry, epoch } = m {
                    self.on_entry_installed(entry, epoch)?;
                }
                return Ok(());
            }
            MsgKind::EntryDone => return Ok(()),
            MsgKind::ViewChange => {
                // Only another home bounces us a `ViewChange` (an
                // `EntryState` offer that hit a fenced endpoint). The
                // idle-tick retransmit keeps offering to both endpoints
                // until the promoted one installs; nothing to do here.
                return Ok(());
            }
            _ => {}
        }
        if self.entry_handoff.is_some() {
            // An outbound entry move is in flight: the entry's log rows
            // are gone here and the target has not installed yet, so
            // neither shard could serve its pre-move updates. Defer every
            // client-path message until the target acknowledges — the
            // window is one round trip.
            self.entry_pending.push_back(msg);
            return Ok(());
        }
        // Client path. With replication on, client requests carry an
        // epoch stamp after the request id.
        let epoch_wire = self.replicated() && DsdMsg::epoch_stamped(msg.kind);
        let t0 = Instant::now();
        let (req_id, stamp, decoded) = {
            let mut span = self.recorder.span(self.ep.rank(), EventKind::Unpack);
            span.args(msg.payload.len() as u64, msg.src as u64);
            span.op(op);
            if epoch_wire {
                let (r, e, d) = DsdMsg::decode_enveloped_epoch(msg.kind, msg.payload.clone())?;
                (r, e, d)
            } else {
                let (r, d) = DsdMsg::decode_enveloped(msg.kind, msg.payload.clone())?;
                (r, self.epoch, d)
            }
        };
        self.costs.t_unpack += t0.elapsed();
        if self.role == Role::Replica && !self.promoted {
            // A shadow never answers clients: its state evolves through
            // the relay stream only. The client retransmits; once this
            // replica promotes, the retransmission is served (dedup
            // catches anything the primary already answered).
            return Ok(());
        }
        if stamp > self.epoch && !self.fenced {
            // A request stamped from the future: some other instance
            // already serves a later epoch of this shard. Fence.
            self.fence();
        }
        if self.fenced {
            return self.reply_view_change(msg.src, req_id);
        }
        if self.role == Role::Primary && self.replica_ep.is_some() && !self.replica_gone {
            // Relay *before* processing, so the shadow can never miss a
            // request whose effects the primary exposed to a client.
            self.relay(msg.src, req_id, msg.kind, &msg.payload, epoch_wire)?;
        }
        self.dispatch(msg.src, req_id, decoded, op)
    }

    /// Redirect a client with a stale view: the shard now rules under
    /// `epoch + 1` at its other endpoint.
    fn reply_view_change(&mut self, src_ep: u32, req_id: u64) -> Result<(), HomeError> {
        let payload = DsdMsg::ViewChange {
            shard: self.shard,
            epoch: self.epoch + 1,
        }
        .encode_enveloped(req_id);
        match self.net_send(src_ep, MsgKind::ViewChange, payload, OpCtx::default()) {
            Err(NetError::Disconnected(_)) => Ok(()),
            other => Ok(other?),
        }
    }

    /// Stop serving: every subsequent client request is answered with a
    /// redirect instead of a grant, so no split-brain double-grant can
    /// ever leave this instance.
    fn fence(&mut self) {
        self.fenced = true;
        self.recorder.instant(
            self.ep.rank(),
            EventKind::Fence,
            self.shard as u64,
            self.epoch as u64,
            "",
        );
        self.recorder.count("home.fenced", 1);
    }

    /// Forward one client frame to the shadow replica, envelope stripped,
    /// so the replica replays it through the same dispatch path.
    fn relay(
        &mut self,
        src_ep: u32,
        req_id: u64,
        kind: MsgKind,
        payload: &Bytes,
        epoch_wire: bool,
    ) -> Result<(), HomeError> {
        let Some(rep) = self.replica_ep else {
            return Ok(());
        };
        let body = payload.slice(if epoch_wire { 12 } else { 8 }..);
        let frame = DsdMsg::Replicate {
            src_ep,
            req_id,
            kind: kind as u16,
            body,
        }
        .encode_enveloped(0);
        match self.ep.send(rep, MsgKind::Replicate, frame) {
            Err(NetError::Disconnected(_)) => {
                // The replica crashed. Continue solo — the cluster is
                // back to the unreplicated availability level.
                self.replica_gone = true;
                Ok(())
            }
            other => Ok(other?),
        }
    }

    /// Relay a home-side *decision* (today: a lease expiry) to the
    /// shadow, so timing-dependent state transitions replay verbatim
    /// instead of being re-derived from the replica's own clock.
    fn relay_decision(&mut self, inner: DsdMsg) -> Result<(), HomeError> {
        if self.role != Role::Primary || self.replica_gone || self.replica_ep.is_none() {
            return Ok(());
        }
        let rep = self.replica_ep.unwrap();
        let frame = DsdMsg::Replicate {
            src_ep: 0,
            req_id: 0,
            kind: inner.kind() as u16,
            body: inner.encode(),
        }
        .encode_enveloped(0);
        match self.ep.send(rep, MsgKind::Replicate, frame) {
            Err(NetError::Disconnected(_)) => {
                self.replica_gone = true;
                Ok(())
            }
            other => Ok(other?),
        }
    }

    /// Replica side of the relay: replay the original request through the
    /// normal dispatch path with sends muted. The shadow's tables, log,
    /// dedup horizon and reply cache end up byte-identical to the
    /// primary's, so a promoted replica can serve retransmissions of
    /// requests the primary already answered.
    fn on_replicate(&mut self, msg: Message) -> Result<(), HomeError> {
        self.peer_last_heard = self.clock.now();
        let (_, m) = DsdMsg::decode_enveloped(msg.kind, msg.payload)?;
        let DsdMsg::Replicate {
            src_ep,
            req_id,
            kind,
            body,
        } = m
        else {
            return Ok(());
        };
        let Some(kind) = MsgKind::from_u16(kind) else {
            return Err(HomeError::Protocol(ProtocolError::BadMessage(
                "relayed frame with unknown kind",
            )));
        };
        let inner = DsdMsg::decode(kind, body)?;
        self.mute = true;
        let res = match inner {
            // Relayed home-side decisions (req id 0), not client requests.
            DsdMsg::WorkerLost { rank, .. } if req_id == 0 => {
                if self.dead.contains(&rank) {
                    Ok(())
                } else {
                    self.declare_dead(rank)
                }
            }
            DsdMsg::EntryMoved { entries } if req_id == 0 => {
                // Mirror the primary's placement flips (including any
                // abort revert), so a promoted shadow reports and serves
                // the same per-entry ownership map.
                for (entry, shard, epoch) in entries {
                    self.apply_entry_move(entry, shard, epoch);
                }
                Ok(())
            }
            DsdMsg::EntryState {
                entry,
                epoch,
                state,
            } if req_id == 0 => {
                // The primary adopted an entry from another shard: replay
                // the install (muted — the primary sent the ack).
                self.install_entry(entry, epoch, state)
            }
            inner => self.dispatch(src_ep, req_id, inner, OpCtx::default()),
        };
        self.mute = false;
        res
    }

    /// Periodic failover duties, run on every loop turn (`idle` marks a
    /// receive-timeout turn, i.e. the inbound queue is drained).
    fn tick_duties(&mut self, idle: bool) -> Result<(), HomeError> {
        match self.role {
            Role::Primary => {
                // Split-brain guard: if the replication link has been
                // silent for ¾ of the lease, assume the replica is about
                // to promote (it does so at one full lease) and fence
                // *first*, so there is never a moment with two grant
                // authorities.
                if let (Some(_), Some(lease)) = (self.replica_ep, self.lease) {
                    if !self.replica_gone
                        && !self.fenced
                        && self.clock.now().saturating_since(self.peer_last_heard) > lease * 3 / 4
                    {
                        self.fence();
                    }
                }
                if idle {
                    if let Some((_, epoch, state)) = self.handoff.clone() {
                        // Keep offering the snapshot until the replica
                        // confirms installation.
                        let rep = self.replica_ep.expect("handoff without replica");
                        let frame = DsdMsg::HandoffState {
                            shard: self.shard,
                            epoch,
                            state,
                        }
                        .encode_enveloped(0);
                        match self.ep.send(rep, MsgKind::HandoffState, frame) {
                            Err(NetError::Disconnected(_)) => {
                                return Err(HomeError::Violation(
                                    "handoff target replica is gone".into(),
                                ))
                            }
                            other => other?,
                        }
                    }
                    if self.entry_handoff.is_some() {
                        // Keep offering the moved entry's state until the
                        // target shard acknowledges installation.
                        self.send_entry_state()?;
                    }
                }
                if !self.fenced {
                    self.check_leases()?;
                }
            }
            Role::Replica => {
                if !self.promoted {
                    // Beat the primary so it can self-fence if it loses
                    // us; a dead endpoint on the other side means the
                    // primary crashed outright.
                    let beat = DsdMsg::ReplicaBeat { shard: self.shard }.encode_enveloped(0);
                    let primary = self.primary_ep.expect("replica without primary");
                    let primary_dead = matches!(
                        self.ep.send(primary, MsgKind::ReplicaBeat, beat),
                        Err(NetError::Disconnected(_))
                    );
                    let primary_silent = self
                        .lease
                        .map(|l| self.clock.now().saturating_since(self.peer_last_heard) > l)
                        .unwrap_or(false);
                    // Promote only once the inbound queue is drained, so
                    // every relayed frame the primary managed to send is
                    // replayed before this instance starts serving.
                    if idle && (primary_dead || primary_silent) {
                        self.promote();
                    }
                } else {
                    if self.pending_depose {
                        let frame = DsdMsg::Depose {
                            shard: self.shard,
                            epoch: self.epoch,
                        }
                        .encode_enveloped(0);
                        let primary = self.primary_ep.expect("replica without primary");
                        match self.ep.send(primary, MsgKind::Depose, frame) {
                            // Dead primary needs no fencing.
                            Err(NetError::Disconnected(_)) => self.pending_depose = false,
                            other => other?,
                        }
                    }
                    self.check_leases()?;
                    if idle && self.entry_handoff.is_some() {
                        self.send_entry_state()?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Take over the shard: bump the epoch, restart every survivor's
    /// lease (they may have gone quiet waiting out the failover), and
    /// start deposing the old primary.
    fn promote(&mut self) {
        self.promoted = true;
        self.epoch += 1;
        self.pending_depose = true;
        let now = self.clock.now();
        for &r in &self.participants {
            if !self.joined.contains(&r) && !self.dead.contains(&r) {
                self.last_heard.insert(r, now);
            }
        }
        self.recorder.instant(
            self.ep.rank(),
            EventKind::Promote,
            self.shard as u64,
            self.epoch as u64,
            "",
        );
        self.recorder.count("home.promotions", 1);
        self.recorder.dir_epoch(self.shard, self.epoch as u64);
        self.recorder.blackbox_trigger_once(
            "view-change",
            ((self.shard as u64) << 32) | self.epoch as u64,
        );
    }

    /// Admin asked this primary to drain: fence immediately (clients
    /// bounce to the replica with zero failed operations), snapshot the
    /// full shard state and start offering it to the replica.
    fn start_handoff(&mut self, admin_ep: u32) -> Result<(), HomeError> {
        if self.handoff.is_some() {
            return Ok(()); // duplicate request: drain already underway
        }
        if self.fenced {
            // Fenced outside a drain of ours — deposed, self-fenced or
            // mid-promotion. Bounce the admin with a `ViewChange` instead
            // of silently swallowing the request, so `ClusterCtl` can
            // surface a typed busy error and the placement loop can back
            // off rather than retransmitting into a fenced shard forever.
            return self.reply_view_change(admin_ep, 0);
        }
        if self.role != Role::Primary || self.replica_ep.is_none() {
            return Err(HomeError::Violation(
                "handoff requested on a shard without a replica".into(),
            ));
        }
        self.handoff_start_us = self.recorder.now_us();
        let new_epoch = self.epoch + 1;
        self.fence();
        let state = self.snapshot_state()?;
        self.handoff = Some((admin_ep, new_epoch, state.clone()));
        let rep = self.replica_ep.unwrap();
        let frame = DsdMsg::HandoffState {
            shard: self.shard,
            epoch: new_epoch,
            state,
        }
        .encode_enveloped(0);
        match self.ep.send(rep, MsgKind::HandoffState, frame) {
            Err(NetError::Disconnected(_)) => Err(HomeError::Violation(
                "handoff target replica is gone".into(),
            )),
            other => Ok(other?),
        }
    }

    /// The replica confirmed installation: tell the admin, close the obs
    /// span, retire.
    fn finish_handoff(&mut self, epoch: u32) -> Result<(), HomeError> {
        let Some((admin_ep, new_epoch, _)) = self.handoff else {
            return Ok(());
        };
        if epoch != new_epoch {
            return Ok(());
        }
        let now = self.recorder.now_us();
        self.recorder.span_at_op(
            self.ep.rank(),
            EventKind::Handoff,
            self.handoff_start_us,
            now.saturating_sub(self.handoff_start_us),
            self.shard as u64,
            new_epoch as u64,
            "",
            OpCtx {
                kind: OpKind::Handoff,
                id: self.shard,
                epoch: new_epoch,
                origin: 0,
            },
        );
        self.recorder.count("home.handoffs", 1);
        let done = DsdMsg::HandoffDone {
            shard: self.shard,
            epoch: new_epoch,
        }
        .encode_enveloped(0);
        match self.ep.send(admin_ep, MsgKind::HandoffDone, done) {
            Err(NetError::Disconnected(_)) => {}
            other => other?,
        }
        self.handoff = None;
        Ok(())
    }

    /// Replica side of the handoff: install the snapshot wholesale and
    /// promote to the offered epoch. Idempotent — a retransmitted
    /// snapshot after promotion is just re-acknowledged.
    fn on_handoff_state(&mut self, src_ep: u32, epoch: u32, state: Bytes) -> Result<(), HomeError> {
        if self.role != Role::Replica {
            return Ok(());
        }
        if !self.promoted {
            self.install_state(state)?;
            self.promoted = true;
            self.epoch = epoch;
            // The old primary fenced itself; no depose needed.
            self.pending_depose = false;
            let now = self.clock.now();
            for &r in &self.participants {
                if !self.joined.contains(&r) && !self.dead.contains(&r) {
                    self.last_heard.insert(r, now);
                }
            }
            self.recorder.instant(
                self.ep.rank(),
                EventKind::Promote,
                self.shard as u64,
                self.epoch as u64,
                "handoff",
            );
            self.recorder.count("home.promotions", 1);
            self.recorder.dir_epoch(self.shard, self.epoch as u64);
            self.recorder.blackbox_trigger_once(
                "view-change",
                ((self.shard as u64) << 32) | self.epoch as u64,
            );
        }
        let ack = DsdMsg::HandoffInstalled {
            shard: self.shard,
            epoch: self.epoch,
        }
        .encode_enveloped(0);
        match self.ep.send(src_ep, MsgKind::HandoffInstalled, ack) {
            Err(NetError::Disconnected(_)) => Ok(()),
            other => Ok(other?),
        }
    }

    // ----- per-entry re-homing (placement engine actuator) -----

    /// Admin asked this shard to migrate one entry's home to `to_shard`:
    /// snapshot the entry's authoritative bytes, flip the ownership
    /// overlay under a fresh per-entry epoch, purge the entry's log rows
    /// (the new owner starts a forced-full-refresh epoch instead) and
    /// start offering the state. Client traffic is deferred until the
    /// target acknowledges, closing the one-round-trip window in which
    /// neither shard could serve the entry's history.
    fn on_entry_handoff(
        &mut self,
        admin_ep: u32,
        entry: u32,
        to_shard: u32,
    ) -> Result<(), HomeError> {
        if self.role == Role::Replica && !self.promoted {
            return Ok(()); // shadows learn moves from the relay stream
        }
        if let Some(h) = &self.entry_handoff {
            if h.entry == entry && h.to_shard == to_shard {
                return Ok(()); // duplicate of the in-flight move
            }
            // Busy with a different move: tell the admin to back off.
            return self.reply_view_change(admin_ep, 0);
        }
        if self.fenced {
            return self.reply_view_change(admin_ep, 0);
        }
        if to_shard == self.shard || !self.owns_entry(entry) {
            // Already there (or a duplicate of a completed move): the
            // idempotent confirmation is all the admin needs.
            let done = DsdMsg::EntryDone { entry, to_shard }.encode_enveloped(0);
            return match self.net_send(admin_ep, MsgKind::EntryDone, done, OpCtx::default()) {
                Err(NetError::Disconnected(_)) => Ok(()),
                other => Ok(other?),
            };
        }
        let ranges: Vec<UpdateRange> = full_ranges(&self.gthv)
            .into_iter()
            .filter(|r| r.entry == entry)
            .collect();
        let ups = extract_updates(&self.gthv, &ranges)?;
        let state = pack_batch(&ups);
        let prev = self.entry_home.get(&entry).copied();
        let epoch = prev.map(|(_, e)| e).unwrap_or(0) + 1;
        // Ship the flip down the replication stream *before* acting on
        // it, mirroring the relay-before-process discipline.
        self.relay_decision(DsdMsg::EntryMoved {
            entries: vec![(entry, to_shard, epoch)],
        })?;
        self.entry_home.insert(entry, (to_shard, epoch));
        self.log.retain(|(_, _, r)| r.entry != entry);
        self.entry_handoff = Some(EntryHandoffState {
            entry,
            admin_ep,
            to_shard,
            epoch,
            state,
            prev,
        });
        self.recorder.count("home.entry_handoffs", 1);
        self.send_entry_state()
    }

    /// Offer the in-flight entry snapshot to every endpoint of the
    /// target shard (a mute shadow drops it, a fenced endpoint bounces,
    /// the serving one installs and acks). Called once at move start and
    /// again on idle ticks until `EntryInstalled` arrives.
    fn send_entry_state(&mut self) -> Result<(), HomeError> {
        let Some(h) = &self.entry_handoff else {
            return Ok(());
        };
        let frame = DsdMsg::EntryState {
            entry: h.entry,
            epoch: h.epoch,
            state: h.state.clone(),
        }
        .encode_enveloped(0);
        let to_shard = h.to_shard;
        let mut eps = vec![self.directory.shard_ep(to_shard)];
        if self.directory.n_replicas() > 0 {
            eps.push(self.directory.replica_ep(to_shard));
        }
        let mut alive = false;
        for ep in eps {
            match self.net_send(ep, MsgKind::EntryState, frame.clone(), OpCtx::default()) {
                Err(NetError::Disconnected(_)) => {}
                other => {
                    other?;
                    alive = true;
                }
            }
        }
        if !alive {
            // Every endpoint of the target shard is gone: abort the move
            // and keep serving the entry here.
            self.abort_entry_handoff()?;
        }
        Ok(())
    }

    /// The target shard vanished mid-move: take ownership back under a
    /// strictly higher epoch (so any `EntryMoved` rows clients already
    /// learned lose the max-epoch merge) and force a full refresh — the
    /// entry's log rows were purged at move start and cannot come back.
    fn abort_entry_handoff(&mut self) -> Result<(), HomeError> {
        let Some(h) = self.entry_handoff.take() else {
            return Ok(());
        };
        let owner = h.prev.map(|(s, _)| s).unwrap_or(self.shard);
        self.relay_decision(DsdMsg::EntryMoved {
            entries: vec![(h.entry, owner, h.epoch + 1)],
        })?;
        self.entry_home.insert(h.entry, (owner, h.epoch + 1));
        self.seq += 1;
        self.log_floor = self.seq;
        self.recorder.count("home.entry_handoff_aborts", 1);
        self.drain_entry_pending()
    }

    /// Target side: another shard is offering an entry it is re-homing
    /// to us. Install (idempotently — duplicate offers re-ack only) and
    /// acknowledge so the source can release its deferred traffic.
    fn on_entry_state(
        &mut self,
        src_ep: u32,
        entry: u32,
        epoch: u32,
        state: Bytes,
    ) -> Result<(), HomeError> {
        if self.role == Role::Replica && !self.promoted {
            return Ok(()); // the shadow's copy arrives on the relay stream
        }
        if self.fenced {
            return self.reply_view_change(src_ep, 0);
        }
        let cur = self.entry_home.get(&entry).map(|&(_, e)| e).unwrap_or(0);
        if epoch > cur {
            // Relay before installing, as with client requests.
            self.relay_decision(DsdMsg::EntryState {
                entry,
                epoch,
                state: state.clone(),
            })?;
            self.install_entry(entry, epoch, state)?;
        }
        let ack = DsdMsg::EntryInstalled { entry, epoch }.encode_enveloped(0);
        match self.net_send(src_ep, MsgKind::EntryInstalled, ack, OpCtx::default()) {
            Err(NetError::Disconnected(_)) => Ok(()),
            other => Ok(other?),
        }
    }

    /// Apply an adopted entry's packed state and take ownership at
    /// `epoch`. The entry's history lives at the old owner, so the log
    /// floor is raised to force every horizon below it through a full
    /// refresh of the (now larger) owned slice.
    fn install_entry(&mut self, entry: u32, epoch: u32, state: Bytes) -> Result<(), HomeError> {
        let cur = self.entry_home.get(&entry).map(|&(_, e)| e).unwrap_or(0);
        if epoch <= cur {
            return Ok(());
        }
        let ups = unpack_batch(state).map_err(ProtocolError::from)?;
        apply_batch_mode(&mut self.gthv, &ups, &mut self.conv_stats, self.fast_path)?;
        self.entry_home.insert(entry, (self.shard, epoch));
        self.seq += 1;
        self.log_floor = self.seq;
        self.recorder.count("home.entries_adopted", 1);
        Ok(())
    }

    /// Replica-side mirror of one relayed ownership flip.
    fn apply_entry_move(&mut self, entry: u32, shard: u32, epoch: u32) {
        let cur = self.entry_home.get(&entry).map(|&(_, e)| e).unwrap_or(0);
        if epoch <= cur {
            return;
        }
        self.entry_home.insert(entry, (shard, epoch));
        self.log.retain(|(_, _, r)| r.entry != entry);
        if shard == self.shard {
            // Gaining (or re-gaining, on an abort revert) ownership of an
            // entry whose history we do not have: force full refreshes.
            self.seq += 1;
            self.log_floor = self.seq;
        }
    }

    /// Source side: the target acknowledged installation. Confirm to the
    /// admin and release the deferred client traffic.
    fn on_entry_installed(&mut self, entry: u32, epoch: u32) -> Result<(), HomeError> {
        let matches_inflight = self
            .entry_handoff
            .as_ref()
            .map(|h| h.entry == entry && h.epoch == epoch)
            .unwrap_or(false);
        if !matches_inflight {
            return Ok(()); // late ack for a move already concluded
        }
        let h = self.entry_handoff.take().expect("checked above");
        self.recorder.count("home.entries_rehomed", 1);
        let done = DsdMsg::EntryDone {
            entry: h.entry,
            to_shard: h.to_shard,
        }
        .encode_enveloped(0);
        match self.net_send(h.admin_ep, MsgKind::EntryDone, done, OpCtx::default()) {
            Err(NetError::Disconnected(_)) => {}
            other => other?,
        }
        self.drain_entry_pending()
    }

    /// Re-process the messages deferred while an entry move was in
    /// flight, in arrival order. Stops early if one of them starts a new
    /// move (the rest stay queued behind it).
    fn drain_entry_pending(&mut self) -> Result<(), HomeError> {
        while self.entry_handoff.is_none() {
            let Some(m) = self.entry_pending.pop_front() else {
                return Ok(());
            };
            self.process(m)?;
        }
        Ok(())
    }

    /// If any of `updates` targets an entry this shard re-homed away,
    /// reply `EntryMoved` with the override rows instead of absorbing —
    /// the client merges them (max epoch wins), re-buckets the affected
    /// updates and resends. Misrouted updates with *no* override row
    /// fall through to `absorb`'s violation check: those are genuine
    /// routing bugs, not stale placement views.
    fn bounce_moved(
        &mut self,
        rank: u32,
        updates: &[hdsm_tags::wire::WireUpdate],
    ) -> Result<bool, HomeError> {
        if self.entry_home.is_empty() {
            return Ok(false);
        }
        let mut rows: Vec<(u32, u32, u32)> = updates
            .iter()
            .filter(|u| !self.owns_entry(u.entry))
            .filter_map(|u| self.entry_home.get(&u.entry).map(|&(s, e)| (u.entry, s, e)))
            .collect();
        if rows.is_empty() {
            return Ok(false);
        }
        rows.sort_unstable();
        rows.dedup();
        self.recorder.count("home.entry_bounces", 1);
        self.send(rank, DsdMsg::EntryMoved { entries: rows })?;
        Ok(true)
    }

    /// After fencing, keep redirecting stragglers (and re-acking deposes)
    /// for a grace period, then let the endpoint drop — from then on
    /// senders get `Disconnected` and probe the shard's other endpoint.
    fn fence_drain(&mut self) -> Result<(), HomeError> {
        let grace = self
            .lease
            .map(|l| l * 2)
            .unwrap_or(Duration::from_millis(100))
            .max(self.linger);
        let deadline = self.clock.now() + grace;
        loop {
            let left = deadline.saturating_since(self.clock.now());
            if left.is_zero() {
                return Ok(());
            }
            let msg = match self.ep.recv_timeout(left) {
                Ok(m) => m,
                Err(NetError::Timeout) | Err(NetError::ChannelClosed) => return Ok(()),
                Err(e) => return Err(e.into()),
            };
            match msg.kind {
                MsgKind::Depose => {
                    if let Ok((_, DsdMsg::Depose { shard, epoch })) =
                        DsdMsg::decode_enveloped(msg.kind, msg.payload)
                    {
                        let ack = DsdMsg::DeposeAck { shard, epoch }.encode_enveloped(0);
                        let _ = self.ep.send(msg.src, MsgKind::DeposeAck, ack);
                    }
                }
                MsgKind::Replicate | MsgKind::ReplicaBeat | MsgKind::DeposeAck => {}
                _ => {
                    // Any client request: redirect. Only the leading
                    // request id matters for the reply to match up.
                    if msg.payload.len() < 8 {
                        continue;
                    }
                    let req_id = msg.payload.clone().get_u64();
                    let _ = self.reply_view_change(msg.src, req_id);
                }
            }
        }
    }

    /// Serialize the full shard state for a handoff: authoritative entry
    /// bytes (as a packed update batch over the owned slice), the update
    /// log, horizons, routes, sync tables, membership and the at-most-once
    /// dedup state. Opaque to the protocol layer — only this module reads
    /// it back.
    fn snapshot_state(&self) -> Result<Bytes, HomeError> {
        // Every map/set below iterates in sorted order: the snapshot's
        // bytes must be a pure function of the shard's state, not of the
        // per-instance `HashMap` hash seed (the simulation determinism
        // tests compare run artifacts byte-for-byte).
        fn sorted<K: Ord + Copy, V>(m: &HashMap<K, V>) -> Vec<(K, &V)> {
            let mut v: Vec<_> = m.iter().map(|(k, x)| (*k, x)).collect();
            v.sort_by_key(|(k, _)| *k);
            v
        }
        fn sorted_set(set: &HashSet<u32>) -> Vec<u32> {
            let mut v: Vec<u32> = set.iter().copied().collect();
            v.sort_unstable();
            v
        }
        let mut out = BytesMut::new();
        out.put_u64(self.seq);
        out.put_u64(self.log_floor);
        let ups = extract_updates(&self.gthv, &self.owned_full_ranges())?;
        let batch = pack_batch(&ups);
        out.put_u32(batch.len() as u32);
        out.put_slice(&batch);
        out.put_u32(self.log.len() as u32);
        for (s, w, r) in &self.log {
            out.put_u64(*s);
            out.put_u32(*w);
            out.put_u32(r.entry);
            out.put_u64(r.first);
            out.put_u64(r.count);
        }
        out.put_u32(self.seen.len() as u32);
        for (rank, s) in sorted(&self.seen) {
            out.put_u32(rank);
            out.put_u64(*s);
        }
        out.put_u32(self.routes.len() as u32);
        for (rank, ep) in sorted(&self.routes) {
            out.put_u32(rank);
            out.put_u32(*ep);
        }
        out.put_u32(self.locks.len() as u32);
        for l in &self.locks {
            out.put_u32(l.holder.map(|h| h + 1).unwrap_or(0));
            out.put_u32(l.waiters.len() as u32);
            for w in &l.waiters {
                out.put_u32(*w);
            }
        }
        out.put_u32(self.barriers.len() as u32);
        for b in &self.barriers {
            out.put_u32(b.entered.len() as u32);
            for r in &b.entered {
                out.put_u32(*r);
            }
        }
        out.put_u32(self.conds.len() as u32);
        for c in &self.conds {
            out.put_u32(c.waiters.len() as u32);
            for (r, l) in &c.waiters {
                out.put_u32(*r);
                out.put_u32(*l);
            }
        }
        out.put_u32(self.joined.len() as u32);
        for r in sorted_set(&self.joined) {
            out.put_u32(r);
        }
        out.put_u32(self.dead.len() as u32);
        for r in sorted_set(&self.dead) {
            out.put_u32(r);
        }
        out.put_u32(self.last_req.len() as u32);
        for (rank, id) in sorted(&self.last_req) {
            out.put_u32(rank);
            out.put_u64(*id);
        }
        out.put_u32(self.reply_cache.len() as u32);
        for (rank, (rid, kind, payload)) in sorted(&self.reply_cache) {
            out.put_u32(rank);
            out.put_u64(*rid);
            out.put_u16(*kind as u16);
            out.put_u32(payload.len() as u32);
            out.put_slice(payload);
        }
        out.put_u32(self.entry_home.len() as u32);
        for (entry, (shard, epoch)) in sorted(&self.entry_home) {
            out.put_u32(entry);
            out.put_u32(*shard);
            out.put_u32(*epoch);
        }
        Ok(out.freeze())
    }

    /// Install a handoff snapshot wholesale, replacing whatever shadow
    /// state this replica accumulated (correct even if it missed relays).
    fn install_state(&mut self, mut b: Bytes) -> Result<(), HomeError> {
        fn need(b: &Bytes, n: usize) -> Result<(), HomeError> {
            if b.remaining() < n {
                Err(HomeError::Protocol(ProtocolError::Truncated))
            } else {
                Ok(())
            }
        }
        need(&b, 20)?;
        self.seq = b.get_u64();
        self.log_floor = b.get_u64();
        let blen = b.get_u32() as usize;
        need(&b, blen)?;
        let batch = b.split_to(blen);
        let ups = unpack_batch(batch).map_err(ProtocolError::from)?;
        apply_batch_mode(&mut self.gthv, &ups, &mut self.conv_stats, self.fast_path)?;
        need(&b, 4)?;
        let n = b.get_u32();
        self.log.clear();
        for _ in 0..n {
            need(&b, 32)?;
            let (s, w) = (b.get_u64(), b.get_u32());
            let (entry, first, count) = (b.get_u32(), b.get_u64(), b.get_u64());
            self.log.push((
                s,
                w,
                UpdateRange {
                    entry,
                    first,
                    count,
                },
            ));
        }
        need(&b, 4)?;
        let n = b.get_u32();
        self.seen.clear();
        for _ in 0..n {
            need(&b, 12)?;
            let (r, s) = (b.get_u32(), b.get_u64());
            self.seen.insert(r, s);
        }
        need(&b, 4)?;
        let n = b.get_u32();
        self.routes.clear();
        for _ in 0..n {
            need(&b, 8)?;
            let (r, ep) = (b.get_u32(), b.get_u32());
            self.routes.insert(r, ep);
        }
        need(&b, 4)?;
        let n = b.get_u32();
        self.locks = (0..n)
            .map(|_| -> Result<LockState, HomeError> {
                need(&b, 8)?;
                let holder = match b.get_u32() {
                    0 => None,
                    h => Some(h - 1),
                };
                let nw = b.get_u32();
                let mut waiters = VecDeque::new();
                for _ in 0..nw {
                    need(&b, 4)?;
                    waiters.push_back(b.get_u32());
                }
                Ok(LockState { holder, waiters })
            })
            .collect::<Result<_, _>>()?;
        need(&b, 4)?;
        let n = b.get_u32();
        self.barriers = (0..n)
            .map(|_| -> Result<BarrierState, HomeError> {
                need(&b, 4)?;
                let ne = b.get_u32();
                let mut entered = Vec::new();
                for _ in 0..ne {
                    need(&b, 4)?;
                    entered.push(b.get_u32());
                }
                Ok(BarrierState { entered })
            })
            .collect::<Result<_, _>>()?;
        need(&b, 4)?;
        let n = b.get_u32();
        self.conds = (0..n)
            .map(|_| -> Result<CondState, HomeError> {
                need(&b, 4)?;
                let nw = b.get_u32();
                let mut waiters = VecDeque::new();
                for _ in 0..nw {
                    need(&b, 8)?;
                    let (r, l) = (b.get_u32(), b.get_u32());
                    waiters.push_back((r, l));
                }
                Ok(CondState { waiters })
            })
            .collect::<Result<_, _>>()?;
        need(&b, 4)?;
        let n = b.get_u32();
        self.joined.clear();
        for _ in 0..n {
            need(&b, 4)?;
            self.joined.insert(b.get_u32());
        }
        need(&b, 4)?;
        let n = b.get_u32();
        self.dead.clear();
        for _ in 0..n {
            need(&b, 4)?;
            self.dead.insert(b.get_u32());
        }
        need(&b, 4)?;
        let n = b.get_u32();
        self.last_req.clear();
        for _ in 0..n {
            need(&b, 12)?;
            let (r, id) = (b.get_u32(), b.get_u64());
            self.last_req.insert(r, id);
        }
        need(&b, 4)?;
        let n = b.get_u32();
        self.reply_cache.clear();
        for _ in 0..n {
            need(&b, 18)?;
            let rank = b.get_u32();
            let rid = b.get_u64();
            let kind = MsgKind::from_u16(b.get_u16()).ok_or(HomeError::Protocol(
                ProtocolError::BadMessage("snapshot reply kind unknown"),
            ))?;
            let plen = b.get_u32() as usize;
            need(&b, plen)?;
            let payload = b.split_to(plen);
            self.reply_cache.insert(rank, (rid, kind, payload));
        }
        need(&b, 4)?;
        let n = b.get_u32();
        self.entry_home.clear();
        for _ in 0..n {
            need(&b, 12)?;
            let (entry, shard, epoch) = (b.get_u32(), b.get_u32(), b.get_u32());
            self.entry_home.insert(entry, (shard, epoch));
        }
        Ok(())
    }

    /// Keep answering retransmissions for `linger` after shutdown, so
    /// clients whose final reply was dropped can still complete.
    fn linger_drain(&mut self) -> Result<(), HomeError> {
        let deadline = self.clock.now() + self.linger;
        loop {
            let left = deadline.saturating_since(self.clock.now());
            if left.is_zero() {
                return Ok(());
            }
            let msg = match self.ep.recv_timeout(left) {
                Ok(m) => m,
                Err(NetError::Timeout) | Err(NetError::ChannelClosed) => return Ok(()),
                Err(e) => return Err(e.into()),
            };
            let epoch_wire = self.replicated() && DsdMsg::epoch_stamped(msg.kind);
            let (req_id, decoded) = if epoch_wire {
                match DsdMsg::decode_enveloped_epoch(msg.kind, msg.payload) {
                    Ok((r, _, d)) => (r, d),
                    Err(_) => continue,
                }
            } else {
                match DsdMsg::decode_enveloped(msg.kind, msg.payload) {
                    Ok(x) => x,
                    Err(_) => continue,
                }
            };
            let Some(rank) = decoded.sender_rank() else {
                continue;
            };
            self.routes.insert(rank, msg.src);
            if matches!(decoded, DsdMsg::Heartbeat { .. }) {
                continue;
            }
            if self.dead.contains(&rank) {
                self.last_req.insert(rank, req_id);
                let lost = self.worker_lost_msg(rank);
                let _ = self.send(rank, lost);
                continue;
            }
            match self.reply_cache.get(&rank) {
                Some((rid, kind, payload)) if *rid == req_id => {
                    let (kind, payload) = (*kind, payload.clone());
                    let ep_rank = *self.routes.get(&rank).unwrap();
                    let op = self.op_of(rank);
                    let _ = self.net_send(ep_rank, kind, payload, op);
                }
                _ if req_id > self.last_req.get(&rank).copied().unwrap_or(0) => {
                    // A new request after shutdown can only be a stray
                    // late join (or a client that missed the broadcast):
                    // answer Shutdown so it terminates.
                    self.last_req.insert(rank, req_id);
                    let _ = self.send(rank, DsdMsg::Shutdown);
                }
                _ => {}
            }
        }
    }

    /// Reliability front-end: refresh liveness, deduplicate retransmitted
    /// requests (resending the cached reply), then hand fresh requests to
    /// [`Self::handle`].
    fn dispatch(
        &mut self,
        src_ep: u32,
        req_id: u64,
        msg: DsdMsg,
        op: OpCtx,
    ) -> Result<(), HomeError> {
        if let DsdMsg::Heartbeat { rank } = msg {
            self.routes.insert(rank, src_ep);
            self.touch(rank);
            return Ok(());
        }
        let Some(rank) = msg.sender_rank() else {
            // Rankless messages (e.g. stray Acks) carry no liveness or
            // dedup state; let handle() report the violation.
            return self.handle(src_ep, msg);
        };
        self.routes.insert(rank, src_ep);
        self.touch(rank);
        if op.is_some() {
            // Remember which sync op this thread is blocked in, so its
            // reply (possibly deferred past other requests) and the spans
            // spent serving it are attributed to the right op.
            self.op_ctx.insert(rank, op);
        }
        if self.dead.contains(&rank) {
            // A declared-dead worker resurfaced (e.g. a healed partition
            // after its lease expired). Its synchronisation state is
            // gone; tell it so instead of corrupting the tables. If it
            // already hung up again, there is nobody left to tell.
            self.last_req.insert(rank, req_id);
            let lost = self.worker_lost_msg(rank);
            return match self.send(rank, lost) {
                Err(HomeError::Net(NetError::Disconnected(_))) => Ok(()),
                other => other,
            };
        }
        if self.closed.contains(&rank) {
            // The rank's session already shut down and its cached reply
            // was purged; whether this is a Join retransmission or a
            // stray late operation, the only correct answer is Shutdown
            // (sent uncached, so the purge stays permanent).
            if req_id != 0 {
                let last = self.last_req.entry(rank).or_insert(0);
                *last = (*last).max(req_id);
            }
            return self.resend_shutdown_uncached(rank);
        }
        if req_id != 0 {
            let last = self.last_req.get(&rank).copied().unwrap_or(0);
            if req_id < last {
                return Ok(()); // stale retransmission of an older request
            }
            if req_id == last {
                // Duplicate of the current request: the reply (if already
                // produced) was lost — resend it verbatim. If the reply
                // is still pending (deferred grant/release), ignore.
                if let Some((rid, kind, payload)) = self.reply_cache.get(&rank) {
                    if *rid == req_id {
                        let (kind, payload) = (*kind, payload.clone());
                        let ep_rank = *self.routes.get(&rank).unwrap();
                        // A requester only hangs up once it has its reply
                        // (and, under a sharded home, every other shard's):
                        // a dropped endpoint means the duplicate outlived
                        // its sender, not that the reply was lost.
                        let op = self.op_of(rank);
                        match self.net_send(ep_rank, kind, payload, op) {
                            Err(NetError::Disconnected(_)) => {}
                            other => other?,
                        }
                    }
                }
                return Ok(());
            }
            self.last_req.insert(rank, req_id);
            self.reply_cache.remove(&rank);
        }
        self.handle(src_ep, msg)
    }

    /// Refresh a participant's liveness timestamp.
    fn touch(&mut self, rank: u32) {
        if self.participants.contains(&rank)
            && !self.dead.contains(&rank)
            && !self.closed.contains(&rank)
        {
            self.last_heard.insert(rank, self.clock.now());
        }
    }

    /// Declare participants dead whose lease has expired.
    fn check_leases(&mut self) -> Result<(), HomeError> {
        let Some(lease) = self.lease else {
            return Ok(());
        };
        let now = self.clock.now();
        // Sorted so that simultaneous expiries are declared in rank
        // order, not hash-set order — the declaration order decides who
        // inherits contended locks, and sim reproducibility needs it
        // fixed.
        let mut expired: Vec<u32> = self
            .participants
            .iter()
            .filter(|r| !self.joined.contains(r) && !self.dead.contains(r))
            .filter(|r| {
                self.last_heard
                    .get(r)
                    .map(|t| now.saturating_since(*t) > lease)
                    .unwrap_or(true)
            })
            .copied()
            .collect();
        expired.sort_unstable();
        for r in expired {
            // Ship the expiry decision down the replication stream first
            // (it is timing-dependent; the shadow must not re-derive it).
            let decision = self.worker_lost_msg(r);
            self.relay_decision(decision)?;
            self.declare_dead(r)?;
        }
        Ok(())
    }

    /// Reclaim a dead worker's synchronisation state: release its locks
    /// (granting the next waiter), drop it from wait queues, and fail any
    /// barrier it was blocking with [`DsdMsg::WorkerLost`].
    fn declare_dead(&mut self, rank: u32) -> Result<(), HomeError> {
        self.dead.insert(rank);
        // Attributed to the dead rank's last known op — the op whose
        // participants will observe the expiry.
        self.recorder.instant_op(
            self.ep.rank(),
            EventKind::LeaseExpired,
            rank as u64,
            0,
            "",
            self.op_of(rank),
        );
        self.recorder.count("home.leases_expired", 1);
        self.recorder
            .blackbox_trigger_once("lease-expired", rank as u64);
        for idx in 0..self.locks.len() {
            self.locks[idx].waiters.retain(|&w| w != rank);
            if self.locks[idx].holder == Some(rank) {
                self.locks[idx].holder = None;
                while let Some(next) = self.locks[idx].waiters.pop_front() {
                    if self.dead.contains(&next) {
                        continue;
                    }
                    self.locks[idx].holder = Some(next);
                    self.grant(idx as u32, next)?;
                    break;
                }
            }
        }
        for c in &mut self.conds {
            c.waiters.retain(|&(w, _)| w != rank);
        }
        // Any barrier of the dead worker's session with entrants is now
        // permanently stuck (the dead worker can never enter): fail the
        // survivors. Other sessions' barriers are untouched — a tenant
        // crash must not bleed across the namespace boundary.
        let dead_session = self.session_of_rank(rank).map(|t| t.session);
        for idx in 0..self.barriers.len() {
            if !self.sessions.is_empty()
                && self.session_of_barrier(idx as u32).map(|t| t.session) != dead_session
            {
                continue;
            }
            let entered = std::mem::take(&mut self.barriers[idx].entered);
            for r in entered {
                if !self.dead.contains(&r) {
                    let lost = self.worker_lost_msg(rank);
                    self.send(r, lost)?;
                }
            }
        }
        // The death may complete its session's membership (survivors
        // already joined): close it now rather than waiting for a Join
        // that can never come.
        self.maybe_close_session(rank)?;
        Ok(())
    }

    /// Does this shard home synchronization object `id` of kind `what`
    /// (per `shard_of`)? Misrouted operations are protocol violations.
    fn check_owner(
        &self,
        what: &'static str,
        id: u32,
        shard_of: impl Fn(&Directory, u32) -> u32,
    ) -> Result<(), HomeError> {
        let owner = shard_of(&self.directory, id);
        if owner != self.shard {
            return Err(HomeError::Violation(format!(
                "{what} {id} homed at shard {owner}, not shard {}",
                self.shard
            )));
        }
        Ok(())
    }

    fn handle(&mut self, src_ep: u32, msg: DsdMsg) -> Result<(), HomeError> {
        match msg {
            DsdMsg::LockRequest { lock, rank } => {
                self.routes.insert(rank, src_ep);
                self.check_owner("lock", lock, Directory::lock_shard)?;
                let idx = lock as usize;
                if idx >= self.locks.len() {
                    return Err(HomeError::Violation(format!("no lock {lock}")));
                }
                if self.locks[idx].holder.is_none() {
                    self.locks[idx].holder = Some(rank);
                    self.grant(lock, rank)?;
                } else {
                    self.locks[idx].waiters.push_back(rank);
                }
                Ok(())
            }
            DsdMsg::UnlockRequest {
                lock,
                rank,
                updates,
            } => {
                self.routes.insert(rank, src_ep);
                self.check_owner("lock", lock, Directory::lock_shard)?;
                let idx = lock as usize;
                if idx >= self.locks.len() {
                    return Err(HomeError::Violation(format!("no lock {lock}")));
                }
                if self.locks[idx].holder != Some(rank) {
                    return Err(HomeError::Violation(format!(
                        "thread {rank} unlocking mutex {lock} held by {:?}",
                        self.locks[idx].holder
                    )));
                }
                if self.bounce_moved(rank, &updates)? {
                    // Stale placement view: nothing absorbed, lock still
                    // held — the client re-routes and retries the release.
                    return Ok(());
                }
                self.absorb(rank, &updates)?;
                self.locks[idx].holder = None;
                self.send(rank, DsdMsg::UnlockAck { lock })?;
                if let Some(next) = self.locks[idx].waiters.pop_front() {
                    self.locks[idx].holder = Some(next);
                    self.grant(lock, next)?;
                }
                Ok(())
            }
            DsdMsg::BarrierEnter {
                barrier,
                rank,
                updates,
            } => {
                self.routes.insert(rank, src_ep);
                self.check_owner("barrier", barrier, Directory::barrier_shard)?;
                let idx = barrier as usize;
                if idx >= self.barriers.len() {
                    return Err(HomeError::Violation(format!("no barrier {barrier}")));
                }
                if self.bounce_moved(rank, &updates)? {
                    return Ok(()); // client re-routes and re-enters
                }
                self.absorb(rank, &updates)?;
                if let Some(lost) = self.blocking_dead(rank) {
                    // The barrier can never complete with a dead
                    // participant of its session outstanding: fail fast.
                    let lost_msg = self.worker_lost_msg(lost);
                    return self.send(rank, lost_msg);
                }
                self.barriers[idx].entered.push(rank);
                let waiting_for = self.barrier_waiting_for(barrier);
                if self.barriers[idx].entered.len() >= waiting_for {
                    let entered = std::mem::take(&mut self.barriers[idx].entered);
                    for r in entered {
                        let updates = self.stale_updates_for(r)?;
                        self.send(r, DsdMsg::BarrierRelease { barrier, updates })?;
                    }
                }
                Ok(())
            }
            DsdMsg::Join { rank } => {
                self.routes.insert(rank, src_ep);
                if !self.participants.contains(&rank) {
                    return Err(HomeError::Violation(format!(
                        "unknown participant {rank} joining"
                    )));
                }
                self.joined.insert(rank);
                self.maybe_close_session(rank)?;
                Ok(())
            }
            DsdMsg::CondWait {
                cond,
                lock,
                rank,
                updates,
            } => {
                self.routes.insert(rank, src_ep);
                self.check_owner("cond", cond, Directory::cond_shard)?;
                self.check_owner("lock", lock, Directory::lock_shard)?;
                let cidx = cond as usize;
                let lidx = lock as usize;
                if cidx >= self.conds.len() {
                    return Err(HomeError::Violation(format!("no cond {cond}")));
                }
                if lidx >= self.locks.len() {
                    return Err(HomeError::Violation(format!("no lock {lock}")));
                }
                if self.locks[lidx].holder != Some(rank) {
                    return Err(HomeError::Violation(format!(
                        "thread {rank} cond-waiting without holding mutex {lock}"
                    )));
                }
                if self.bounce_moved(rank, &updates)? {
                    return Ok(()); // client re-routes and retries the wait
                }
                // Atomic release + sleep: absorb the waiter's updates,
                // free the mutex (waking the next contender), park.
                self.absorb(rank, &updates)?;
                self.locks[lidx].holder = None;
                if let Some(next) = self.locks[lidx].waiters.pop_front() {
                    self.locks[lidx].holder = Some(next);
                    self.grant(lock, next)?;
                }
                self.conds[cidx].waiters.push_back((rank, lock));
                Ok(())
            }
            DsdMsg::CondSignal {
                cond,
                rank,
                broadcast,
            } => {
                self.routes.insert(rank, src_ep);
                self.check_owner("cond", cond, Directory::cond_shard)?;
                let cidx = cond as usize;
                if cidx >= self.conds.len() {
                    return Err(HomeError::Violation(format!("no cond {cond}")));
                }
                let wake = if broadcast {
                    std::mem::take(&mut self.conds[cidx].waiters)
                } else {
                    self.conds[cidx].waiters.pop_front().into_iter().collect()
                };
                for (waiter, lock) in wake {
                    // A woken thread must re-acquire its mutex before its
                    // cond_wait returns — queue it like a lock requester.
                    let lidx = lock as usize;
                    if self.locks[lidx].holder.is_none() {
                        self.locks[lidx].holder = Some(waiter);
                        self.grant(lock, waiter)?;
                    } else {
                        self.locks[lidx].waiters.push_back(waiter);
                    }
                }
                self.send(rank, DsdMsg::Ack)
            }
            DsdMsg::Resync { rank } => {
                self.routes.insert(rank, src_ep);
                // Cold copy: force a full refresh at the next acquire by
                // dropping the horizon below the log floor (or to zero).
                self.seen.insert(rank, 0);
                if self.log_floor == 0 && self.seq > 0 {
                    // Ensure "below floor" semantics even without
                    // compaction: raise the floor to the current sequence
                    // and prune nothing (full_ranges covers everything).
                    self.log_floor = self.log_floor.max(1);
                }
                self.send(rank, DsdMsg::Ack)
            }
            DsdMsg::UpdateFlush { rank, updates } => {
                // Release-time fan-out from a thread whose critical
                // section touched this shard's slice but whose release
                // goes to another shard. Absorb and ack; the thread holds
                // its release until the ack arrives, so the next acquirer
                // of any mutex is guaranteed to fetch these updates.
                self.routes.insert(rank, src_ep);
                if self.bounce_moved(rank, &updates)? {
                    return Ok(()); // client re-routes and re-flushes
                }
                self.absorb(rank, &updates)?;
                self.send(rank, DsdMsg::Ack)
            }
            DsdMsg::UpdateFetch { rank } => {
                // Acquire-time pull: the thread just acquired at another
                // shard and needs this shard's outstanding updates too.
                self.routes.insert(rank, src_ep);
                let updates = self.stale_updates_for(rank)?;
                self.send(rank, DsdMsg::UpdateBatch { updates })
            }
            other => Err(HomeError::Violation(format!(
                "home received unexpected {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    // The home service is exercised end-to-end in client.rs and the
    // integration suite; unit tests here cover bookkeeping edge cases
    // that are hard to reach through the full stack.
    use super::*;
    use crate::gthv::GthvDef;
    use hdsm_net::endpoint::Network;
    use hdsm_net::stats::NetConfig;
    use hdsm_platform::ctype::StructBuilder;
    use hdsm_platform::scalar::ScalarKind;
    use hdsm_platform::spec::PlatformSpec;

    fn tiny_def() -> GthvDef {
        GthvDef::new(
            StructBuilder::new("G")
                .array("xs", ScalarKind::Int, 64)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn init_logs_full_structure() {
        let (_net, mut eps) = Network::new(1, NetConfig::instant());
        let gthv = GthvInstance::new(tiny_def(), PlatformSpec::linux_x86());
        let mut h = HomeService::new(
            gthv,
            eps.pop().unwrap(),
            HomeConfig {
                n_locks: 1,
                n_barriers: 1,
                n_conds: 0,
                participants: vec![1],
                ..Default::default()
            },
        );
        h.init_with(|g| {
            for i in 0..64 {
                g.write_int(0, i, i as i128).unwrap();
            }
        });
        assert_eq!(h.seq, 1);
        assert_eq!(h.log.len(), 1);
        assert_eq!(h.log[0].2.count, 64);
        assert_eq!(h.gthv().read_int(0, 63).unwrap(), 63);
    }

    #[test]
    fn stale_updates_respect_horizon() {
        let (_net, mut eps) = Network::new(1, NetConfig::instant());
        let gthv = GthvInstance::new(tiny_def(), PlatformSpec::linux_x86());
        let mut h = HomeService::new(
            gthv,
            eps.pop().unwrap(),
            HomeConfig {
                n_locks: 1,
                n_barriers: 0,
                n_conds: 0,
                participants: vec![1, 2],
                ..Default::default()
            },
        );
        h.init_with(|g| g.write_int(0, 0, 42).unwrap());
        // Thread 1 pulls: gets the init batch.
        let ups = h.stale_updates_for(1).unwrap();
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].tag.element_count(), 64);
        // Pulling again with nothing new: empty.
        assert!(h.stale_updates_for(1).unwrap().is_empty());
        // Thread 2 still sees everything.
        assert_eq!(h.stale_updates_for(2).unwrap().len(), 1);
    }

    #[test]
    fn resync_forces_full_refresh() {
        let (_net, mut eps) = Network::new(1, NetConfig::instant());
        let gthv = GthvInstance::new(tiny_def(), PlatformSpec::linux_x86());
        let mut h = HomeService::new(
            gthv,
            eps.pop().unwrap(),
            HomeConfig {
                n_locks: 1,
                n_barriers: 0,
                n_conds: 0,
                participants: vec![1],
                ..Default::default()
            },
        );
        h.init_with(|g| g.write_int(0, 7, 7).unwrap());
        let _ = h.stale_updates_for(1).unwrap();
        assert!(h.stale_updates_for(1).unwrap().is_empty());
        // Simulate migration: cold copy.
        h.handle(0, DsdMsg::Resync { rank: 1 }).unwrap();
        let ups = h.stale_updates_for(1).unwrap();
        assert_eq!(ups.len(), 1, "full refresh after resync");
        assert_eq!(ups[0].tag.element_count(), 64);
    }

    #[test]
    fn compaction_preserves_refresh_capability() {
        let (_net, mut eps) = Network::new(1, NetConfig::instant());
        let gthv = GthvInstance::new(tiny_def(), PlatformSpec::linux_x86());
        let mut h = HomeService::new(
            gthv,
            eps.pop().unwrap(),
            HomeConfig {
                n_locks: 1,
                n_barriers: 0,
                n_conds: 0,
                participants: vec![1, 2],
                ..Default::default()
            },
        );
        // Thread 1 keeps up; generate enough absorbed batches to trigger
        // compaction.
        for i in 0..5000u64 {
            let mut src = GthvInstance::new(tiny_def(), PlatformSpec::linux_x86());
            src.write_int(0, i % 64, i as i128).unwrap();
            let ups = extract_updates(
                &src,
                &[UpdateRange {
                    entry: 0,
                    first: (i % 64),
                    count: 1,
                }],
            )
            .unwrap();
            h.absorb(9, &ups).unwrap();
            if i % 2 == 0 {
                let _ = h.stale_updates_for(1).unwrap();
                let _ = h.stale_updates_for(2).unwrap();
            }
        }
        assert!(h.log.len() < 5000, "log was never compacted");
        // A thread below the floor still gets a full refresh.
        h.seen.insert(2, 0);
        assert!(h.log_floor > 0);
        let ups = h.stale_updates_for(2).unwrap();
        assert_eq!(ups[0].tag.element_count(), 64);
    }

    #[test]
    fn sharded_home_owns_only_its_slice() {
        let def = || {
            GthvDef::new(
                StructBuilder::new("G")
                    .array("a", ScalarKind::Int, 8)
                    .array("b", ScalarKind::Int, 8)
                    .build()
                    .unwrap(),
            )
            .unwrap()
        };
        let (_net, mut eps) = Network::new(1, NetConfig::instant());
        let gthv = GthvInstance::new(def(), PlatformSpec::linux_x86());
        let mut h = HomeShard::new(
            gthv,
            eps.pop().unwrap(),
            HomeConfig {
                participants: vec![1],
                shard: 1,
                directory: Directory::new(2),
                ..Default::default()
            },
        );
        h.init_with(|g| {
            for i in 0..8 {
                g.write_int(0, i, 1).unwrap();
                g.write_int(1, i, 2).unwrap();
            }
        });
        // Entry 0 belongs to shard 0; this shard logs and serves only
        // entry 1.
        assert!(!h.log.is_empty());
        assert!(h.log.iter().all(|(_, _, r)| r.entry == 1));
        let ups = h.stale_updates_for(1).unwrap();
        assert!(!ups.is_empty());
        assert!(ups.iter().all(|u| u.entry == 1));
        // A misrouted update for entry 0 is a protocol violation, not a
        // silent write into a non-authoritative copy.
        let mut src = GthvInstance::new(def(), PlatformSpec::linux_x86());
        src.write_int(0, 0, 9).unwrap();
        let bad = extract_updates(
            &src,
            &[UpdateRange {
                entry: 0,
                first: 0,
                count: 1,
            }],
        )
        .unwrap();
        assert!(matches!(h.absorb(1, &bad), Err(HomeError::Violation(_))));
    }
}
