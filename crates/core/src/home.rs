//! The home node's stub service, shardable across several owners.
//!
//! Paper §3.1/§4: after local threads migrate away, stub threads remain at
//! the home node "for future resource access" — they own the authoritative
//! copy of `GThV`, the lock table and the barrier table, and serve
//! lock/unlock/barrier/join requests from every computing thread.
//!
//! The service is a [`HomeShard`]: one of `S` independent owners between
//! which the [`crate::directory::Directory`] partitions index-table
//! entries, mutexes, barriers and condition variables. Each shard keeps
//! authoritative bytes, update log, sequence horizon, lease table and
//! at-most-once dedup state for *its slice only*, and shards never talk
//! to each other — clients fan released updates out to the owning shards
//! (`UpdateFlush`) before releasing, and pull outstanding updates from
//! every non-granting shard (`UpdateFetch`) after acquiring. With `S == 1`
//! (the default directory) a shard *is* the classic single home service
//! and produces a byte-identical message sequence.
//!
//! Consistency bookkeeping is a sequence-numbered update log: every
//! absorbed [`UpdateRange`] is logged under a global sequence number, and
//! each thread records the highest sequence it has seen. A grant or
//! barrier release ships the *current authoritative bytes* of every range
//! logged after the thread's horizon — so updates naturally batch up for
//! threads that have not synchronized in a while (the paper's Figure 9
//! "batch update" spike is this mechanism at work).

use crate::costs::CostBreakdown;
use crate::directory::Directory;
use crate::gthv::GthvInstance;
use crate::protocol::{DsdMsg, ProtocolError};
use crate::runs::{coalesce, UpdateRange};
use crate::update::{apply_batch_mode, extract_updates, full_ranges, UpdateError};
use bytes::Bytes;
use hdsm_net::endpoint::{Endpoint, NetError};
use hdsm_net::message::MsgKind;
use hdsm_obs::{EventKind, OpCtx, Recorder};
use hdsm_tags::convert::ConversionStats;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::time::{Duration, Instant};

/// Configuration of the home service.
#[derive(Debug, Clone)]
pub struct HomeConfig {
    /// Number of distributed mutexes.
    pub n_locks: u32,
    /// Number of barriers.
    pub n_barriers: u32,
    /// Number of condition variables.
    pub n_conds: u32,
    /// Thread ranks that will participate (barriers wait for all of them;
    /// the program ends when all of them join).
    pub participants: Vec<u32>,
    /// Liveness lease: a participant that has neither joined nor been
    /// heard from (any message, including heartbeats) for this long is
    /// declared dead — its locks are reclaimed and blocked barrier
    /// entrants receive [`DsdMsg::WorkerLost`]. `None` disables failure
    /// detection (the service blocks forever, pre-reliability behaviour).
    pub lease: Option<Duration>,
    /// How long the service keeps answering retransmissions after the
    /// final shutdown broadcast, so clients whose last reply was dropped
    /// by a faulty fabric can still complete.
    pub linger: Duration,
    /// Observability hook for home-side spans (absorb/extract timing,
    /// lease expiries). Disabled by default.
    pub recorder: Recorder,
    /// Use the compiled-plan apply path and the grouped v2 wire format
    /// (default). The differential suite turns this off to compare against
    /// the original slow paths.
    pub fast_path: bool,
    /// Which shard of the home service this instance is (`0..S`).
    pub shard: u32,
    /// The deterministic entry/lock/barrier → shard partition shared by
    /// the whole cluster. Defaults to the single-home layout.
    pub directory: Directory,
}

impl Default for HomeConfig {
    fn default() -> Self {
        HomeConfig {
            n_locks: 1,
            n_barriers: 1,
            n_conds: 0,
            participants: Vec::new(),
            lease: None,
            linger: Duration::ZERO,
            recorder: Recorder::disabled(),
            fast_path: true,
            shard: 0,
            directory: Directory::single(),
        }
    }
}

/// Errors surfaced by the home service loop.
#[derive(Debug)]
pub enum HomeError {
    /// Transport failure.
    Net(NetError),
    /// Malformed message.
    Protocol(ProtocolError),
    /// Update application failed.
    Update(UpdateError),
    /// Protocol violation (e.g. unlocking a mutex the thread doesn't hold).
    Violation(String),
}

impl fmt::Display for HomeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HomeError::Net(e) => write!(f, "net: {e}"),
            HomeError::Protocol(e) => write!(f, "protocol: {e}"),
            HomeError::Update(e) => write!(f, "update: {e}"),
            HomeError::Violation(s) => write!(f, "protocol violation: {s}"),
        }
    }
}

impl std::error::Error for HomeError {}

impl From<NetError> for HomeError {
    fn from(e: NetError) -> Self {
        HomeError::Net(e)
    }
}
impl From<ProtocolError> for HomeError {
    fn from(e: ProtocolError) -> Self {
        HomeError::Protocol(e)
    }
}
impl From<UpdateError> for HomeError {
    fn from(e: UpdateError) -> Self {
        HomeError::Update(e)
    }
}

/// Writer id used for home-side initialisation log entries.
const HOME_WRITER: u32 = u32::MAX;

#[derive(Debug, Default)]
struct LockState {
    holder: Option<u32>,
    waiters: VecDeque<u32>,
}

#[derive(Debug, Default)]
struct BarrierState {
    entered: Vec<u32>,
}

#[derive(Debug, Default)]
struct CondState {
    /// Parked threads with the mutex each must re-acquire on wake.
    waiters: VecDeque<(u32, u32)>,
}

/// One shard of the home service: owns the authoritative bytes, update
/// log and synchronization tables of its directory slice and runs the
/// message loop until every participant has joined. A cluster with a
/// single shard is exactly the classic home service.
pub struct HomeShard {
    gthv: GthvInstance,
    ep: Endpoint,
    shard: u32,
    directory: Directory,
    locks: Vec<LockState>,
    barriers: Vec<BarrierState>,
    conds: Vec<CondState>,
    /// Global sequence counter for absorbed updates.
    seq: u64,
    /// Update log: `(seq, writer, range)` in absorption order. The
    /// writer rank lets grants exclude a thread's own updates without
    /// corrupting its horizon (a thread has by definition "seen" what it
    /// wrote itself, but nothing else absorbed in between).
    log: Vec<(u64, u32, UpdateRange)>,
    /// Oldest sequence still in the log; horizons below this need a full
    /// refresh (log compaction / cold migrated copies).
    log_floor: u64,
    /// Highest sequence each thread has seen.
    seen: HashMap<u32, u64>,
    /// Transport endpoint of each thread's latest message.
    routes: HashMap<u32, u32>,
    participants: HashSet<u32>,
    joined: HashSet<u32>,
    /// Participants declared dead by the lease detector.
    dead: HashSet<u32>,
    /// Last time each participant was heard from (any message).
    last_heard: HashMap<u32, Instant>,
    /// Highest request id handled per thread (at-most-once dedup).
    last_req: HashMap<u32, u64>,
    /// Last reply sent to each thread, resent verbatim when the same
    /// request id arrives again (the reply, not the request, was lost).
    reply_cache: HashMap<u32, (u64, MsgKind, Bytes)>,
    lease: Option<Duration>,
    linger: Duration,
    costs: CostBreakdown,
    conv_stats: ConversionStats,
    recorder: Recorder,
    fast_path: bool,
    /// The sync operation each thread's outstanding request is doing work
    /// for (from the request's trace context), so replies — including
    /// deferred grants and barrier releases — and home-side spans are
    /// attributed to the op that caused them. Empty when obs is disabled.
    op_ctx: HashMap<u32, OpCtx>,
}

/// The pre-sharding name of [`HomeShard`], kept for downstream code that
/// spawns a single home service directly.
pub type HomeService = HomeShard;

impl HomeShard {
    /// Create the service around the authoritative instance.
    pub fn new(gthv: GthvInstance, ep: Endpoint, config: HomeConfig) -> HomeShard {
        let locks = (0..config.n_locks).map(|_| LockState::default()).collect();
        let barriers = (0..config.n_barriers)
            .map(|_| BarrierState::default())
            .collect();
        let conds = (0..config.n_conds).map(|_| CondState::default()).collect();
        HomeShard {
            gthv,
            ep,
            shard: config.shard,
            directory: config.directory,
            locks,
            barriers,
            conds,
            seq: 0,
            log: Vec::new(),
            log_floor: 0,
            seen: config.participants.iter().map(|&r| (r, 0)).collect(),
            routes: HashMap::new(),
            participants: config.participants.into_iter().collect(),
            joined: HashSet::new(),
            dead: HashSet::new(),
            last_heard: HashMap::new(),
            last_req: HashMap::new(),
            reply_cache: HashMap::new(),
            lease: config.lease,
            linger: config.linger,
            costs: CostBreakdown::default(),
            conv_stats: ConversionStats::default(),
            recorder: config.recorder,
            fast_path: config.fast_path,
            op_ctx: HashMap::new(),
        }
    }

    /// The sync op thread `rank`'s outstanding request belongs to.
    fn op_of(&self, rank: u32) -> OpCtx {
        self.op_ctx.get(&rank).copied().unwrap_or_default()
    }

    /// Initialise the authoritative copy and log this shard's slice of the
    /// structure as one big update, so every thread pulls the initial
    /// contents at its first acquire. Every shard runs the same
    /// initialiser; each logs (and later serves) only the entries it owns,
    /// so with one shard the whole structure is logged exactly as before.
    pub fn init_with<F: FnOnce(&mut GthvInstance)>(&mut self, f: F) {
        f(&mut self.gthv);
        self.seq += 1;
        let s = self.seq;
        let owned = self.owned_full_ranges();
        self.log
            .extend(owned.into_iter().map(|r| (s, HOME_WRITER, r)));
    }

    /// Authoritative instance (read access for inspection). Under a
    /// sharded home only the entries this shard owns are authoritative.
    pub fn gthv(&self) -> &GthvInstance {
        &self.gthv
    }

    /// Full-structure ranges restricted to the entries this shard owns.
    fn owned_full_ranges(&self) -> Vec<UpdateRange> {
        let mut ranges = full_ranges(&self.gthv);
        if self.directory.n_shards() > 1 {
            ranges.retain(|r| self.directory.entry_shard(r.entry) == self.shard);
        }
        ranges
    }

    /// Absorb a batch of incoming updates: unpack time was already spent
    /// decoding; here we apply (t_conv) and log the ranges.
    fn absorb(
        &mut self,
        writer: u32,
        updates: &[hdsm_tags::wire::WireUpdate],
    ) -> Result<(), HomeError> {
        if updates.is_empty() {
            return Ok(());
        }
        if self.directory.n_shards() > 1 {
            // Routing bugs must not silently corrupt another shard's
            // slice: this shard is only authoritative for what it owns.
            if let Some(u) = updates
                .iter()
                .find(|u| self.directory.entry_shard(u.entry) != self.shard)
            {
                return Err(HomeError::Violation(format!(
                    "shard {} received update for entry {} owned by shard {}",
                    self.shard,
                    u.entry,
                    self.directory.entry_shard(u.entry)
                )));
            }
        }
        let t0 = Instant::now();
        {
            let mut span = self.recorder.span(self.ep.rank(), EventKind::Convert);
            span.args(
                updates.len() as u64,
                updates.iter().map(|u| u.data.len() as u64).sum(),
            );
            span.op(self.op_of(writer));
            apply_batch_mode(
                &mut self.gthv,
                updates,
                &mut self.conv_stats,
                self.fast_path,
            )?;
        }
        self.costs.t_conv += t0.elapsed();
        self.costs.updates_applied += updates.len() as u64;
        self.costs.bytes_applied += updates.iter().map(|u| u.data.len() as u64).sum::<u64>();
        self.seq += 1;
        let s = self.seq;
        for u in updates {
            self.log.push((
                s,
                writer,
                UpdateRange {
                    entry: u.entry,
                    first: u.elem_offset,
                    count: u.tag.element_count(),
                },
            ));
        }
        self.maybe_compact();
        Ok(())
    }

    /// Drop log entries every participant has already seen.
    fn maybe_compact(&mut self) {
        if self.log.len() < 4096 {
            return;
        }
        let min_seen = self
            .participants
            .iter()
            .filter(|r| !self.joined.contains(r))
            .map(|r| self.seen.get(r).copied().unwrap_or(0))
            .min()
            .unwrap_or(self.seq);
        self.log.retain(|(s, _, _)| *s > min_seen);
        self.log_floor = self.log_floor.max(min_seen);
    }

    /// Updates thread `rank` has not seen, as freshly extracted wire
    /// frames (t_tag for range coalescing + t_pack accounted by caller's
    /// encode; extraction itself is charged to t_pack).
    fn stale_updates_for(
        &mut self,
        rank: u32,
    ) -> Result<Vec<hdsm_tags::wire::WireUpdate>, HomeError> {
        let horizon = self.seen.get(&rank).copied().unwrap_or(0);
        let t_tag0 = Instant::now();
        let ranges: Vec<UpdateRange>;
        {
            let mut span = self.recorder.span(self.ep.rank(), EventKind::TagBuild);
            span.op(self.op_of(rank));
            ranges = if horizon < self.log_floor {
                // The thread's horizon predates the log: full refresh of
                // this shard's slice.
                self.owned_full_ranges()
            } else {
                coalesce(
                    self.log
                        .iter()
                        .filter(|(s, w, _)| *s > horizon && *w != rank)
                        .map(|(_, _, r)| *r)
                        .collect(),
                )
            };
            span.args(ranges.len() as u64, rank as u64);
        }
        self.costs.t_tag += t_tag0.elapsed();
        let t_pack0 = Instant::now();
        let ups;
        {
            let mut span = self.recorder.span(self.ep.rank(), EventKind::Pack);
            span.op(self.op_of(rank));
            ups = extract_updates(&self.gthv, &ranges)?;
            span.args(
                ups.iter().map(|u| u.data.len() as u64).sum(),
                ups.len() as u64,
            );
        }
        self.costs.t_pack += t_pack0.elapsed();
        self.costs.updates_sent += ups.len() as u64;
        self.costs.bytes_sent += ups.iter().map(|u| u.data.len() as u64).sum::<u64>();
        self.seen.insert(rank, self.seq);
        Ok(ups)
    }

    /// Send a reply to thread `rank`, enveloped with the request id of
    /// its outstanding request, and cache it for retransmission.
    fn send(&mut self, rank: u32, msg: DsdMsg) -> Result<(), HomeError> {
        let ep_rank = *self
            .routes
            .get(&rank)
            .ok_or_else(|| HomeError::Violation(format!("no route for thread {rank}")))?;
        let req_id = self.last_req.get(&rank).copied().unwrap_or(0);
        let t0 = Instant::now();
        let payload = msg.encode_enveloped_mode(req_id, self.fast_path);
        self.costs.t_pack += t0.elapsed();
        self.reply_cache
            .insert(rank, (req_id, msg.kind(), payload.clone()));
        // The reply — including a deferred grant or barrier release —
        // belongs to the op the requester is blocked in.
        self.ep
            .send_op(ep_rank, msg.kind(), payload, self.op_of(rank))?;
        Ok(())
    }

    fn grant(&mut self, lock: u32, rank: u32) -> Result<(), HomeError> {
        let updates = self.stale_updates_for(rank)?;
        self.send(rank, DsdMsg::LockGrant { lock, updates })
    }

    /// Run the service loop until all live participants joined. Returns
    /// the authoritative instance and the home-side cost breakdown.
    pub fn run(mut self) -> Result<(GthvInstance, CostBreakdown, ConversionStats), HomeError> {
        let now = Instant::now();
        for &r in &self.participants {
            self.last_heard.insert(r, now);
        }
        while self.joined.len() + self.dead.len() < self.participants.len() {
            let msg = if let Some(lease) = self.lease {
                let tick = (lease / 4).max(Duration::from_millis(10));
                match self.ep.recv_timeout(tick) {
                    Ok(m) => Some(m),
                    Err(NetError::Timeout) => None,
                    Err(e) => return Err(e.into()),
                }
            } else {
                Some(self.ep.recv()?)
            };
            if let Some(msg) = msg {
                let op = msg.trace.map(|t| t.op).unwrap_or_default();
                let t0 = Instant::now();
                let (req_id, decoded) = {
                    let mut span = self.recorder.span(self.ep.rank(), EventKind::Unpack);
                    span.args(msg.payload.len() as u64, msg.src as u64);
                    span.op(op);
                    DsdMsg::decode_enveloped(msg.kind, msg.payload)?
                };
                self.costs.t_unpack += t0.elapsed();
                self.dispatch(msg.src, req_id, decoded, op)?;
            }
            self.check_leases()?;
        }
        // Every live participant joined: broadcast shutdown. The shutdown
        // is the (deferred) reply to each thread's Join request, so it is
        // cached and resent if the fabric drops it.
        let ranks: Vec<u32> = self.joined.iter().copied().collect();
        for r in ranks {
            // A duplicated copy of this very Shutdown (or a prior shard's)
            // may already have reached the worker, which then exits and
            // drops its endpoint before our enqueue lands. A disconnected
            // client has everything it was owed.
            match self.send(r, DsdMsg::Shutdown) {
                Err(HomeError::Net(NetError::Disconnected(_))) => {}
                other => other?,
            }
        }
        if !self.dead.is_empty() {
            // A declared-dead worker may only be partitioned and will
            // resurface retransmitting; stay around long enough to tell
            // it it was declared lost instead of letting it time out.
            if let Some(lease) = self.lease {
                self.linger = self.linger.max(lease * 2);
            }
        }
        self.linger_drain()?;
        Ok((self.gthv, self.costs, self.conv_stats))
    }

    /// Keep answering retransmissions for `linger` after shutdown, so
    /// clients whose final reply was dropped can still complete.
    fn linger_drain(&mut self) -> Result<(), HomeError> {
        let deadline = Instant::now() + self.linger;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Ok(());
            }
            let msg = match self.ep.recv_timeout(left) {
                Ok(m) => m,
                Err(NetError::Timeout) | Err(NetError::ChannelClosed) => return Ok(()),
                Err(e) => return Err(e.into()),
            };
            let (req_id, decoded) = match DsdMsg::decode_enveloped(msg.kind, msg.payload) {
                Ok(x) => x,
                Err(_) => continue,
            };
            let Some(rank) = decoded.sender_rank() else {
                continue;
            };
            self.routes.insert(rank, msg.src);
            if matches!(decoded, DsdMsg::Heartbeat { .. }) {
                continue;
            }
            if self.dead.contains(&rank) {
                self.last_req.insert(rank, req_id);
                let _ = self.send(rank, DsdMsg::WorkerLost { rank });
                continue;
            }
            match self.reply_cache.get(&rank) {
                Some((rid, kind, payload)) if *rid == req_id => {
                    let (kind, payload) = (*kind, payload.clone());
                    let ep_rank = *self.routes.get(&rank).unwrap();
                    let _ = self.ep.send_op(ep_rank, kind, payload, self.op_of(rank));
                }
                _ if req_id > self.last_req.get(&rank).copied().unwrap_or(0) => {
                    // A new request after shutdown can only be a stray
                    // late join (or a client that missed the broadcast):
                    // answer Shutdown so it terminates.
                    self.last_req.insert(rank, req_id);
                    let _ = self.send(rank, DsdMsg::Shutdown);
                }
                _ => {}
            }
        }
    }

    /// Reliability front-end: refresh liveness, deduplicate retransmitted
    /// requests (resending the cached reply), then hand fresh requests to
    /// [`Self::handle`].
    fn dispatch(
        &mut self,
        src_ep: u32,
        req_id: u64,
        msg: DsdMsg,
        op: OpCtx,
    ) -> Result<(), HomeError> {
        if let DsdMsg::Heartbeat { rank } = msg {
            self.routes.insert(rank, src_ep);
            self.touch(rank);
            return Ok(());
        }
        let Some(rank) = msg.sender_rank() else {
            // Rankless messages (e.g. stray Acks) carry no liveness or
            // dedup state; let handle() report the violation.
            return self.handle(src_ep, msg);
        };
        self.routes.insert(rank, src_ep);
        self.touch(rank);
        if op.is_some() {
            // Remember which sync op this thread is blocked in, so its
            // reply (possibly deferred past other requests) and the spans
            // spent serving it are attributed to the right op.
            self.op_ctx.insert(rank, op);
        }
        if self.dead.contains(&rank) {
            // A declared-dead worker resurfaced (e.g. a healed partition
            // after its lease expired). Its synchronisation state is
            // gone; tell it so instead of corrupting the tables. If it
            // already hung up again, there is nobody left to tell.
            self.last_req.insert(rank, req_id);
            return match self.send(rank, DsdMsg::WorkerLost { rank }) {
                Err(HomeError::Net(NetError::Disconnected(_))) => Ok(()),
                other => other,
            };
        }
        if req_id != 0 {
            let last = self.last_req.get(&rank).copied().unwrap_or(0);
            if req_id < last {
                return Ok(()); // stale retransmission of an older request
            }
            if req_id == last {
                // Duplicate of the current request: the reply (if already
                // produced) was lost — resend it verbatim. If the reply
                // is still pending (deferred grant/release), ignore.
                if let Some((rid, kind, payload)) = self.reply_cache.get(&rank) {
                    if *rid == req_id {
                        let (kind, payload) = (*kind, payload.clone());
                        let ep_rank = *self.routes.get(&rank).unwrap();
                        // A requester only hangs up once it has its reply
                        // (and, under a sharded home, every other shard's):
                        // a dropped endpoint means the duplicate outlived
                        // its sender, not that the reply was lost.
                        match self.ep.send_op(ep_rank, kind, payload, self.op_of(rank)) {
                            Err(NetError::Disconnected(_)) => {}
                            other => other?,
                        }
                    }
                }
                return Ok(());
            }
            self.last_req.insert(rank, req_id);
            self.reply_cache.remove(&rank);
        }
        self.handle(src_ep, msg)
    }

    /// Refresh a participant's liveness timestamp.
    fn touch(&mut self, rank: u32) {
        if self.participants.contains(&rank) && !self.dead.contains(&rank) {
            self.last_heard.insert(rank, Instant::now());
        }
    }

    /// Declare participants dead whose lease has expired.
    fn check_leases(&mut self) -> Result<(), HomeError> {
        let Some(lease) = self.lease else {
            return Ok(());
        };
        let expired: Vec<u32> = self
            .participants
            .iter()
            .filter(|r| !self.joined.contains(r) && !self.dead.contains(r))
            .filter(|r| {
                self.last_heard
                    .get(r)
                    .map(|t| t.elapsed() > lease)
                    .unwrap_or(true)
            })
            .copied()
            .collect();
        for r in expired {
            self.declare_dead(r)?;
        }
        Ok(())
    }

    /// Reclaim a dead worker's synchronisation state: release its locks
    /// (granting the next waiter), drop it from wait queues, and fail any
    /// barrier it was blocking with [`DsdMsg::WorkerLost`].
    fn declare_dead(&mut self, rank: u32) -> Result<(), HomeError> {
        self.dead.insert(rank);
        // Attributed to the dead rank's last known op — the op whose
        // participants will observe the expiry.
        self.recorder.instant_op(
            self.ep.rank(),
            EventKind::LeaseExpired,
            rank as u64,
            0,
            "",
            self.op_of(rank),
        );
        self.recorder.count("home.leases_expired", 1);
        for idx in 0..self.locks.len() {
            self.locks[idx].waiters.retain(|&w| w != rank);
            if self.locks[idx].holder == Some(rank) {
                self.locks[idx].holder = None;
                while let Some(next) = self.locks[idx].waiters.pop_front() {
                    if self.dead.contains(&next) {
                        continue;
                    }
                    self.locks[idx].holder = Some(next);
                    self.grant(idx as u32, next)?;
                    break;
                }
            }
        }
        for c in &mut self.conds {
            c.waiters.retain(|&(w, _)| w != rank);
        }
        // Any barrier with entrants is now permanently stuck (the dead
        // worker can never enter): fail the survivors.
        for idx in 0..self.barriers.len() {
            let entered = std::mem::take(&mut self.barriers[idx].entered);
            for r in entered {
                if !self.dead.contains(&r) {
                    self.send(r, DsdMsg::WorkerLost { rank })?;
                }
            }
        }
        Ok(())
    }

    /// Does this shard home synchronization object `id` of kind `what`
    /// (per `shard_of`)? Misrouted operations are protocol violations.
    fn check_owner(
        &self,
        what: &'static str,
        id: u32,
        shard_of: impl Fn(&Directory, u32) -> u32,
    ) -> Result<(), HomeError> {
        let owner = shard_of(&self.directory, id);
        if owner != self.shard {
            return Err(HomeError::Violation(format!(
                "{what} {id} homed at shard {owner}, not shard {}",
                self.shard
            )));
        }
        Ok(())
    }

    fn handle(&mut self, src_ep: u32, msg: DsdMsg) -> Result<(), HomeError> {
        match msg {
            DsdMsg::LockRequest { lock, rank } => {
                self.routes.insert(rank, src_ep);
                self.check_owner("lock", lock, Directory::lock_shard)?;
                let idx = lock as usize;
                if idx >= self.locks.len() {
                    return Err(HomeError::Violation(format!("no lock {lock}")));
                }
                if self.locks[idx].holder.is_none() {
                    self.locks[idx].holder = Some(rank);
                    self.grant(lock, rank)?;
                } else {
                    self.locks[idx].waiters.push_back(rank);
                }
                Ok(())
            }
            DsdMsg::UnlockRequest {
                lock,
                rank,
                updates,
            } => {
                self.routes.insert(rank, src_ep);
                self.check_owner("lock", lock, Directory::lock_shard)?;
                let idx = lock as usize;
                if idx >= self.locks.len() {
                    return Err(HomeError::Violation(format!("no lock {lock}")));
                }
                if self.locks[idx].holder != Some(rank) {
                    return Err(HomeError::Violation(format!(
                        "thread {rank} unlocking mutex {lock} held by {:?}",
                        self.locks[idx].holder
                    )));
                }
                self.absorb(rank, &updates)?;
                self.locks[idx].holder = None;
                self.send(rank, DsdMsg::UnlockAck { lock })?;
                if let Some(next) = self.locks[idx].waiters.pop_front() {
                    self.locks[idx].holder = Some(next);
                    self.grant(lock, next)?;
                }
                Ok(())
            }
            DsdMsg::BarrierEnter {
                barrier,
                rank,
                updates,
            } => {
                self.routes.insert(rank, src_ep);
                self.check_owner("barrier", barrier, Directory::barrier_shard)?;
                let idx = barrier as usize;
                if idx >= self.barriers.len() {
                    return Err(HomeError::Violation(format!("no barrier {barrier}")));
                }
                self.absorb(rank, &updates)?;
                if !self.dead.is_empty() {
                    // The barrier can never complete with a dead
                    // participant outstanding: fail fast.
                    let lost = *self.dead.iter().min().unwrap();
                    return self.send(rank, DsdMsg::WorkerLost { rank: lost });
                }
                self.barriers[idx].entered.push(rank);
                let waiting_for = self.participants.len() - self.joined.len() - self.dead.len();
                if self.barriers[idx].entered.len() >= waiting_for {
                    let entered = std::mem::take(&mut self.barriers[idx].entered);
                    for r in entered {
                        let updates = self.stale_updates_for(r)?;
                        self.send(r, DsdMsg::BarrierRelease { barrier, updates })?;
                    }
                }
                Ok(())
            }
            DsdMsg::Join { rank } => {
                self.routes.insert(rank, src_ep);
                if !self.participants.contains(&rank) {
                    return Err(HomeError::Violation(format!(
                        "unknown participant {rank} joining"
                    )));
                }
                self.joined.insert(rank);
                Ok(())
            }
            DsdMsg::CondWait {
                cond,
                lock,
                rank,
                updates,
            } => {
                self.routes.insert(rank, src_ep);
                self.check_owner("cond", cond, Directory::cond_shard)?;
                self.check_owner("lock", lock, Directory::lock_shard)?;
                let cidx = cond as usize;
                let lidx = lock as usize;
                if cidx >= self.conds.len() {
                    return Err(HomeError::Violation(format!("no cond {cond}")));
                }
                if lidx >= self.locks.len() {
                    return Err(HomeError::Violation(format!("no lock {lock}")));
                }
                if self.locks[lidx].holder != Some(rank) {
                    return Err(HomeError::Violation(format!(
                        "thread {rank} cond-waiting without holding mutex {lock}"
                    )));
                }
                // Atomic release + sleep: absorb the waiter's updates,
                // free the mutex (waking the next contender), park.
                self.absorb(rank, &updates)?;
                self.locks[lidx].holder = None;
                if let Some(next) = self.locks[lidx].waiters.pop_front() {
                    self.locks[lidx].holder = Some(next);
                    self.grant(lock, next)?;
                }
                self.conds[cidx].waiters.push_back((rank, lock));
                Ok(())
            }
            DsdMsg::CondSignal {
                cond,
                rank,
                broadcast,
            } => {
                self.routes.insert(rank, src_ep);
                self.check_owner("cond", cond, Directory::cond_shard)?;
                let cidx = cond as usize;
                if cidx >= self.conds.len() {
                    return Err(HomeError::Violation(format!("no cond {cond}")));
                }
                let wake = if broadcast {
                    std::mem::take(&mut self.conds[cidx].waiters)
                } else {
                    self.conds[cidx].waiters.pop_front().into_iter().collect()
                };
                for (waiter, lock) in wake {
                    // A woken thread must re-acquire its mutex before its
                    // cond_wait returns — queue it like a lock requester.
                    let lidx = lock as usize;
                    if self.locks[lidx].holder.is_none() {
                        self.locks[lidx].holder = Some(waiter);
                        self.grant(lock, waiter)?;
                    } else {
                        self.locks[lidx].waiters.push_back(waiter);
                    }
                }
                self.send(rank, DsdMsg::Ack)
            }
            DsdMsg::Resync { rank } => {
                self.routes.insert(rank, src_ep);
                // Cold copy: force a full refresh at the next acquire by
                // dropping the horizon below the log floor (or to zero).
                self.seen.insert(rank, 0);
                if self.log_floor == 0 && self.seq > 0 {
                    // Ensure "below floor" semantics even without
                    // compaction: raise the floor to the current sequence
                    // and prune nothing (full_ranges covers everything).
                    self.log_floor = self.log_floor.max(1);
                }
                self.send(rank, DsdMsg::Ack)
            }
            DsdMsg::UpdateFlush { rank, updates } => {
                // Release-time fan-out from a thread whose critical
                // section touched this shard's slice but whose release
                // goes to another shard. Absorb and ack; the thread holds
                // its release until the ack arrives, so the next acquirer
                // of any mutex is guaranteed to fetch these updates.
                self.routes.insert(rank, src_ep);
                self.absorb(rank, &updates)?;
                self.send(rank, DsdMsg::Ack)
            }
            DsdMsg::UpdateFetch { rank } => {
                // Acquire-time pull: the thread just acquired at another
                // shard and needs this shard's outstanding updates too.
                self.routes.insert(rank, src_ep);
                let updates = self.stale_updates_for(rank)?;
                self.send(rank, DsdMsg::UpdateBatch { updates })
            }
            other => Err(HomeError::Violation(format!(
                "home received unexpected {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    // The home service is exercised end-to-end in client.rs and the
    // integration suite; unit tests here cover bookkeeping edge cases
    // that are hard to reach through the full stack.
    use super::*;
    use crate::gthv::GthvDef;
    use hdsm_net::endpoint::Network;
    use hdsm_net::stats::NetConfig;
    use hdsm_platform::ctype::StructBuilder;
    use hdsm_platform::scalar::ScalarKind;
    use hdsm_platform::spec::PlatformSpec;

    fn tiny_def() -> GthvDef {
        GthvDef::new(
            StructBuilder::new("G")
                .array("xs", ScalarKind::Int, 64)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn init_logs_full_structure() {
        let (_net, mut eps) = Network::new(1, NetConfig::instant());
        let gthv = GthvInstance::new(tiny_def(), PlatformSpec::linux_x86());
        let mut h = HomeService::new(
            gthv,
            eps.pop().unwrap(),
            HomeConfig {
                n_locks: 1,
                n_barriers: 1,
                n_conds: 0,
                participants: vec![1],
                ..Default::default()
            },
        );
        h.init_with(|g| {
            for i in 0..64 {
                g.write_int(0, i, i as i128).unwrap();
            }
        });
        assert_eq!(h.seq, 1);
        assert_eq!(h.log.len(), 1);
        assert_eq!(h.log[0].2.count, 64);
        assert_eq!(h.gthv().read_int(0, 63).unwrap(), 63);
    }

    #[test]
    fn stale_updates_respect_horizon() {
        let (_net, mut eps) = Network::new(1, NetConfig::instant());
        let gthv = GthvInstance::new(tiny_def(), PlatformSpec::linux_x86());
        let mut h = HomeService::new(
            gthv,
            eps.pop().unwrap(),
            HomeConfig {
                n_locks: 1,
                n_barriers: 0,
                n_conds: 0,
                participants: vec![1, 2],
                ..Default::default()
            },
        );
        h.init_with(|g| g.write_int(0, 0, 42).unwrap());
        // Thread 1 pulls: gets the init batch.
        let ups = h.stale_updates_for(1).unwrap();
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].tag.element_count(), 64);
        // Pulling again with nothing new: empty.
        assert!(h.stale_updates_for(1).unwrap().is_empty());
        // Thread 2 still sees everything.
        assert_eq!(h.stale_updates_for(2).unwrap().len(), 1);
    }

    #[test]
    fn resync_forces_full_refresh() {
        let (_net, mut eps) = Network::new(1, NetConfig::instant());
        let gthv = GthvInstance::new(tiny_def(), PlatformSpec::linux_x86());
        let mut h = HomeService::new(
            gthv,
            eps.pop().unwrap(),
            HomeConfig {
                n_locks: 1,
                n_barriers: 0,
                n_conds: 0,
                participants: vec![1],
                ..Default::default()
            },
        );
        h.init_with(|g| g.write_int(0, 7, 7).unwrap());
        let _ = h.stale_updates_for(1).unwrap();
        assert!(h.stale_updates_for(1).unwrap().is_empty());
        // Simulate migration: cold copy.
        h.handle(0, DsdMsg::Resync { rank: 1 }).unwrap();
        let ups = h.stale_updates_for(1).unwrap();
        assert_eq!(ups.len(), 1, "full refresh after resync");
        assert_eq!(ups[0].tag.element_count(), 64);
    }

    #[test]
    fn compaction_preserves_refresh_capability() {
        let (_net, mut eps) = Network::new(1, NetConfig::instant());
        let gthv = GthvInstance::new(tiny_def(), PlatformSpec::linux_x86());
        let mut h = HomeService::new(
            gthv,
            eps.pop().unwrap(),
            HomeConfig {
                n_locks: 1,
                n_barriers: 0,
                n_conds: 0,
                participants: vec![1, 2],
                ..Default::default()
            },
        );
        // Thread 1 keeps up; generate enough absorbed batches to trigger
        // compaction.
        for i in 0..5000u64 {
            let mut src = GthvInstance::new(tiny_def(), PlatformSpec::linux_x86());
            src.write_int(0, i % 64, i as i128).unwrap();
            let ups = extract_updates(
                &src,
                &[UpdateRange {
                    entry: 0,
                    first: (i % 64),
                    count: 1,
                }],
            )
            .unwrap();
            h.absorb(9, &ups).unwrap();
            if i % 2 == 0 {
                let _ = h.stale_updates_for(1).unwrap();
                let _ = h.stale_updates_for(2).unwrap();
            }
        }
        assert!(h.log.len() < 5000, "log was never compacted");
        // A thread below the floor still gets a full refresh.
        h.seen.insert(2, 0);
        assert!(h.log_floor > 0);
        let ups = h.stale_updates_for(2).unwrap();
        assert_eq!(ups[0].tag.element_count(), 64);
    }

    #[test]
    fn sharded_home_owns_only_its_slice() {
        let def = || {
            GthvDef::new(
                StructBuilder::new("G")
                    .array("a", ScalarKind::Int, 8)
                    .array("b", ScalarKind::Int, 8)
                    .build()
                    .unwrap(),
            )
            .unwrap()
        };
        let (_net, mut eps) = Network::new(1, NetConfig::instant());
        let gthv = GthvInstance::new(def(), PlatformSpec::linux_x86());
        let mut h = HomeShard::new(
            gthv,
            eps.pop().unwrap(),
            HomeConfig {
                participants: vec![1],
                shard: 1,
                directory: Directory::new(2),
                ..Default::default()
            },
        );
        h.init_with(|g| {
            for i in 0..8 {
                g.write_int(0, i, 1).unwrap();
                g.write_int(1, i, 2).unwrap();
            }
        });
        // Entry 0 belongs to shard 0; this shard logs and serves only
        // entry 1.
        assert!(!h.log.is_empty());
        assert!(h.log.iter().all(|(_, _, r)| r.entry == 1));
        let ups = h.stale_updates_for(1).unwrap();
        assert!(!ups.is_empty());
        assert!(ups.iter().all(|u| u.entry == 1));
        // A misrouted update for entry 0 is a protocol violation, not a
        // silent write into a non-authoritative copy.
        let mut src = GthvInstance::new(def(), PlatformSpec::linux_x86());
        src.write_int(0, 0, 9).unwrap();
        let bad = extract_updates(
            &src,
            &[UpdateRange {
                entry: 0,
                first: 0,
                count: 1,
            }],
        )
        .unwrap();
        assert!(matches!(h.absorb(1, &bad), Err(HomeError::Violation(_))));
    }
}
