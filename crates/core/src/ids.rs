//! Typed synchronization-object handles.
//!
//! The `MTh_*` API of paper §4 addresses mutexes, barriers and condition
//! variables by bare `u32` index — nothing stops a program from passing a
//! barrier index to `mth_lock`. These newtypes make that a compile error:
//! [`LockId`], [`BarrierId`] and [`CondId`] are distinct types minted by
//! the cluster builder (or `const`-constructed by applications that lay
//! out their synchronization objects statically), and the session API on
//! `DsdClient` only accepts the matching kind.

use std::fmt;

macro_rules! sync_id {
    ($(#[$doc:meta])* $name:ident, $label:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Handle for index `raw`. Applications laying out their
            /// synchronization objects statically use this in `const`
            /// position; the index must be below the count configured on
            /// the cluster builder.
            pub const fn new(raw: u32) -> $name {
                $name(raw)
            }

            /// The underlying index-table slot.
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($label, "#{}"), self.0)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

sync_id!(
    /// Handle of one distributed mutex.
    LockId,
    "lock"
);
sync_id!(
    /// Handle of one distributed barrier.
    BarrierId,
    "barrier"
);
sync_id!(
    /// Handle of one distributed condition variable.
    CondId,
    "cond"
);
sync_id!(
    /// Handle of one home shard, as used by the cluster admin API
    /// (`ClusterCtl::kill_shard`, `ClusterCtl::handoff`). Indexes the
    /// directory's shard space `0..S`.
    ShardId,
    "shard"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_expose_their_raw_index() {
        const L: LockId = LockId::new(3);
        assert_eq!(L.raw(), 3);
        assert_eq!(u32::from(BarrierId::new(7)), 7);
        assert_eq!(CondId::new(0).to_string(), "cond#0");
        assert_eq!(L.to_string(), "lock#3");
        assert_eq!(ShardId::new(2).to_string(), "shard#2");
    }
}
