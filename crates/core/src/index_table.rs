//! The architecture-independent index table (paper §4, Table 1).
//!
//! At application start-up the table is built from the `GThV` structure:
//! one row per element of the structure, recording the element's base
//! address *on this node*, the per-scalar size *on this node*, and the
//! element count (negative for pointers). Interleaved padding rows mirror
//! the paper's Table 1. The crucial property (paper §4): "while the
//! data-type sizes may differ within the tables (depending on the
//! architecture), the **indexes of each element will remain the same**" —
//! the flattening order is derived from the shared type declaration, so
//! entry *k* means the same logical element on every node, and mapping an
//! index to a local memory address (and back) is a table lookup.

use hdsm_platform::ctype::CType;
use hdsm_platform::layout::{LayoutKind, TypeLayout};
use hdsm_platform::scalar::ScalarKind;
use hdsm_platform::spec::PlatformSpec;

/// One data row of the index table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexRow {
    /// Entry id — identical on every node (row order is derived from the
    /// shared declaration).
    pub entry: u32,
    /// Base simulated address of the first element on this node.
    pub addr: u64,
    /// Size in bytes of one element on this node.
    pub size: u32,
    /// Number of elements (always positive here; [`IndexRow::number`]
    /// renders the paper's sign convention).
    pub count: u64,
    /// Scalar kind (supplies the conversion class; the paper keeps this in
    /// the preprocessor's type knowledge).
    pub kind: ScalarKind,
    /// Padding bytes following this element (for the Table 1 rendering).
    pub padding_after: u32,
    /// Dotted field path, e.g. `"A"` or `"pair.3.x"` (diagnostics).
    pub path: String,
}

impl IndexRow {
    /// The paper's `Number` column: negative for pointers.
    pub fn number(&self) -> i64 {
        if self.kind == ScalarKind::Ptr {
            -(self.count as i64)
        } else {
            self.count as i64
        }
    }

    /// End address (exclusive) of the row's data.
    pub fn end(&self) -> u64 {
        self.addr + u64::from(self.size) * self.count
    }

    /// Address of element `elem`.
    pub fn elem_addr(&self, elem: u64) -> u64 {
        debug_assert!(elem < self.count);
        self.addr + elem * u64::from(self.size)
    }
}

/// The per-node index table.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexTable {
    rows: Vec<IndexRow>,
    base: u64,
    total_size: u64,
}

impl IndexTable {
    /// Build the table for `ty` laid out at simulated address `base` on
    /// `platform`. Flattening rules:
    /// * a scalar field → one row with `count == 1`;
    /// * an array of scalars → one row with `count == len`;
    /// * nested structs / arrays of aggregates → recursively flattened into
    ///   one row per leaf run, in declaration/address order.
    pub fn build(ty: &CType, base: u64, platform: &PlatformSpec) -> IndexTable {
        let layout = TypeLayout::compute(ty, platform);
        let mut rows = Vec::new();
        flatten(&layout, base, "", &mut rows);
        // Assign entry ids and padding-after from address gaps.
        let total = layout.size;
        for (i, row) in rows.iter_mut().enumerate() {
            row.entry = i as u32;
        }
        let n = rows.len();
        for i in 0..n {
            let next_addr = if i + 1 < n {
                rows[i + 1].addr
            } else {
                base + total
            };
            rows[i].padding_after = (next_addr - rows[i].end()) as u32;
        }
        IndexTable {
            rows,
            base,
            total_size: total,
        }
    }

    /// All data rows, entry order.
    pub fn rows(&self) -> &[IndexRow] {
        &self.rows
    }

    /// Row for an entry id.
    pub fn row(&self, entry: u32) -> Option<&IndexRow> {
        self.rows.get(entry as usize)
    }

    /// Base simulated address of the shared region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Total byte size of the shared region on this node.
    pub fn total_size(&self) -> u64 {
        self.total_size
    }

    /// Map an address to `(entry, element)` — the index ↔ address mapping
    /// the paper calls "straightforward". Returns `None` for addresses in
    /// padding or outside the region.
    pub fn locate(&self, addr: u64) -> Option<(u32, u64)> {
        // Binary search for the last row with row.addr <= addr.
        let idx = self.rows.partition_point(|r| r.addr <= addr);
        if idx == 0 {
            return None;
        }
        let row = &self.rows[idx - 1];
        if addr >= row.end() {
            return None; // in padding after the row
        }
        Some((row.entry, (addr - row.addr) / u64::from(row.size)))
    }

    /// Rows overlapping the byte range `[start, end)`, with the clamped
    /// element range for each: `(entry, first_elem, count)`.
    pub fn rows_overlapping(&self, start: u64, end: u64) -> Vec<(u32, u64, u64)> {
        let mut out = Vec::new();
        if end <= start {
            return out;
        }
        // First row that could overlap: last row with addr <= start, else 0.
        let mut idx = self.rows.partition_point(|r| r.addr <= start);
        idx = idx.saturating_sub(1);
        while idx < self.rows.len() {
            let row = &self.rows[idx];
            if row.addr >= end {
                break;
            }
            let ov_start = start.max(row.addr);
            let ov_end = end.min(row.end());
            if ov_start < ov_end {
                let first = (ov_start - row.addr) / u64::from(row.size);
                let last = (ov_end - 1 - row.addr) / u64::from(row.size);
                out.push((row.entry, first, last - first + 1));
            }
            idx += 1;
        }
        out
    }

    /// Render the table in the paper's Table 1 format (address / size /
    /// number, with interleaved padding rows).
    pub fn render_paper_table(&self) -> String {
        let mut out = String::from("Address      Size  Number\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{:#010x}  {:>4}  {:>6}\n",
                row.addr,
                row.size,
                row.number()
            ));
            out.push_str(&format!(
                "{:#010x}  {:>4}  {:>6}\n",
                row.end(),
                row.padding_after,
                0
            ));
        }
        out
    }
}

fn flatten(layout: &TypeLayout, base: u64, path: &str, rows: &mut Vec<IndexRow>) {
    match &layout.kind {
        LayoutKind::Scalar(kind) => rows.push(IndexRow {
            entry: 0,
            addr: base,
            size: layout.size as u32,
            count: 1,
            kind: *kind,
            padding_after: 0,
            path: path.to_string(),
        }),
        LayoutKind::Array { elem, len } => match &elem.kind {
            LayoutKind::Scalar(kind) => rows.push(IndexRow {
                entry: 0,
                addr: base,
                size: elem.size as u32,
                count: *len,
                kind: *kind,
                padding_after: 0,
                path: path.to_string(),
            }),
            _ => {
                for i in 0..*len {
                    let sub = if path.is_empty() {
                        format!("{i}")
                    } else {
                        format!("{path}.{i}")
                    };
                    flatten(elem, base + i * elem.size, &sub, rows);
                }
            }
        },
        LayoutKind::Struct { fields, .. } => {
            for f in fields {
                let sub = if path.is_empty() {
                    f.name.clone()
                } else {
                    format!("{path}.{}", f.name)
                };
                flatten(&f.layout, base + f.offset, &sub, rows);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsm_platform::ctype::{paper_figure4_struct, CType, StructBuilder};
    use hdsm_platform::spec::PlatformSpec;

    const PAPER_BASE: u64 = 0x4005_8000;

    fn figure4_table(p: &PlatformSpec) -> IndexTable {
        IndexTable::build(&CType::Struct(paper_figure4_struct()), PAPER_BASE, p)
    }

    /// Reproduce paper Table 1 exactly (addresses, sizes, numbers).
    #[test]
    fn paper_table1_reproduced() {
        let t = figure4_table(&PlatformSpec::linux_x86());
        let rows = t.rows();
        let expect: [(u64, u32, i64); 5] = [
            (0x4005_8000, 4, -1),
            (0x4005_8004, 4, 56169),
            (0x4008_eda8, 4, 56169),
            (0x400c_5b4c, 4, 56169),
            (0x400f_c8f0, 4, 1),
        ];
        assert_eq!(rows.len(), 5);
        for (row, (addr, size, number)) in rows.iter().zip(expect) {
            assert_eq!(row.addr, addr, "addr of {}", row.path);
            assert_eq!(row.size, size);
            assert_eq!(row.number(), number);
            assert_eq!(row.padding_after, 0);
        }
        let rendered = t.render_paper_table();
        assert!(rendered.contains("0x40058000     4      -1"));
        assert!(rendered.contains("0x40058004     4   56169"));
        assert!(rendered.contains("0x4008eda8     4   56169"));
        assert!(rendered.contains("0x400c5b4c     4   56169"));
        assert!(rendered.contains("0x400fc8f0     4       1"));
        assert!(rendered.contains("0x400fc8f4     0       0"));
    }

    /// "The indexes of each element will remain the same" across
    /// architectures — sizes/addresses may differ, entries must not.
    #[test]
    fn entries_architecture_independent() {
        let l = figure4_table(&PlatformSpec::linux_x86());
        let s64 = figure4_table(&PlatformSpec::solaris_sparc64());
        assert_eq!(l.rows().len(), s64.rows().len());
        for (a, b) in l.rows().iter().zip(s64.rows()) {
            assert_eq!(a.entry, b.entry);
            assert_eq!(a.path, b.path);
            assert_eq!(a.count, b.count);
            assert_eq!(a.kind, b.kind);
        }
        // Pointer row grew on LP64.
        assert_eq!(l.rows()[0].size, 4);
        assert_eq!(s64.rows()[0].size, 8);
    }

    #[test]
    fn locate_addresses() {
        let t = figure4_table(&PlatformSpec::linux_x86());
        assert_eq!(t.locate(PAPER_BASE), Some((0, 0)));
        assert_eq!(t.locate(PAPER_BASE + 4), Some((1, 0)));
        assert_eq!(t.locate(PAPER_BASE + 4 + 4 * 100), Some((1, 100)));
        // Mid-element address maps to the containing element.
        assert_eq!(t.locate(PAPER_BASE + 4 + 4 * 100 + 3), Some((1, 100)));
        assert_eq!(t.locate(0x400f_c8f0), Some((4, 0)));
        // Out of range.
        assert_eq!(t.locate(PAPER_BASE - 1), None);
        assert_eq!(t.locate(0x400f_c8f4), None);
    }

    #[test]
    fn locate_padding_returns_none() {
        // struct { char c; double d; } on SPARC has 7 pad bytes at +1.
        let def = StructBuilder::new("P")
            .scalar("c", hdsm_platform::scalar::ScalarKind::Char)
            .scalar("d", hdsm_platform::scalar::ScalarKind::Double)
            .build()
            .unwrap();
        let t = IndexTable::build(&CType::Struct(def), 0x1000, &PlatformSpec::solaris_sparc());
        assert_eq!(t.locate(0x1000), Some((0, 0)));
        assert_eq!(t.locate(0x1001), None);
        assert_eq!(t.locate(0x1007), None);
        assert_eq!(t.locate(0x1008), Some((1, 0)));
        assert_eq!(t.rows()[0].padding_after, 7);
    }

    #[test]
    fn rows_overlapping_ranges() {
        let t = figure4_table(&PlatformSpec::linux_x86());
        // A write covering the tail of A and head of B.
        let a_row = &t.rows()[1];
        let start = a_row.elem_addr(56167);
        let end = t.rows()[2].elem_addr(2); // first 2 elements of B
        let ov = t.rows_overlapping(start, end);
        assert_eq!(ov, vec![(1, 56167, 2), (2, 0, 2)]);
    }

    #[test]
    fn overlap_partial_element_includes_whole_element() {
        let t = figure4_table(&PlatformSpec::linux_x86());
        let a = &t.rows()[1];
        // One byte inside element 10.
        let ov = t.rows_overlapping(a.elem_addr(10) + 1, a.elem_addr(10) + 2);
        assert_eq!(ov, vec![(1, 10, 1)]);
    }

    #[test]
    fn empty_and_degenerate_ranges() {
        let t = figure4_table(&PlatformSpec::linux_x86());
        assert!(t.rows_overlapping(PAPER_BASE, PAPER_BASE).is_empty());
        assert!(t
            .rows_overlapping(PAPER_BASE - 100, PAPER_BASE - 50)
            .is_empty());
    }

    #[test]
    fn nested_struct_flattening() {
        let inner = StructBuilder::new("I")
            .scalar("x", hdsm_platform::scalar::ScalarKind::Int)
            .scalar("y", hdsm_platform::scalar::ScalarKind::Int)
            .build()
            .unwrap();
        let outer = StructBuilder::new("O")
            .field("pair", CType::array(CType::Struct(inner), 2))
            .array("tail", hdsm_platform::scalar::ScalarKind::Double, 3)
            .build()
            .unwrap();
        let t = IndexTable::build(
            &CType::Struct(outer),
            0x2000,
            &PlatformSpec::solaris_sparc(),
        );
        let paths: Vec<&str> = t.rows().iter().map(|r| r.path.as_str()).collect();
        assert_eq!(
            paths,
            vec!["pair.0.x", "pair.0.y", "pair.1.x", "pair.1.y", "tail"]
        );
        assert_eq!(t.rows()[4].count, 3);
    }
}
