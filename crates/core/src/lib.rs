#![warn(missing_docs)]

//! DSD — the paper's Distributed Shared Data mechanism.
//!
//! This crate is the primary contribution of "An Adaptive Heterogeneous
//! Software DSM" (ICPP Workshops 2006): a release-consistent, fully
//! heterogeneous shared-data layer whose synchronization API mirrors
//! Pthreads (`MTh_lock` / `MTh_unlock` / `MTh_barrier` / `MTh_join`,
//! paper §4) and whose update pipeline is
//!
//! ```text
//! twin/diff (page level)                       t_index
//!   → abstract diffs to application-level indexes   t_index
//!   → coalesce runs, form CGT-RMR tags              t_tag
//!   → pack tag + raw native data                    t_pack
//!   → ship to peer
//!   → unpack                                        t_unpack
//!   → memcpy (homogeneous) / convert (heterogeneous) t_conv
//! ```
//!
//! matching the cost decomposition of Eq. 1:
//! `C_share = t_index + t_tag + t_pack + t_unpack + t_conv`.
//!
//! Key modules:
//! * [`gthv`] — the shared global structure (`GThV`) instantiated in a
//!   node's native representation inside a protected address space;
//! * [`index_table`] — the architecture-independent index table built from
//!   `GThV` at start-up (paper Table 1);
//! * [`runs`] — diff→index abstraction with consecutive-element coalescing;
//! * [`update`] — update extraction and receiver-makes-right application,
//!   including pointer swizzling through the index table;
//! * [`protocol`], [`home`], [`client`] — the distributed lock / barrier /
//!   join protocol between remote threads and the home node's stub service;
//! * [`cluster`] — orchestration of a simulated heterogeneous cluster
//!   (node threads + home service), including runtime node join and thread
//!   migration driven by [`hdsm_migthread::scheduler`] policies;
//! * [`baseline`] — a traditional homogeneous twin/diff page DSM used as
//!   the comparison baseline;
//! * [`costs`] — Eq. 1 cost accounting.

pub mod baseline;
pub mod client;
pub mod cluster;
pub mod costs;
pub mod directory;
pub mod gthv;
pub mod home;
pub mod ids;
pub mod index_table;
pub mod placement;
pub mod protocol;
pub mod runs;
pub mod tenant;
pub mod update;

pub use client::{DsdClient, DsdError, LockGuard};
pub use cluster::{
    ClusterBuilder, ClusterCtl, ClusterError, ClusterOutcome, FaultConfig, MigrationEvent,
    TimingConfig, TopologyConfig, WorkerInfo,
};
pub use costs::CostBreakdown;
pub use directory::Directory;
pub use gthv::{GthvDef, GthvInstance};
pub use ids::{BarrierId, CondId, LockId, ShardId};
pub use index_table::{IndexRow, IndexTable};
pub use placement::{
    plan_thread_moves, PlacementDecision, PlacementInputs, PlacementPolicy, ThreadMove,
};
pub use runs::UpdateRange;
pub use tenant::{ResidualReport, SessionSpec, TenantSpace};
