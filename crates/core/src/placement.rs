//! Adaptive placement: heat-driven home migration and thread repacking.
//!
//! The paper's DSM is *adaptive*: it watches where sharing traffic
//! actually flows and moves data (and computation) to shorten the Eq. 1
//! cost pipeline. This module closes that loop. A [`PlacementPolicy`]
//! chosen through `ClusterBuilder::placement(..)` drives a small engine
//! inside `ClusterBuilder::run` that, once per policy epoch:
//!
//! 1. reads the observability signals — per-(entry, writer) update bytes
//!    ([`PlacementInputs::write_heat`]) and per-(writer, shard) completed
//!    release-class sync ops ([`PlacementInputs::release_dests`]),
//! 2. folds them through the pure [`PlacementPolicy::plan`] function into
//!    a list of [`PlacementDecision`]s, and
//! 3. applies each decision over the admin plane as a per-entry home
//!    handoff (`ClusterCtl::rehome_entry`), backing off when the target
//!    shard is itself mid-promotion.
//!
//! Planning is deliberately split from acting: `plan` is a deterministic
//! function of its inputs, so the same signals always produce the same
//! decisions — on the simulated fabric a same-seed adaptive run replays
//! decision-for-decision, and the differential suite can assert adaptive
//! runs converge byte-identically with static ones.
//!
//! The second adaptation axis — moving worker *threads* off slow CPUs —
//! is planned by [`plan_thread_moves`] from the configured platform
//! `cpu_factor`s and executed by `run_adaptive`'s existing migration
//! machinery (pack through CGT-RMR, restore on the target).

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// A bring-your-own placement planner, as installed by
/// [`PlacementPolicy::Custom`]: signals in, decisions out.
pub type PlacementHook = dyn Fn(&PlacementInputs) -> Vec<PlacementDecision> + Send + Sync;

/// The signals the placement engine feeds to [`PlacementPolicy::plan`].
///
/// All tables are cumulative since cluster start and sorted by key, so a
/// plan is a pure function of the run's observable history.
#[derive(Debug, Clone, Default)]
pub struct PlacementInputs {
    /// `(entry, writer_rank, update_frames, payload_bytes)` — who ships
    /// update traffic for which index entry.
    pub write_heat: Vec<(u32, u32, u64, u64)>,
    /// `(writer_rank, shard, completed_release_ops)` — which home shard
    /// grants each rank's release-class sync operations (unlock, barrier,
    /// cond-wait). The shard a rank releases through most is the shard
    /// "nearest" its synchronization, and therefore the cheapest place to
    /// home the entries that rank writes.
    pub release_dests: Vec<(u32, u32, u64)>,
    /// Current effective owner of every entry that has ever been observed
    /// or moved: `(entry, shard)`. Entries absent from this table are
    /// still at their static modulo home.
    pub owners: Vec<(u32, u32)>,
    /// Number of home shards.
    pub shards: u32,
}

/// One re-homing decision: move `entry` from `from_shard` to `to_shard`
/// because `writer` dominates its update traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementDecision {
    /// Index entry to move.
    pub entry: u32,
    /// Shard that currently owns the entry.
    pub from_shard: u32,
    /// Shard that should own it.
    pub to_shard: u32,
    /// Rank whose update traffic motivated the move.
    pub writer: u32,
}

/// How the cluster places index entries on home shards.
///
/// Set through `ClusterBuilder::placement(..)`. The default, `Static`,
/// is byte-for-byte today's behaviour: entries stay at `entry % shards`
/// forever and no placement endpoint, actor, or message is created.
#[derive(Clone)]
pub enum PlacementPolicy {
    /// Entries never move: `entry % shards` for the life of the cluster.
    Static,
    /// Re-home entries to the shard nearest their dominant writer.
    ///
    /// Every `epoch`, each entry's writers are ranked by cumulative
    /// update bytes. An entry moves only when the top writer has shipped
    /// at least `min_gain` bytes **and** at least `hysteresis`× the bytes
    /// of the runner-up — both gates damp oscillation when two ranks
    /// trade the lead. The target shard is the one granting most of the
    /// dominant writer's release-class sync ops.
    HeatDriven {
        /// How often the engine re-plans.
        epoch: Duration,
        /// Dominance ratio the top writer must hold over the runner-up
        /// (e.g. `2.0` = twice the bytes). Values below 1.0 behave as 1.0.
        hysteresis: f64,
        /// Minimum cumulative bytes from the dominant writer before an
        /// entry is worth moving.
        min_gain: u64,
    },
    /// Bring-your-own policy: the engine calls the hook once per epoch
    /// (fixed at one second) with the current [`PlacementInputs`] and
    /// applies whatever decisions it returns. Decisions targeting
    /// out-of-range shards or already-correct owners are skipped.
    Custom(Arc<PlacementHook>),
}

impl fmt::Debug for PlacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementPolicy::Static => write!(f, "Static"),
            PlacementPolicy::HeatDriven {
                epoch,
                hysteresis,
                min_gain,
            } => f
                .debug_struct("HeatDriven")
                .field("epoch", epoch)
                .field("hysteresis", hysteresis)
                .field("min_gain", min_gain)
                .finish(),
            PlacementPolicy::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl Default for PlacementPolicy {
    /// `Static` — the non-adaptive cluster of every release so far.
    fn default() -> PlacementPolicy {
        PlacementPolicy::Static
    }
}

impl PlacementPolicy {
    /// A `HeatDriven` policy with the defaults used by the benches: plan
    /// every 20 ms, require 2× dominance and 4 KiB of traffic.
    pub fn heat_driven() -> PlacementPolicy {
        PlacementPolicy::HeatDriven {
            epoch: Duration::from_millis(20),
            hysteresis: 2.0,
            min_gain: 4096,
        }
    }

    /// Whether this policy ever moves entries (and therefore whether the
    /// cluster must provision the placement endpoint and engine thread).
    pub fn is_adaptive(&self) -> bool {
        !matches!(self, PlacementPolicy::Static)
    }

    /// How often the engine re-plans under this policy.
    pub fn epoch(&self) -> Duration {
        match self {
            PlacementPolicy::Static => Duration::from_secs(3600),
            PlacementPolicy::HeatDriven { epoch, .. } => *epoch,
            PlacementPolicy::Custom(_) => Duration::from_secs(1),
        }
    }

    /// Fold the current signals into a list of moves.
    ///
    /// Pure and deterministic: inputs are key-sorted tables and ties are
    /// broken toward the lower rank / lower shard, so identical inputs
    /// always yield identical decisions in identical order.
    pub fn plan(&self, inputs: &PlacementInputs) -> Vec<PlacementDecision> {
        match self {
            PlacementPolicy::Static => Vec::new(),
            PlacementPolicy::Custom(hook) => {
                let mut out = hook(inputs);
                out.retain(|d| {
                    d.to_shard < inputs.shards && d.to_shard != owner_of(inputs, d.entry)
                });
                out
            }
            PlacementPolicy::HeatDriven {
                hysteresis,
                min_gain,
                ..
            } => plan_heat_driven(inputs, hysteresis.max(1.0), *min_gain),
        }
    }
}

/// Effective owner of `entry`: the overlay row if present, else the
/// static modulo home.
fn owner_of(inputs: &PlacementInputs, entry: u32) -> u32 {
    inputs
        .owners
        .iter()
        .find(|&&(e, _)| e == entry)
        .map(|&(_, s)| s)
        .unwrap_or_else(|| {
            if inputs.shards == 0 {
                0
            } else {
                entry % inputs.shards
            }
        })
}

/// The `HeatDriven` planner: per entry, find the dominant writer, gate on
/// `min_gain` bytes and `hysteresis`× the runner-up, and target the shard
/// granting most of that writer's release-class sync operations.
fn plan_heat_driven(
    inputs: &PlacementInputs,
    hysteresis: f64,
    min_gain: u64,
) -> Vec<PlacementDecision> {
    // Best release destination per writer: (ops, prefer lower shard).
    let mut best_dest: Vec<(u32, u32, u64)> = Vec::new(); // (writer, shard, ops)
    for &(writer, shard, ops) in &inputs.release_dests {
        match best_dest.iter_mut().find(|r| r.0 == writer) {
            Some(r) => {
                if ops > r.2 || (ops == r.2 && shard < r.1) {
                    r.1 = shard;
                    r.2 = ops;
                }
            }
            None => best_dest.push((writer, shard, ops)),
        }
    }

    let mut out = Vec::new();
    let mut i = 0;
    let heat = &inputs.write_heat;
    while i < heat.len() {
        let entry = heat[i].0;
        // The table is (entry, writer)-sorted: walk this entry's slice,
        // tracking the top two writers by bytes (ties to the lower rank,
        // which the sort order gives us for free).
        let (mut top_writer, mut top_bytes, mut runner_bytes) = (0u32, 0u64, 0u64);
        while i < heat.len() && heat[i].0 == entry {
            let (_, writer, _, bytes) = heat[i];
            if bytes > top_bytes {
                runner_bytes = top_bytes;
                top_bytes = bytes;
                top_writer = writer;
            } else if bytes > runner_bytes {
                runner_bytes = bytes;
            }
            i += 1;
        }
        if top_bytes < min_gain {
            continue;
        }
        if (top_bytes as f64) < hysteresis * (runner_bytes as f64) {
            continue;
        }
        let Some(&(_, to_shard, _)) = best_dest.iter().find(|r| r.0 == top_writer) else {
            // No completed sync ops from this writer yet — no basis for a
            // "nearest shard" call; wait for more signal.
            continue;
        };
        if to_shard >= inputs.shards {
            continue;
        }
        let from_shard = owner_of(inputs, entry);
        if to_shard == from_shard {
            continue;
        }
        out.push(PlacementDecision {
            entry,
            from_shard,
            to_shard,
            writer: top_writer,
        });
    }
    out
}

/// One planned thread migration for `run_adaptive`: move worker
/// `thread_rank` onto platform `to_platform` after `after_sweeps`
/// adaptation sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadMove {
    /// Worker thread rank to repack.
    pub thread_rank: u32,
    /// Index into the configured worker platform list to land on.
    pub to_platform: usize,
    /// Sweep count after which the move fires.
    pub after_sweeps: u32,
}

/// Plan thread migrations off slow simulated CPUs.
///
/// Given each worker's platform `cpu_factor` (higher = faster), move
/// every worker whose CPU is more than `threshold`× slower than the
/// fastest configured platform onto that fastest platform, after the
/// first adaptation sweep. Deterministic: workers are scanned in rank
/// order and the fastest platform ties break toward the lower index.
pub fn plan_thread_moves(cpu_factors: &[f64], threshold: f64) -> Vec<ThreadMove> {
    if cpu_factors.is_empty() {
        return Vec::new();
    }
    let mut fastest = 0usize;
    for (i, &f) in cpu_factors.iter().enumerate() {
        if f > cpu_factors[fastest] {
            fastest = i;
        }
    }
    let fast = cpu_factors[fastest];
    let mut out = Vec::new();
    for (rank, &f) in cpu_factors.iter().enumerate() {
        if rank != fastest && f * threshold < fast {
            out.push(ThreadMove {
                thread_rank: rank as u32,
                to_platform: fastest,
                after_sweeps: 1,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> PlacementInputs {
        PlacementInputs {
            // Entry 3: rank 2 dominates (9000 bytes vs 100). Entry 4:
            // contested (1000 vs 900). Entry 5: dominant but tiny.
            write_heat: vec![
                (3, 0, 2, 100),
                (3, 2, 40, 9000),
                (4, 0, 10, 1000),
                (4, 1, 9, 900),
                (5, 2, 1, 64),
            ],
            // Rank 2 syncs mostly through shard 1.
            release_dests: vec![(0, 0, 50), (2, 0, 3), (2, 1, 20)],
            owners: Vec::new(),
            shards: 2,
        }
    }

    #[test]
    fn static_never_plans() {
        assert!(PlacementPolicy::Static.plan(&inputs()).is_empty());
        assert!(!PlacementPolicy::Static.is_adaptive());
    }

    #[test]
    fn heat_driven_moves_dominated_entry_only() {
        let policy = PlacementPolicy::HeatDriven {
            epoch: Duration::from_millis(20),
            hysteresis: 2.0,
            min_gain: 1000,
        };
        let plan = policy.plan(&inputs());
        // Entry 3 (home = 3 % 2 = 1) is dominated by rank 2 whose syncs
        // land on shard 1 — already home, no move. Re-home rank 2's syncs
        // to shard 0 and the move appears.
        assert!(plan.is_empty());

        let mut ins = inputs();
        ins.release_dests = vec![(2, 0, 20), (2, 1, 3)];
        let plan = policy.plan(&ins);
        assert_eq!(
            plan,
            vec![PlacementDecision {
                entry: 3,
                from_shard: 1,
                to_shard: 0,
                writer: 2
            }]
        );
        // Entry 4 fails hysteresis (1000 < 2*900); entry 5 fails min_gain.
    }

    #[test]
    fn owners_overlay_suppresses_repeat_moves() {
        let policy = PlacementPolicy::HeatDriven {
            epoch: Duration::from_millis(20),
            hysteresis: 2.0,
            min_gain: 1000,
        };
        let mut ins = inputs();
        ins.release_dests = vec![(2, 0, 20)];
        ins.owners = vec![(3, 0)]; // already moved last epoch
        assert!(policy.plan(&ins).is_empty());
    }

    #[test]
    fn plan_is_deterministic() {
        let policy = PlacementPolicy::heat_driven();
        let mut ins = inputs();
        ins.release_dests = vec![(2, 0, 20)];
        let a = policy.plan(&ins);
        let b = policy.plan(&ins);
        assert_eq!(a, b);
    }

    #[test]
    fn custom_hook_filters_bad_targets() {
        let hook = |_: &PlacementInputs| {
            vec![
                PlacementDecision {
                    entry: 0,
                    from_shard: 0,
                    to_shard: 9,
                    writer: 0,
                }, // out of range
                PlacementDecision {
                    entry: 1,
                    from_shard: 1,
                    to_shard: 1,
                    writer: 0,
                }, // already home (1 % 2 == 1)
                PlacementDecision {
                    entry: 2,
                    from_shard: 0,
                    to_shard: 1,
                    writer: 0,
                }, // valid
            ]
        };
        let policy = PlacementPolicy::Custom(Arc::new(hook));
        assert!(policy.is_adaptive());
        let plan = policy.plan(&inputs());
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].entry, 2);
    }

    #[test]
    fn thread_moves_target_fastest_platform() {
        // Platforms: 1.0, 0.4 (slow), 1.4 (fastest), 0.9.
        let moves = plan_thread_moves(&[1.0, 0.4, 1.4, 0.9], 2.0);
        // Only 0.4*2.0 < 1.4 qualifies.
        assert_eq!(
            moves,
            vec![ThreadMove {
                thread_rank: 1,
                to_platform: 2,
                after_sweeps: 1
            }]
        );
        assert!(plan_thread_moves(&[], 2.0).is_empty());
        // Homogeneous cluster: nothing to do.
        assert!(plan_thread_moves(&[1.0, 1.0, 1.0], 2.0).is_empty());
    }
}
