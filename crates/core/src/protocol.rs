//! DSD protocol messages.
//!
//! The four primitives of paper §4 — `MTh_lock(index, rank)`,
//! `MTh_unlock(index, rank)`, `MTh_barrier(index, rank)`, `MTh_join()` —
//! plus the grant/ack/release replies of Figure 5, a `Resync` notice sent
//! by a freshly migrated thread (its new node's copy is cold), and the
//! final `Shutdown`. Updates ride inside messages as CGT-RMR wire batches.
//!
//! Threads are identified by a stable *thread rank* independent of the
//! transport endpoint, so a thread keeps its identity when it migrates.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use hdsm_net::message::MsgKind;
use hdsm_tags::wire::{pack_batch, pack_batch_fast, unpack_batch, WireError, WireUpdate};
use std::fmt;

/// A decoded DSD protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum DsdMsg {
    /// Thread `rank` requests mutex `lock`.
    LockRequest {
        /// Mutex index.
        lock: u32,
        /// Requesting thread rank.
        rank: u32,
    },
    /// Home grants mutex `lock`; `updates` are the outstanding updates the
    /// acquirer has not yet seen (paper §4.1).
    LockGrant {
        /// Mutex index.
        lock: u32,
        /// Outstanding updates.
        updates: Vec<WireUpdate>,
    },
    /// Thread `rank` releases mutex `lock`, propagating its updates back
    /// to the home thread (paper §4.2).
    UnlockRequest {
        /// Mutex index.
        lock: u32,
        /// Releasing thread rank.
        rank: u32,
        /// The thread's modifications since acquire.
        updates: Vec<WireUpdate>,
    },
    /// Home acknowledges the release.
    UnlockAck {
        /// Mutex index.
        lock: u32,
    },
    /// Thread `rank` enters barrier `barrier`, releasing its updates.
    BarrierEnter {
        /// Barrier index.
        barrier: u32,
        /// Entering thread rank.
        rank: u32,
        /// The thread's modifications since its last release.
        updates: Vec<WireUpdate>,
    },
    /// Home releases a thread from the barrier with merged updates.
    BarrierRelease {
        /// Barrier index.
        barrier: u32,
        /// Merged outstanding updates for this thread.
        updates: Vec<WireUpdate>,
    },
    /// Thread `rank` signs off (called immediately before termination).
    Join {
        /// Joining thread rank.
        rank: u32,
    },
    /// `MTh_cond_wait(cond, lock, rank)`: atomically release mutex `lock`
    /// (propagating `updates`) and sleep on condition `cond`; the reply is
    /// a [`DsdMsg::LockGrant`] once signalled and the mutex re-acquired —
    /// the distributed analogue of `pthread_cond_wait`.
    CondWait {
        /// Condition variable index.
        cond: u32,
        /// Mutex to release and later re-acquire.
        lock: u32,
        /// Waiting thread rank.
        rank: u32,
        /// The thread's modifications since acquire (its release).
        updates: Vec<WireUpdate>,
    },
    /// `MTh_cond_signal` / `MTh_cond_broadcast`: wake one (or all) waiters
    /// of condition `cond`. Fire-and-forget, like its Pthreads
    /// counterpart.
    CondSignal {
        /// Condition variable index.
        cond: u32,
        /// Signalling thread rank.
        rank: u32,
        /// Wake all waiters instead of one.
        broadcast: bool,
    },
    /// A migrated thread announces that its local copy is cold and must be
    /// fully refreshed at its next acquire.
    Resync {
        /// Thread rank that migrated.
        rank: u32,
    },
    /// Generic acknowledgement. The reliability layer uses it as the reply
    /// to requests that have no richer answer (`CondSignal`, `Resync`,
    /// `Join`), so every request/reply pair can be retried idempotently.
    Ack,
    /// Liveness heartbeat from thread `rank`; refreshes its lease at the
    /// home service. No reply.
    Heartbeat {
        /// Thread rank asserting liveness.
        rank: u32,
    },
    /// The home service declared thread `rank` dead (lease expired). Sent
    /// instead of a grant/release that can never come, so survivors fail
    /// fast instead of hanging. Carries the forensic context of the
    /// expiry: how long ago the home last heard from the rank, and the
    /// lease it blew through (both 0 when unknown / legacy senders).
    WorkerLost {
        /// The dead thread's rank.
        rank: u32,
        /// Milliseconds since the home last heard from the rank.
        heard_ms: u64,
        /// The lease duration (ms) that expired.
        lease_ms: u64,
    },
    /// Home tells everyone the program is over (maps to `pthread_join`
    /// completing at the home node).
    Shutdown,
    /// Release-time fan-out under a sharded home: thread `rank` pushes the
    /// updates owned by a *non-coordinating* shard before it sends the
    /// release itself to the owning/coordinating shard. Replied to with
    /// [`DsdMsg::Ack`]; the ack must arrive before the release is sent so
    /// the next acquirer's fetch observes these updates.
    UpdateFlush {
        /// Flushing thread rank.
        rank: u32,
        /// Updates for entries this shard owns.
        updates: Vec<WireUpdate>,
    },
    /// Acquire-time pull under a sharded home: thread `rank` asks a
    /// non-granting shard for the outstanding updates of its slice.
    UpdateFetch {
        /// Fetching thread rank.
        rank: u32,
    },
    /// Reply to [`DsdMsg::UpdateFetch`]: the outstanding updates of this
    /// shard's slice since the fetcher's horizon.
    UpdateBatch {
        /// Outstanding updates.
        updates: Vec<WireUpdate>,
    },
    /// Primary → replica: one deduplicated state-mutating client request,
    /// relayed verbatim *before* the primary processes it, so the replica
    /// replays the identical sequence against its shadow state. Lease
    /// expiries travel the same stream as a relayed [`DsdMsg::WorkerLost`]
    /// body (`req_id` 0), so the replica never has to re-derive
    /// timing-dependent decisions.
    Replicate {
        /// Endpoint the original request arrived from (route seed).
        src_ep: u32,
        /// The original request id (dedup/reply-cache replay key).
        req_id: u64,
        /// The original transport kind, as its raw `u16`.
        kind: u16,
        /// The original message body (envelope stripped).
        body: Bytes,
    },
    /// Replica → old primary after promotion: epoch `epoch` now rules
    /// `shard`; the receiver must fence itself. Retried until
    /// [`DsdMsg::DeposeAck`] (or the primary's endpoint is gone).
    Depose {
        /// Shard being taken over.
        shard: u32,
        /// The promoted replica's epoch.
        epoch: u32,
    },
    /// Deposed primary → replica: fencing acknowledged.
    DeposeAck {
        /// Shard.
        shard: u32,
        /// Acknowledged epoch.
        epoch: u32,
    },
    /// Fenced shard → client: this endpoint no longer serves `shard`;
    /// re-resolve to the shard's other endpoint and retry the same
    /// request under `epoch`.
    ViewChange {
        /// Shard the request addressed.
        shard: u32,
        /// The epoch now ruling the shard.
        epoch: u32,
    },
    /// Admin → primary: drain `shard` and hand it to its replica.
    HandoffRequest {
        /// Shard to drain.
        shard: u32,
    },
    /// Primary → replica: the full shard state (entry bytes, update log,
    /// sync tables, lease/dedup tables) as an opaque snapshot, installed
    /// wholesale before the replica promotes to `epoch`.
    HandoffState {
        /// Shard being handed off.
        shard: u32,
        /// Epoch the replica promotes to after install.
        epoch: u32,
        /// Opaque snapshot (see `home::snapshot_state`).
        state: Bytes,
    },
    /// Replica → primary: snapshot installed, new epoch live.
    HandoffInstalled {
        /// Shard.
        shard: u32,
        /// Installed epoch.
        epoch: u32,
    },
    /// Primary → admin: handoff complete; the old shard is retiring.
    HandoffDone {
        /// Shard.
        shard: u32,
        /// The epoch the shard now serves under (at the replica).
        epoch: u32,
    },
    /// Replica → primary liveness beat on the replication link; lets the
    /// primary self-fence when the link is cut (split-brain guard).
    ReplicaBeat {
        /// Shard.
        shard: u32,
    },
    /// Admin → source shard: migrate the home of `entry` to `to_shard`
    /// (per-entry-grain handoff; the placement engine's actuator).
    EntryHandoff {
        /// Entry whose home moves.
        entry: u32,
        /// Shard that takes ownership.
        to_shard: u32,
    },
    /// Source shard → target shard: the entry's current contents (packed
    /// update batch), stamped with the entry's new ownership epoch so
    /// duplicated offers dedup at the target.
    EntryState {
        /// Entry being re-homed.
        entry: u32,
        /// Ownership epoch the target installs under.
        epoch: u32,
        /// Opaque snapshot (see `home::pack_entry_state`).
        state: Bytes,
    },
    /// Target shard → source shard: entry state installed; the target now
    /// owns the entry under `epoch`.
    EntryInstalled {
        /// Entry.
        entry: u32,
        /// Installed ownership epoch.
        epoch: u32,
    },
    /// Source shard → admin: re-homing of `entry` to `to_shard` complete.
    EntryDone {
        /// Entry.
        entry: u32,
        /// New owning shard.
        to_shard: u32,
    },
    /// Shard → client, replacing the `Ack` of an [`DsdMsg::UpdateFlush`]
    /// that named entries no longer homed here: each row is
    /// `(entry, owning shard, ownership epoch)`. The client re-buckets
    /// those updates and resends; nothing from the bounced flush was
    /// absorbed.
    EntryMoved {
        /// `(entry, to_shard, ownership_epoch)` rows, epoch-monotonic so
        /// a late duplicate never rolls a newer mapping back.
        entries: Vec<(u32, u32, u32)>,
    },
}

/// Protocol-level decode errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// Frame too short.
    Truncated,
    /// Message kind unknown / payload shape mismatch.
    BadMessage(&'static str),
    /// Embedded update batch failed to decode.
    Wire(WireError),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "truncated protocol frame"),
            ProtocolError::BadMessage(s) => write!(f, "bad message: {s}"),
            ProtocolError::Wire(e) => write!(f, "wire: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<WireError> for ProtocolError {
    fn from(e: WireError) -> Self {
        ProtocolError::Wire(e)
    }
}

impl DsdMsg {
    /// The transport kind this message travels under.
    pub fn kind(&self) -> MsgKind {
        match self {
            DsdMsg::LockRequest { .. } => MsgKind::LockRequest,
            DsdMsg::LockGrant { .. } => MsgKind::LockGrant,
            DsdMsg::UnlockRequest { .. } => MsgKind::UnlockRequest,
            DsdMsg::UnlockAck { .. } => MsgKind::UnlockAck,
            DsdMsg::BarrierEnter { .. } => MsgKind::BarrierEnter,
            DsdMsg::BarrierRelease { .. } => MsgKind::BarrierRelease,
            DsdMsg::Join { .. } => MsgKind::Join,
            DsdMsg::CondWait { .. } => MsgKind::CondWait,
            DsdMsg::CondSignal { .. } => MsgKind::CondSignal,
            DsdMsg::Resync { .. } => MsgKind::Resync,
            DsdMsg::Ack => MsgKind::Ack,
            DsdMsg::Heartbeat { .. } => MsgKind::Heartbeat,
            DsdMsg::WorkerLost { .. } => MsgKind::WorkerLost,
            DsdMsg::Shutdown => MsgKind::Shutdown,
            DsdMsg::UpdateFlush { .. } => MsgKind::UpdateFlush,
            DsdMsg::UpdateFetch { .. } => MsgKind::UpdateFetch,
            DsdMsg::UpdateBatch { .. } => MsgKind::UpdateBatch,
            DsdMsg::Replicate { .. } => MsgKind::Replicate,
            DsdMsg::Depose { .. } => MsgKind::Depose,
            DsdMsg::DeposeAck { .. } => MsgKind::DeposeAck,
            DsdMsg::ViewChange { .. } => MsgKind::ViewChange,
            DsdMsg::HandoffRequest { .. } => MsgKind::HandoffRequest,
            DsdMsg::HandoffState { .. } => MsgKind::HandoffState,
            DsdMsg::HandoffInstalled { .. } => MsgKind::HandoffInstalled,
            DsdMsg::HandoffDone { .. } => MsgKind::HandoffDone,
            DsdMsg::ReplicaBeat { .. } => MsgKind::ReplicaBeat,
            DsdMsg::EntryHandoff { .. } => MsgKind::EntryHandoff,
            DsdMsg::EntryState { .. } => MsgKind::EntryState,
            DsdMsg::EntryInstalled { .. } => MsgKind::EntryInstalled,
            DsdMsg::EntryDone { .. } => MsgKind::EntryDone,
            DsdMsg::EntryMoved { .. } => MsgKind::EntryMoved,
        }
    }

    /// Is `kind` a client-originated request (or heartbeat)? These are
    /// the kinds that carry the epoch-stamped reliability envelope when
    /// replication is on; replies and the replication/admin control plane
    /// keep the plain envelope.
    pub fn epoch_stamped(kind: MsgKind) -> bool {
        matches!(
            kind,
            MsgKind::LockRequest
                | MsgKind::UnlockRequest
                | MsgKind::BarrierEnter
                | MsgKind::Join
                | MsgKind::CondWait
                | MsgKind::CondSignal
                | MsgKind::Resync
                | MsgKind::Other
                | MsgKind::Heartbeat
                | MsgKind::UpdateFlush
                | MsgKind::UpdateFetch
        )
    }

    /// Encode to a payload with the v1 (per-update framed) batch format.
    /// The update batch (if any) is packed with the CGT-RMR wire format —
    /// this is the `t_pack` work.
    pub fn encode(&self) -> Bytes {
        self.encode_with(pack_batch)
    }

    /// Encode to a payload, choosing the batch format: `fast` uses the v2
    /// grouped format ([`pack_batch_fast`]), otherwise v1. [`Self::decode`]
    /// accepts either, so mixed-mode clusters interoperate.
    pub fn encode_mode(&self, fast: bool) -> Bytes {
        self.encode_with(if fast { pack_batch_fast } else { pack_batch })
    }

    fn encode_with(&self, pack: fn(&[WireUpdate]) -> Bytes) -> Bytes {
        let mut out = BytesMut::with_capacity(16);
        match self {
            DsdMsg::LockRequest { lock, rank } => {
                out.put_u32(*lock);
                out.put_u32(*rank);
            }
            DsdMsg::LockGrant { lock, updates } => {
                out.put_u32(*lock);
                out.put_slice(&pack(updates));
            }
            DsdMsg::UnlockRequest {
                lock,
                rank,
                updates,
            } => {
                out.put_u32(*lock);
                out.put_u32(*rank);
                out.put_slice(&pack(updates));
            }
            DsdMsg::UnlockAck { lock } => out.put_u32(*lock),
            DsdMsg::BarrierEnter {
                barrier,
                rank,
                updates,
            } => {
                out.put_u32(*barrier);
                out.put_u32(*rank);
                out.put_slice(&pack(updates));
            }
            DsdMsg::BarrierRelease { barrier, updates } => {
                out.put_u32(*barrier);
                out.put_slice(&pack(updates));
            }
            DsdMsg::Join { rank } | DsdMsg::Resync { rank } | DsdMsg::Heartbeat { rank } => {
                out.put_u32(*rank)
            }
            DsdMsg::WorkerLost {
                rank,
                heard_ms,
                lease_ms,
            } => {
                out.put_u32(*rank);
                out.put_u64(*heard_ms);
                out.put_u64(*lease_ms);
            }
            DsdMsg::CondWait {
                cond,
                lock,
                rank,
                updates,
            } => {
                out.put_u32(*cond);
                out.put_u32(*lock);
                out.put_u32(*rank);
                out.put_slice(&pack(updates));
            }
            DsdMsg::CondSignal {
                cond,
                rank,
                broadcast,
            } => {
                out.put_u32(*cond);
                out.put_u32(*rank);
                out.put_u8(u8::from(*broadcast));
            }
            DsdMsg::UpdateFlush { rank, updates } => {
                out.put_u32(*rank);
                out.put_slice(&pack(updates));
            }
            DsdMsg::UpdateFetch { rank } => out.put_u32(*rank),
            DsdMsg::UpdateBatch { updates } => out.put_slice(&pack(updates)),
            DsdMsg::Replicate {
                src_ep,
                req_id,
                kind,
                body,
            } => {
                out.put_u32(*src_ep);
                out.put_u64(*req_id);
                out.put_u16(*kind);
                out.put_slice(body);
            }
            DsdMsg::Depose { shard, epoch }
            | DsdMsg::DeposeAck { shard, epoch }
            | DsdMsg::ViewChange { shard, epoch }
            | DsdMsg::HandoffInstalled { shard, epoch }
            | DsdMsg::HandoffDone { shard, epoch } => {
                out.put_u32(*shard);
                out.put_u32(*epoch);
            }
            DsdMsg::HandoffRequest { shard } | DsdMsg::ReplicaBeat { shard } => out.put_u32(*shard),
            DsdMsg::HandoffState {
                shard,
                epoch,
                state,
            } => {
                out.put_u32(*shard);
                out.put_u32(*epoch);
                out.put_slice(state);
            }
            DsdMsg::EntryHandoff { entry, to_shard } | DsdMsg::EntryDone { entry, to_shard } => {
                out.put_u32(*entry);
                out.put_u32(*to_shard);
            }
            DsdMsg::EntryState {
                entry,
                epoch,
                state,
            } => {
                out.put_u32(*entry);
                out.put_u32(*epoch);
                out.put_slice(state);
            }
            DsdMsg::EntryInstalled { entry, epoch } => {
                out.put_u32(*entry);
                out.put_u32(*epoch);
            }
            DsdMsg::EntryMoved { entries } => {
                out.put_u32(entries.len() as u32);
                for (entry, to_shard, epoch) in entries {
                    out.put_u32(*entry);
                    out.put_u32(*to_shard);
                    out.put_u32(*epoch);
                }
            }
            DsdMsg::Ack | DsdMsg::Shutdown => {}
        }
        out.freeze()
    }

    /// Decode a payload received under `kind` — the `t_unpack` work.
    pub fn decode(kind: MsgKind, mut payload: Bytes) -> Result<DsdMsg, ProtocolError> {
        fn u32_of(b: &mut Bytes) -> Result<u32, ProtocolError> {
            if b.remaining() < 4 {
                return Err(ProtocolError::Truncated);
            }
            Ok(b.get_u32())
        }
        match kind {
            MsgKind::LockRequest => Ok(DsdMsg::LockRequest {
                lock: u32_of(&mut payload)?,
                rank: u32_of(&mut payload)?,
            }),
            MsgKind::LockGrant => Ok(DsdMsg::LockGrant {
                lock: u32_of(&mut payload)?,
                updates: unpack_batch(payload)?,
            }),
            MsgKind::UnlockRequest => Ok(DsdMsg::UnlockRequest {
                lock: u32_of(&mut payload)?,
                rank: u32_of(&mut payload)?,
                updates: unpack_batch(payload)?,
            }),
            MsgKind::UnlockAck => Ok(DsdMsg::UnlockAck {
                lock: u32_of(&mut payload)?,
            }),
            MsgKind::BarrierEnter => Ok(DsdMsg::BarrierEnter {
                barrier: u32_of(&mut payload)?,
                rank: u32_of(&mut payload)?,
                updates: unpack_batch(payload)?,
            }),
            MsgKind::BarrierRelease => Ok(DsdMsg::BarrierRelease {
                barrier: u32_of(&mut payload)?,
                updates: unpack_batch(payload)?,
            }),
            MsgKind::Join => Ok(DsdMsg::Join {
                rank: u32_of(&mut payload)?,
            }),
            MsgKind::CondWait => Ok(DsdMsg::CondWait {
                cond: u32_of(&mut payload)?,
                lock: u32_of(&mut payload)?,
                rank: u32_of(&mut payload)?,
                updates: unpack_batch(payload)?,
            }),
            MsgKind::CondSignal => {
                let cond = u32_of(&mut payload)?;
                let rank = u32_of(&mut payload)?;
                if payload.remaining() < 1 {
                    return Err(ProtocolError::Truncated);
                }
                let broadcast = payload.get_u8() != 0;
                Ok(DsdMsg::CondSignal {
                    cond,
                    rank,
                    broadcast,
                })
            }
            // `Other` kept for pre-reliability senders that shipped Resync
            // under the catch-all kind.
            MsgKind::Resync | MsgKind::Other => Ok(DsdMsg::Resync {
                rank: u32_of(&mut payload)?,
            }),
            MsgKind::Ack => Ok(DsdMsg::Ack),
            MsgKind::Heartbeat => Ok(DsdMsg::Heartbeat {
                rank: u32_of(&mut payload)?,
            }),
            MsgKind::WorkerLost => {
                let rank = u32_of(&mut payload)?;
                // Legacy frames carried only the rank; the forensic
                // fields default to 0 ("unknown").
                let (heard_ms, lease_ms) = if payload.remaining() >= 16 {
                    (payload.get_u64(), payload.get_u64())
                } else {
                    (0, 0)
                };
                Ok(DsdMsg::WorkerLost {
                    rank,
                    heard_ms,
                    lease_ms,
                })
            }
            MsgKind::Shutdown => Ok(DsdMsg::Shutdown),
            MsgKind::UpdateFlush => Ok(DsdMsg::UpdateFlush {
                rank: u32_of(&mut payload)?,
                updates: unpack_batch(payload)?,
            }),
            MsgKind::UpdateFetch => Ok(DsdMsg::UpdateFetch {
                rank: u32_of(&mut payload)?,
            }),
            MsgKind::UpdateBatch => Ok(DsdMsg::UpdateBatch {
                updates: unpack_batch(payload)?,
            }),
            MsgKind::Replicate => {
                let src_ep = u32_of(&mut payload)?;
                if payload.remaining() < 10 {
                    return Err(ProtocolError::Truncated);
                }
                let req_id = payload.get_u64();
                let kind = payload.get_u16();
                Ok(DsdMsg::Replicate {
                    src_ep,
                    req_id,
                    kind,
                    body: payload,
                })
            }
            MsgKind::Depose => Ok(DsdMsg::Depose {
                shard: u32_of(&mut payload)?,
                epoch: u32_of(&mut payload)?,
            }),
            MsgKind::DeposeAck => Ok(DsdMsg::DeposeAck {
                shard: u32_of(&mut payload)?,
                epoch: u32_of(&mut payload)?,
            }),
            MsgKind::ViewChange => Ok(DsdMsg::ViewChange {
                shard: u32_of(&mut payload)?,
                epoch: u32_of(&mut payload)?,
            }),
            MsgKind::HandoffRequest => Ok(DsdMsg::HandoffRequest {
                shard: u32_of(&mut payload)?,
            }),
            MsgKind::HandoffState => Ok(DsdMsg::HandoffState {
                shard: u32_of(&mut payload)?,
                epoch: u32_of(&mut payload)?,
                state: payload,
            }),
            MsgKind::HandoffInstalled => Ok(DsdMsg::HandoffInstalled {
                shard: u32_of(&mut payload)?,
                epoch: u32_of(&mut payload)?,
            }),
            MsgKind::HandoffDone => Ok(DsdMsg::HandoffDone {
                shard: u32_of(&mut payload)?,
                epoch: u32_of(&mut payload)?,
            }),
            MsgKind::ReplicaBeat => Ok(DsdMsg::ReplicaBeat {
                shard: u32_of(&mut payload)?,
            }),
            MsgKind::EntryHandoff => Ok(DsdMsg::EntryHandoff {
                entry: u32_of(&mut payload)?,
                to_shard: u32_of(&mut payload)?,
            }),
            MsgKind::EntryState => Ok(DsdMsg::EntryState {
                entry: u32_of(&mut payload)?,
                epoch: u32_of(&mut payload)?,
                state: payload,
            }),
            MsgKind::EntryInstalled => Ok(DsdMsg::EntryInstalled {
                entry: u32_of(&mut payload)?,
                epoch: u32_of(&mut payload)?,
            }),
            MsgKind::EntryDone => Ok(DsdMsg::EntryDone {
                entry: u32_of(&mut payload)?,
                to_shard: u32_of(&mut payload)?,
            }),
            MsgKind::EntryMoved => {
                let n = u32_of(&mut payload)? as usize;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push((
                        u32_of(&mut payload)?,
                        u32_of(&mut payload)?,
                        u32_of(&mut payload)?,
                    ));
                }
                Ok(DsdMsg::EntryMoved { entries })
            }
            _ => Err(ProtocolError::BadMessage("unexpected transport kind")),
        }
    }

    /// The thread rank a client-originated message identifies itself with;
    /// `None` for home-originated messages. The home service keys its
    /// liveness and duplicate-suppression state on this.
    pub fn sender_rank(&self) -> Option<u32> {
        match self {
            DsdMsg::LockRequest { rank, .. }
            | DsdMsg::UnlockRequest { rank, .. }
            | DsdMsg::BarrierEnter { rank, .. }
            | DsdMsg::Join { rank }
            | DsdMsg::CondWait { rank, .. }
            | DsdMsg::CondSignal { rank, .. }
            | DsdMsg::Resync { rank }
            | DsdMsg::Heartbeat { rank }
            | DsdMsg::UpdateFlush { rank, .. }
            | DsdMsg::UpdateFetch { rank } => Some(*rank),
            _ => None,
        }
    }

    /// Encode with the reliability envelope: a `u64` request id precedes
    /// the message body. Replies echo the request's id so the client can
    /// match them up and discard stale duplicates; `0` is reserved for
    /// unsolicited messages (heartbeats, shutdown broadcasts).
    pub fn encode_enveloped(&self, req_id: u64) -> Bytes {
        self.encode_enveloped_mode(req_id, false)
    }

    /// [`Self::encode_enveloped`] with an explicit batch-format choice.
    pub fn encode_enveloped_mode(&self, req_id: u64, fast: bool) -> Bytes {
        let body = self.encode_mode(fast);
        let mut out = BytesMut::with_capacity(8 + body.len());
        out.put_u64(req_id);
        out.put_slice(&body);
        out.freeze()
    }

    /// Decode a payload carrying the reliability envelope; returns the
    /// request id alongside the message.
    pub fn decode_enveloped(
        kind: MsgKind,
        mut payload: Bytes,
    ) -> Result<(u64, DsdMsg), ProtocolError> {
        if payload.remaining() < 8 {
            return Err(ProtocolError::Truncated);
        }
        let req_id = payload.get_u64();
        Ok((req_id, DsdMsg::decode(kind, payload)?))
    }

    /// Encode with the *epoch-stamped* reliability envelope used by client
    /// requests when replication is on: `req_id u64 | epoch u32 | body`.
    /// A home shard compares the stamp against its own epoch to detect
    /// stale views (reply [`DsdMsg::ViewChange`]) and its own deposition
    /// (a stamp from the future means another epoch rules the shard).
    pub fn encode_enveloped_epoch(&self, req_id: u64, epoch: u32, fast: bool) -> Bytes {
        let body = self.encode_mode(fast);
        let mut out = BytesMut::with_capacity(12 + body.len());
        out.put_u64(req_id);
        out.put_u32(epoch);
        out.put_slice(&body);
        out.freeze()
    }

    /// Decode a payload carrying the epoch-stamped envelope; returns the
    /// request id and epoch stamp alongside the message.
    pub fn decode_enveloped_epoch(
        kind: MsgKind,
        mut payload: Bytes,
    ) -> Result<(u64, u32, DsdMsg), ProtocolError> {
        if payload.remaining() < 12 {
            return Err(ProtocolError::Truncated);
        }
        let req_id = payload.get_u64();
        let epoch = payload.get_u32();
        Ok((req_id, epoch, DsdMsg::decode(kind, payload)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsm_platform::endian::Endianness;
    use hdsm_platform::scalar::ScalarKind;
    use hdsm_tags::generate::tag_for_scalar_run;

    fn sample_updates() -> Vec<WireUpdate> {
        vec![WireUpdate {
            entry: 3,
            elem_offset: 100,
            endian: Endianness::Big,
            sender: "solaris-sparc".into(),
            tag: tag_for_scalar_run(ScalarKind::Int, 4, 8),
            data: Bytes::from(vec![1u8; 32]),
        }]
    }

    #[test]
    fn all_messages_roundtrip() {
        let msgs = vec![
            DsdMsg::LockRequest { lock: 2, rank: 5 },
            DsdMsg::LockGrant {
                lock: 2,
                updates: sample_updates(),
            },
            DsdMsg::UnlockRequest {
                lock: 2,
                rank: 5,
                updates: sample_updates(),
            },
            DsdMsg::UnlockAck { lock: 2 },
            DsdMsg::BarrierEnter {
                barrier: 0,
                rank: 5,
                updates: vec![],
            },
            DsdMsg::BarrierRelease {
                barrier: 0,
                updates: sample_updates(),
            },
            DsdMsg::Join { rank: 5 },
            DsdMsg::CondWait {
                cond: 1,
                lock: 0,
                rank: 5,
                updates: sample_updates(),
            },
            DsdMsg::CondSignal {
                cond: 1,
                rank: 5,
                broadcast: true,
            },
            DsdMsg::Resync { rank: 5 },
            DsdMsg::Ack,
            DsdMsg::Heartbeat { rank: 5 },
            DsdMsg::WorkerLost {
                rank: 5,
                heard_ms: 31_000,
                lease_ms: 30_000,
            },
            DsdMsg::Shutdown,
            DsdMsg::UpdateFlush {
                rank: 5,
                updates: sample_updates(),
            },
            DsdMsg::UpdateFetch { rank: 5 },
            DsdMsg::UpdateBatch {
                updates: sample_updates(),
            },
            DsdMsg::Replicate {
                src_ep: 7,
                req_id: 41,
                kind: MsgKind::LockRequest as u16,
                body: DsdMsg::LockRequest { lock: 2, rank: 5 }.encode(),
            },
            DsdMsg::Depose { shard: 1, epoch: 2 },
            DsdMsg::DeposeAck { shard: 1, epoch: 2 },
            DsdMsg::ViewChange { shard: 1, epoch: 2 },
            DsdMsg::HandoffRequest { shard: 1 },
            DsdMsg::HandoffState {
                shard: 1,
                epoch: 2,
                state: Bytes::from_static(b"opaque-snapshot"),
            },
            DsdMsg::HandoffInstalled { shard: 1, epoch: 2 },
            DsdMsg::HandoffDone { shard: 1, epoch: 2 },
            DsdMsg::ReplicaBeat { shard: 1 },
            DsdMsg::EntryHandoff {
                entry: 4,
                to_shard: 2,
            },
            DsdMsg::EntryState {
                entry: 4,
                epoch: 3,
                state: Bytes::from_static(b"packed-entry"),
            },
            DsdMsg::EntryInstalled { entry: 4, epoch: 3 },
            DsdMsg::EntryDone {
                entry: 4,
                to_shard: 2,
            },
            DsdMsg::EntryMoved {
                entries: vec![(4, 2, 3), (9, 0, 1)],
            },
            DsdMsg::EntryMoved { entries: vec![] },
        ];
        for m in msgs {
            let kind = m.kind();
            let bytes = m.encode();
            let back = DsdMsg::decode(kind, bytes).unwrap();
            assert_eq!(back, m);
            // And through the reliability envelope.
            let (req_id, back) = DsdMsg::decode_enveloped(kind, m.encode_enveloped(77)).unwrap();
            assert_eq!(req_id, 77);
            assert_eq!(back, m);
        }
    }

    #[test]
    fn fast_mode_roundtrips_every_update_carrier() {
        // Many small same-entry updates — the shape the v2 grouped format
        // exists for — must survive every message that carries a batch.
        let updates: Vec<WireUpdate> = (0..40u32)
            .map(|i| WireUpdate {
                elem_offset: u64::from(i) * 2,
                ..sample_updates().pop().unwrap()
            })
            .collect();
        let msgs = vec![
            DsdMsg::LockGrant {
                lock: 2,
                updates: updates.clone(),
            },
            DsdMsg::UnlockRequest {
                lock: 2,
                rank: 5,
                updates: updates.clone(),
            },
            DsdMsg::BarrierEnter {
                barrier: 0,
                rank: 5,
                updates: updates.clone(),
            },
            DsdMsg::BarrierRelease {
                barrier: 0,
                updates: updates.clone(),
            },
            DsdMsg::CondWait {
                cond: 1,
                lock: 0,
                rank: 5,
                updates: updates.clone(),
            },
            DsdMsg::UpdateFlush {
                rank: 5,
                updates: updates.clone(),
            },
            DsdMsg::UpdateBatch { updates },
        ];
        for m in msgs {
            let kind = m.kind();
            let slow = m.encode_mode(false);
            let fast = m.encode_mode(true);
            assert!(fast.len() < slow.len(), "fast framing should be smaller");
            assert_eq!(DsdMsg::decode(kind, fast).unwrap(), m);
            let (rid, back) =
                DsdMsg::decode_enveloped(kind, m.encode_enveloped_mode(9, true)).unwrap();
            assert_eq!(rid, 9);
            assert_eq!(back, m);
        }
    }

    #[test]
    fn legacy_resync_under_other_kind_still_decodes() {
        let m = DsdMsg::Resync { rank: 9 };
        assert_eq!(DsdMsg::decode(MsgKind::Other, m.encode()).unwrap(), m);
    }

    #[test]
    fn legacy_worker_lost_rank_only_frame_still_decodes() {
        // Pre-failover senders shipped just the rank.
        let mut raw = BytesMut::new();
        raw.put_u32(5);
        assert_eq!(
            DsdMsg::decode(MsgKind::WorkerLost, raw.freeze()).unwrap(),
            DsdMsg::WorkerLost {
                rank: 5,
                heard_ms: 0,
                lease_ms: 0,
            }
        );
    }

    #[test]
    fn epoch_envelope_roundtrips_and_detects_truncation() {
        let m = DsdMsg::LockRequest { lock: 2, rank: 5 };
        let bytes = m.encode_enveloped_epoch(77, 3, false);
        let (rid, epoch, back) = DsdMsg::decode_enveloped_epoch(m.kind(), bytes).unwrap();
        assert_eq!((rid, epoch), (77, 3));
        assert_eq!(back, m);
        assert_eq!(
            DsdMsg::decode_enveloped_epoch(MsgKind::Join, Bytes::from_static(&[0; 11])),
            Err(ProtocolError::Truncated)
        );
    }

    #[test]
    fn epoch_stamping_covers_exactly_the_client_request_kinds() {
        for k in [
            MsgKind::LockRequest,
            MsgKind::UnlockRequest,
            MsgKind::BarrierEnter,
            MsgKind::Join,
            MsgKind::CondWait,
            MsgKind::Heartbeat,
            MsgKind::UpdateFlush,
            MsgKind::UpdateFetch,
        ] {
            assert!(DsdMsg::epoch_stamped(k), "{k:?}");
        }
        for k in [
            MsgKind::LockGrant,
            MsgKind::Ack,
            MsgKind::Shutdown,
            MsgKind::Replicate,
            MsgKind::ViewChange,
            MsgKind::HandoffState,
            MsgKind::ReplicaBeat,
            MsgKind::EntryHandoff,
            MsgKind::EntryState,
            MsgKind::EntryMoved,
        ] {
            assert!(!DsdMsg::epoch_stamped(k), "{k:?}");
        }
    }

    #[test]
    fn envelope_truncation_detected() {
        assert_eq!(
            DsdMsg::decode_enveloped(MsgKind::Ack, Bytes::from_static(&[0; 7])),
            Err(ProtocolError::Truncated)
        );
    }

    #[test]
    fn truncation_detected() {
        assert_eq!(
            DsdMsg::decode(MsgKind::LockRequest, Bytes::from_static(&[0, 0])),
            Err(ProtocolError::Truncated)
        );
        assert!(DsdMsg::decode(MsgKind::LockGrant, Bytes::from_static(&[0, 0, 0, 1])).is_err());
    }

    #[test]
    fn migration_kind_rejected_here() {
        assert!(matches!(
            DsdMsg::decode(MsgKind::Migration, Bytes::new()),
            Err(ProtocolError::BadMessage(_))
        ));
    }
}
