//! DSD protocol messages.
//!
//! The four primitives of paper §4 — `MTh_lock(index, rank)`,
//! `MTh_unlock(index, rank)`, `MTh_barrier(index, rank)`, `MTh_join()` —
//! plus the grant/ack/release replies of Figure 5, a `Resync` notice sent
//! by a freshly migrated thread (its new node's copy is cold), and the
//! final `Shutdown`. Updates ride inside messages as CGT-RMR wire batches.
//!
//! Threads are identified by a stable *thread rank* independent of the
//! transport endpoint, so a thread keeps its identity when it migrates.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use hdsm_net::message::MsgKind;
use hdsm_tags::wire::{pack_batch, unpack_batch, WireError, WireUpdate};
use std::fmt;

/// A decoded DSD protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum DsdMsg {
    /// Thread `rank` requests mutex `lock`.
    LockRequest {
        /// Mutex index.
        lock: u32,
        /// Requesting thread rank.
        rank: u32,
    },
    /// Home grants mutex `lock`; `updates` are the outstanding updates the
    /// acquirer has not yet seen (paper §4.1).
    LockGrant {
        /// Mutex index.
        lock: u32,
        /// Outstanding updates.
        updates: Vec<WireUpdate>,
    },
    /// Thread `rank` releases mutex `lock`, propagating its updates back
    /// to the home thread (paper §4.2).
    UnlockRequest {
        /// Mutex index.
        lock: u32,
        /// Releasing thread rank.
        rank: u32,
        /// The thread's modifications since acquire.
        updates: Vec<WireUpdate>,
    },
    /// Home acknowledges the release.
    UnlockAck {
        /// Mutex index.
        lock: u32,
    },
    /// Thread `rank` enters barrier `barrier`, releasing its updates.
    BarrierEnter {
        /// Barrier index.
        barrier: u32,
        /// Entering thread rank.
        rank: u32,
        /// The thread's modifications since its last release.
        updates: Vec<WireUpdate>,
    },
    /// Home releases a thread from the barrier with merged updates.
    BarrierRelease {
        /// Barrier index.
        barrier: u32,
        /// Merged outstanding updates for this thread.
        updates: Vec<WireUpdate>,
    },
    /// Thread `rank` signs off (called immediately before termination).
    Join {
        /// Joining thread rank.
        rank: u32,
    },
    /// `MTh_cond_wait(cond, lock, rank)`: atomically release mutex `lock`
    /// (propagating `updates`) and sleep on condition `cond`; the reply is
    /// a [`DsdMsg::LockGrant`] once signalled and the mutex re-acquired —
    /// the distributed analogue of `pthread_cond_wait`.
    CondWait {
        /// Condition variable index.
        cond: u32,
        /// Mutex to release and later re-acquire.
        lock: u32,
        /// Waiting thread rank.
        rank: u32,
        /// The thread's modifications since acquire (its release).
        updates: Vec<WireUpdate>,
    },
    /// `MTh_cond_signal` / `MTh_cond_broadcast`: wake one (or all) waiters
    /// of condition `cond`. Fire-and-forget, like its Pthreads
    /// counterpart.
    CondSignal {
        /// Condition variable index.
        cond: u32,
        /// Signalling thread rank.
        rank: u32,
        /// Wake all waiters instead of one.
        broadcast: bool,
    },
    /// A migrated thread announces that its local copy is cold and must be
    /// fully refreshed at its next acquire.
    Resync {
        /// Thread rank that migrated.
        rank: u32,
    },
    /// Home tells everyone the program is over (maps to `pthread_join`
    /// completing at the home node).
    Shutdown,
}

/// Protocol-level decode errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// Frame too short.
    Truncated,
    /// Message kind unknown / payload shape mismatch.
    BadMessage(&'static str),
    /// Embedded update batch failed to decode.
    Wire(WireError),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "truncated protocol frame"),
            ProtocolError::BadMessage(s) => write!(f, "bad message: {s}"),
            ProtocolError::Wire(e) => write!(f, "wire: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<WireError> for ProtocolError {
    fn from(e: WireError) -> Self {
        ProtocolError::Wire(e)
    }
}

impl DsdMsg {
    /// The transport kind this message travels under.
    pub fn kind(&self) -> MsgKind {
        match self {
            DsdMsg::LockRequest { .. } => MsgKind::LockRequest,
            DsdMsg::LockGrant { .. } => MsgKind::LockGrant,
            DsdMsg::UnlockRequest { .. } => MsgKind::UnlockRequest,
            DsdMsg::UnlockAck { .. } => MsgKind::UnlockAck,
            DsdMsg::BarrierEnter { .. } => MsgKind::BarrierEnter,
            DsdMsg::BarrierRelease { .. } => MsgKind::BarrierRelease,
            DsdMsg::Join { .. } => MsgKind::Join,
            DsdMsg::CondWait { .. } => MsgKind::CondWait,
            DsdMsg::CondSignal { .. } => MsgKind::CondSignal,
            DsdMsg::Resync { .. } => MsgKind::Other,
            DsdMsg::Shutdown => MsgKind::Shutdown,
        }
    }

    /// Encode to a payload. The update batch (if any) is packed with the
    /// CGT-RMR wire format — this is the `t_pack` work.
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(16);
        match self {
            DsdMsg::LockRequest { lock, rank } => {
                out.put_u32(*lock);
                out.put_u32(*rank);
            }
            DsdMsg::LockGrant { lock, updates } => {
                out.put_u32(*lock);
                out.put_slice(&pack_batch(updates));
            }
            DsdMsg::UnlockRequest {
                lock,
                rank,
                updates,
            } => {
                out.put_u32(*lock);
                out.put_u32(*rank);
                out.put_slice(&pack_batch(updates));
            }
            DsdMsg::UnlockAck { lock } => out.put_u32(*lock),
            DsdMsg::BarrierEnter {
                barrier,
                rank,
                updates,
            } => {
                out.put_u32(*barrier);
                out.put_u32(*rank);
                out.put_slice(&pack_batch(updates));
            }
            DsdMsg::BarrierRelease { barrier, updates } => {
                out.put_u32(*barrier);
                out.put_slice(&pack_batch(updates));
            }
            DsdMsg::Join { rank } | DsdMsg::Resync { rank } => out.put_u32(*rank),
            DsdMsg::CondWait {
                cond,
                lock,
                rank,
                updates,
            } => {
                out.put_u32(*cond);
                out.put_u32(*lock);
                out.put_u32(*rank);
                out.put_slice(&pack_batch(updates));
            }
            DsdMsg::CondSignal {
                cond,
                rank,
                broadcast,
            } => {
                out.put_u32(*cond);
                out.put_u32(*rank);
                out.put_u8(u8::from(*broadcast));
            }
            DsdMsg::Shutdown => {}
        }
        out.freeze()
    }

    /// Decode a payload received under `kind` — the `t_unpack` work.
    pub fn decode(kind: MsgKind, mut payload: Bytes) -> Result<DsdMsg, ProtocolError> {
        fn u32_of(b: &mut Bytes) -> Result<u32, ProtocolError> {
            if b.remaining() < 4 {
                return Err(ProtocolError::Truncated);
            }
            Ok(b.get_u32())
        }
        match kind {
            MsgKind::LockRequest => Ok(DsdMsg::LockRequest {
                lock: u32_of(&mut payload)?,
                rank: u32_of(&mut payload)?,
            }),
            MsgKind::LockGrant => Ok(DsdMsg::LockGrant {
                lock: u32_of(&mut payload)?,
                updates: unpack_batch(payload)?,
            }),
            MsgKind::UnlockRequest => Ok(DsdMsg::UnlockRequest {
                lock: u32_of(&mut payload)?,
                rank: u32_of(&mut payload)?,
                updates: unpack_batch(payload)?,
            }),
            MsgKind::UnlockAck => Ok(DsdMsg::UnlockAck {
                lock: u32_of(&mut payload)?,
            }),
            MsgKind::BarrierEnter => Ok(DsdMsg::BarrierEnter {
                barrier: u32_of(&mut payload)?,
                rank: u32_of(&mut payload)?,
                updates: unpack_batch(payload)?,
            }),
            MsgKind::BarrierRelease => Ok(DsdMsg::BarrierRelease {
                barrier: u32_of(&mut payload)?,
                updates: unpack_batch(payload)?,
            }),
            MsgKind::Join => Ok(DsdMsg::Join {
                rank: u32_of(&mut payload)?,
            }),
            MsgKind::CondWait => Ok(DsdMsg::CondWait {
                cond: u32_of(&mut payload)?,
                lock: u32_of(&mut payload)?,
                rank: u32_of(&mut payload)?,
                updates: unpack_batch(payload)?,
            }),
            MsgKind::CondSignal => {
                let cond = u32_of(&mut payload)?;
                let rank = u32_of(&mut payload)?;
                if payload.remaining() < 1 {
                    return Err(ProtocolError::Truncated);
                }
                let broadcast = payload.get_u8() != 0;
                Ok(DsdMsg::CondSignal {
                    cond,
                    rank,
                    broadcast,
                })
            }
            MsgKind::Other => Ok(DsdMsg::Resync {
                rank: u32_of(&mut payload)?,
            }),
            MsgKind::Shutdown => Ok(DsdMsg::Shutdown),
            _ => Err(ProtocolError::BadMessage("unexpected transport kind")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsm_platform::endian::Endianness;
    use hdsm_platform::scalar::ScalarKind;
    use hdsm_tags::generate::tag_for_scalar_run;

    fn sample_updates() -> Vec<WireUpdate> {
        vec![WireUpdate {
            entry: 3,
            elem_offset: 100,
            endian: Endianness::Big,
            sender: "solaris-sparc".into(),
            tag: tag_for_scalar_run(ScalarKind::Int, 4, 8),
            data: Bytes::from(vec![1u8; 32]),
        }]
    }

    #[test]
    fn all_messages_roundtrip() {
        let msgs = vec![
            DsdMsg::LockRequest { lock: 2, rank: 5 },
            DsdMsg::LockGrant {
                lock: 2,
                updates: sample_updates(),
            },
            DsdMsg::UnlockRequest {
                lock: 2,
                rank: 5,
                updates: sample_updates(),
            },
            DsdMsg::UnlockAck { lock: 2 },
            DsdMsg::BarrierEnter {
                barrier: 0,
                rank: 5,
                updates: vec![],
            },
            DsdMsg::BarrierRelease {
                barrier: 0,
                updates: sample_updates(),
            },
            DsdMsg::Join { rank: 5 },
            DsdMsg::CondWait {
                cond: 1,
                lock: 0,
                rank: 5,
                updates: sample_updates(),
            },
            DsdMsg::CondSignal {
                cond: 1,
                rank: 5,
                broadcast: true,
            },
            DsdMsg::Resync { rank: 5 },
            DsdMsg::Shutdown,
        ];
        for m in msgs {
            let kind = m.kind();
            let bytes = m.encode();
            let back = DsdMsg::decode(kind, bytes).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn truncation_detected() {
        assert_eq!(
            DsdMsg::decode(MsgKind::LockRequest, Bytes::from_static(&[0, 0])),
            Err(ProtocolError::Truncated)
        );
        assert!(DsdMsg::decode(MsgKind::LockGrant, Bytes::from_static(&[0, 0, 0, 1])).is_err());
    }

    #[test]
    fn migration_kind_rejected_here() {
        assert!(matches!(
            DsdMsg::decode(MsgKind::Migration, Bytes::new()),
            Err(ProtocolError::BadMessage(_))
        ));
    }
}
