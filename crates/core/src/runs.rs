//! Abstracting page diffs to application-level indexes (paper §4/§4.2).
//!
//! After `MTh_unlock()` detects writes (twin/diff byte runs), each run is
//! mapped through the index table to `(entry, element-range)` — the
//! architecture-independent form that can travel between heterogeneous
//! nodes. Consecutive element ranges of the same entry are coalesced so
//! "many (hundreds, perhaps thousands) indexes [distill] into a single
//! tag" (paper §5, Figure 9 discussion).

use crate::index_table::IndexTable;
use hdsm_memory::diff::DiffRun;

/// A coalesced range of modified elements of one index-table entry.
///
/// This is the portable unit of modification: entry ids and element
/// indexes mean the same thing on every node regardless of architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateRange {
    /// Index-table entry.
    pub entry: u32,
    /// First modified element.
    pub first: u64,
    /// Number of modified elements.
    pub count: u64,
}

impl UpdateRange {
    /// One-past-the-last element.
    pub fn end(&self) -> u64 {
        self.first + self.count
    }
}

/// Map byte-level diff runs to element ranges via the index table.
/// Output is sorted by (entry, first) and *uncoalesced*.
pub fn map_runs(table: &IndexTable, runs: &[DiffRun]) -> Vec<UpdateRange> {
    let mut out = Vec::new();
    for run in runs {
        for (entry, first, count) in table.rows_overlapping(run.addr, run.end()) {
            out.push(UpdateRange {
                entry,
                first,
                count,
            });
        }
    }
    out.sort_by_key(|r| (r.entry, r.first));
    out
}

/// Coalesce sorted ranges: merge overlapping or adjacent element ranges of
/// the same entry (the paper's consecutive-array-element grouping).
pub fn coalesce(mut ranges: Vec<UpdateRange>) -> Vec<UpdateRange> {
    ranges.sort_by_key(|r| (r.entry, r.first));
    let mut out: Vec<UpdateRange> = Vec::with_capacity(ranges.len());
    for r in ranges {
        match out.last_mut() {
            Some(last) if last.entry == r.entry && r.first <= last.end() => {
                let new_end = last.end().max(r.end());
                last.count = new_end - last.first;
            }
            _ => out.push(r),
        }
    }
    out
}

/// The full diff→index abstraction: map then coalesce. This function is
/// the paper's `t_index`-to-`t_tag` boundary — callers time [`map_runs`]
/// under `t_index` and [`coalesce`] (plus tag formation) under `t_tag`.
pub fn abstract_diffs(table: &IndexTable, runs: &[DiffRun]) -> Vec<UpdateRange> {
    coalesce(map_runs(table, runs))
}

/// Whole-entry transfer promotion (paper §4): a page DSM would send the
/// whole page when a diff exceeds a threshold; DSD "cannot perform
/// optimizations at the level of the page" but "can transfer and
/// convert/memcpy() large arrays quickly by dealing with them as a
/// whole". When the ranges of one entry cover more than
/// `threshold_percent` of its elements, they are replaced by a single
/// full-entry range — fewer tags, one contiguous conversion/memcpy, at
/// the cost of shipping some unmodified elements.
///
/// Input must be coalesced (sorted, disjoint); the output is too.
pub fn promote_ranges(
    table: &IndexTable,
    ranges: Vec<UpdateRange>,
    threshold_percent: u8,
) -> Vec<UpdateRange> {
    assert!(threshold_percent <= 100);
    if threshold_percent >= 100 || ranges.is_empty() {
        return ranges;
    }
    let mut out: Vec<UpdateRange> = Vec::with_capacity(ranges.len());
    let mut i = 0;
    while i < ranges.len() {
        let entry = ranges[i].entry;
        let mut j = i;
        let mut covered: u64 = 0;
        while j < ranges.len() && ranges[j].entry == entry {
            covered += ranges[j].count;
            j += 1;
        }
        let total = table.row(entry).map(|r| r.count).unwrap_or(0);
        if total > 0 && covered * 100 >= total * u64::from(threshold_percent) {
            out.push(UpdateRange {
                entry,
                first: 0,
                count: total,
            });
        } else {
            out.extend_from_slice(&ranges[i..j]);
        }
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_table::IndexTable;
    use hdsm_platform::ctype::{paper_figure4_struct, CType};
    use hdsm_platform::spec::PlatformSpec;

    const BASE: u64 = 0x4005_8000;

    fn table() -> IndexTable {
        IndexTable::build(
            &CType::Struct(paper_figure4_struct()),
            BASE,
            &PlatformSpec::linux_x86(),
        )
    }

    #[test]
    fn single_element_write() {
        let t = table();
        let a10 = t.row(1).unwrap().elem_addr(10);
        let runs = vec![DiffRun { addr: a10, len: 4 }];
        assert_eq!(
            abstract_diffs(&t, &runs),
            vec![UpdateRange {
                entry: 1,
                first: 10,
                count: 1
            }]
        );
    }

    #[test]
    fn partial_byte_write_promotes_to_element() {
        let t = table();
        let a10 = t.row(1).unwrap().elem_addr(10);
        // One byte inside the element → whole element ships.
        let runs = vec![DiffRun {
            addr: a10 + 2,
            len: 1,
        }];
        assert_eq!(
            abstract_diffs(&t, &runs),
            vec![UpdateRange {
                entry: 1,
                first: 10,
                count: 1
            }]
        );
    }

    #[test]
    fn run_spanning_entries_splits() {
        let t = table();
        let start = t.row(1).unwrap().elem_addr(56168);
        let runs = vec![DiffRun {
            addr: start,
            len: 12,
        }]; // last elem of A + first 2 of B
        assert_eq!(
            abstract_diffs(&t, &runs),
            vec![
                UpdateRange {
                    entry: 1,
                    first: 56168,
                    count: 1
                },
                UpdateRange {
                    entry: 2,
                    first: 0,
                    count: 2
                },
            ]
        );
    }

    #[test]
    fn scattered_writes_coalesce_when_adjacent() {
        let t = table();
        let a = t.row(1).unwrap().clone();
        let runs = vec![
            DiffRun {
                addr: a.elem_addr(5),
                len: 4,
            },
            DiffRun {
                addr: a.elem_addr(6),
                len: 4,
            },
            DiffRun {
                addr: a.elem_addr(100),
                len: 8,
            },
        ];
        assert_eq!(
            abstract_diffs(&t, &runs),
            vec![
                UpdateRange {
                    entry: 1,
                    first: 5,
                    count: 2
                },
                UpdateRange {
                    entry: 1,
                    first: 100,
                    count: 2
                },
            ]
        );
    }

    #[test]
    fn thousands_of_indexes_one_range() {
        // The paper's headline coalescing case: a full row of C written,
        // thousands of element indexes → a single range/tag.
        let t = table();
        let c = t.row(3).unwrap().clone();
        let runs = vec![DiffRun {
            addr: c.addr,
            len: (4 * 56169) as usize,
        }];
        let out = abstract_diffs(&t, &runs);
        assert_eq!(
            out,
            vec![UpdateRange {
                entry: 3,
                first: 0,
                count: 56169
            }]
        );
    }

    #[test]
    fn overlapping_ranges_merge() {
        let merged = coalesce(vec![
            UpdateRange {
                entry: 0,
                first: 0,
                count: 10,
            },
            UpdateRange {
                entry: 0,
                first: 5,
                count: 10,
            },
            UpdateRange {
                entry: 1,
                first: 0,
                count: 1,
            },
        ]);
        assert_eq!(
            merged,
            vec![
                UpdateRange {
                    entry: 0,
                    first: 0,
                    count: 15
                },
                UpdateRange {
                    entry: 1,
                    first: 0,
                    count: 1
                },
            ]
        );
    }

    #[test]
    fn different_entries_never_merge() {
        let merged = coalesce(vec![
            UpdateRange {
                entry: 0,
                first: 0,
                count: 1,
            },
            UpdateRange {
                entry: 1,
                first: 0,
                count: 1,
            },
        ]);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn empty_runs_empty_ranges() {
        let t = table();
        assert!(abstract_diffs(&t, &[]).is_empty());
        assert!(coalesce(vec![]).is_empty());
    }

    #[test]
    fn promotion_threshold_behaviour() {
        let t = table();
        // 60% of A modified in two chunks.
        let a_total = t.row(1).unwrap().count;
        let chunk = (a_total * 3) / 10;
        let ranges = vec![
            UpdateRange {
                entry: 1,
                first: 0,
                count: chunk,
            },
            UpdateRange {
                entry: 1,
                first: a_total / 2,
                count: chunk,
            },
            UpdateRange {
                entry: 4,
                first: 0,
                count: 1,
            },
        ];
        // Threshold 50%: A promoted to a single full-entry range; the
        // scalar entry n is left alone.
        let promoted = promote_ranges(&t, ranges.clone(), 50);
        assert_eq!(
            promoted,
            vec![
                UpdateRange {
                    entry: 1,
                    first: 0,
                    count: a_total
                },
                UpdateRange {
                    entry: 4,
                    first: 0,
                    count: 1
                },
            ]
        );
        // Threshold 70%: coverage (60%) below threshold — unchanged.
        assert_eq!(promote_ranges(&t, ranges.clone(), 70), ranges);
        // Threshold 100%: promotion disabled.
        assert_eq!(promote_ranges(&t, ranges.clone(), 100), ranges);
    }

    #[test]
    fn promotion_full_entry_is_idempotent() {
        let t = table();
        let full = vec![UpdateRange {
            entry: 2,
            first: 0,
            count: t.row(2).unwrap().count,
        }];
        assert_eq!(promote_ranges(&t, full.clone(), 10), full);
    }

    #[test]
    fn unsorted_input_is_sorted_and_coalesced() {
        let merged = coalesce(vec![
            UpdateRange {
                entry: 0,
                first: 10,
                count: 5,
            },
            UpdateRange {
                entry: 0,
                first: 0,
                count: 10,
            },
        ]);
        assert_eq!(
            merged,
            vec![UpdateRange {
                entry: 0,
                first: 0,
                count: 15
            }]
        );
    }
}
