//! Multi-session tenancy: several independent DSD sessions sharing one
//! home-shard pool.
//!
//! A *session* is a group of workers with its own private lock, barrier
//! and condition-variable namespace. The cluster builder lays sessions
//! out back-to-back in the global id spaces — session `i`'s lock `j` is
//! global lock `lock0_i + j` — so the home shards keep serving plain
//! `u32` ids and the existing directory sharding (`id % n_shards`)
//! applies unchanged. A [`TenantSpace`] is the offset map a worker uses
//! to mint its session-local handles; the home shards get the same
//! spaces to scope barrier membership, failure blast radius and
//! shutdown to one session at a time.
//!
//! With no sessions configured the cluster runs in classic mode: one
//! implicit global session, byte-identical wire traffic to every
//! pre-tenancy release.

use crate::ids::{BarrierId, CondId, LockId};
use std::ops::Range;

/// What one session asks the cluster builder for: how many of the
/// configured workers it owns (claimed in rank order) and how many
/// private synchronization objects it needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionSpec {
    /// Workers in this session (consecutive ranks, claimed in order).
    pub workers: u32,
    /// Private mutexes.
    pub locks: u32,
    /// Private barriers.
    pub barriers: u32,
    /// Private condition variables.
    pub conds: u32,
}

impl SessionSpec {
    /// A session of `workers` workers with `locks` mutexes and
    /// `barriers` barriers (no condition variables).
    pub fn new(workers: u32, locks: u32, barriers: u32) -> SessionSpec {
        SessionSpec {
            workers,
            locks,
            barriers,
            conds: 0,
        }
    }

    /// Add condition variables.
    pub fn conds(mut self, n: u32) -> SessionSpec {
        self.conds = n;
        self
    }
}

/// One session's slice of the cluster's global rank and synchronization
/// id spaces. Handed to each worker of the session (in its
/// `WorkerInfo`) to mint session-local handles, and to every home shard
/// to scope membership decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSpace {
    /// Session index, `0..n_sessions`.
    pub session: u32,
    /// First thread rank of the session (ranks are `1`-based).
    pub rank0: u32,
    /// Number of workers in the session.
    pub workers: u32,
    /// First global lock id owned by the session.
    pub lock0: u32,
    /// Number of locks owned.
    pub locks: u32,
    /// First global barrier id owned by the session.
    pub barrier0: u32,
    /// Number of barriers owned.
    pub barriers: u32,
    /// First global condition-variable id owned by the session.
    pub cond0: u32,
    /// Number of condition variables owned.
    pub conds: u32,
}

impl TenantSpace {
    /// Lay sessions out back-to-back: ranks from 1, each id space from
    /// 0, in spec order. The layout is a pure function of the specs, so
    /// every node of the cluster derives identical spaces.
    pub fn layout(specs: &[SessionSpec]) -> Vec<TenantSpace> {
        let (mut rank0, mut lock0, mut barrier0, mut cond0) = (1u32, 0u32, 0u32, 0u32);
        specs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let t = TenantSpace {
                    session: i as u32,
                    rank0,
                    workers: s.workers,
                    lock0,
                    locks: s.locks,
                    barrier0,
                    barriers: s.barriers,
                    cond0,
                    conds: s.conds,
                };
                rank0 += s.workers;
                lock0 += s.locks;
                barrier0 += s.barriers;
                cond0 += s.conds;
                t
            })
            .collect()
    }

    /// Session-local mutex `i` as a global handle.
    pub fn lock(&self, i: u32) -> LockId {
        assert!(
            i < self.locks,
            "session {} has {} locks, no lock {i}",
            self.session,
            self.locks
        );
        LockId::new(self.lock0 + i)
    }

    /// Session-local barrier `i` as a global handle.
    pub fn barrier(&self, i: u32) -> BarrierId {
        assert!(
            i < self.barriers,
            "session {} has {} barriers, no barrier {i}",
            self.session,
            self.barriers
        );
        BarrierId::new(self.barrier0 + i)
    }

    /// Session-local condition variable `i` as a global handle.
    pub fn cond(&self, i: u32) -> CondId {
        assert!(
            i < self.conds,
            "session {} has {} conds, no cond {i}",
            self.session,
            self.conds
        );
        CondId::new(self.cond0 + i)
    }

    /// The thread ranks belonging to this session.
    pub fn member_ranks(&self) -> Range<u32> {
        self.rank0..self.rank0 + self.workers
    }

    /// Does thread rank `rank` belong to this session?
    pub fn contains_rank(&self, rank: u32) -> bool {
        self.member_ranks().contains(&rank)
    }

    /// Does global barrier id `barrier` belong to this session?
    pub fn contains_barrier(&self, barrier: u32) -> bool {
        (self.barrier0..self.barrier0 + self.barriers).contains(&barrier)
    }

    /// This worker's 0-based index within the session.
    pub fn local_index(&self, rank: u32) -> u32 {
        assert!(self.contains_rank(rank), "rank {rank} not in session");
        rank - self.rank0
    }
}

/// State a home shard still holds for closed-session ranks when its run
/// ends. Every field should be zero: a session close purges the lease,
/// horizon and reply-cache entries of its members (only the dedup
/// watermark `last_req` survives, deliberately, to keep late duplicate
/// requests at-most-once). The churn soak asserts this stays dry over
/// dozens of sessions under a faulty fabric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResidualReport {
    /// Closed-session ranks still in the lease table.
    pub leases: usize,
    /// Closed-session ranks still holding a cached reply.
    pub dedup: usize,
    /// Closed-session ranks still in the sequence-horizon table.
    pub horizons: usize,
}

impl ResidualReport {
    /// No state leaked.
    pub fn is_clean(&self) -> bool {
        *self == ResidualReport::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_back_to_back() {
        let spaces = TenantSpace::layout(&[
            SessionSpec::new(2, 3, 1),
            SessionSpec::new(3, 1, 2).conds(1),
            SessionSpec::new(1, 0, 0),
        ]);
        assert_eq!(spaces.len(), 3);
        assert_eq!(spaces[0].member_ranks(), 1..3);
        assert_eq!(spaces[1].member_ranks(), 3..6);
        assert_eq!(spaces[2].member_ranks(), 6..7);
        assert_eq!(spaces[0].lock(2).raw(), 2);
        assert_eq!(spaces[1].lock(0).raw(), 3);
        assert_eq!(spaces[0].barrier(0).raw(), 0);
        assert_eq!(spaces[1].barrier(1).raw(), 2);
        assert_eq!(spaces[1].cond(0).raw(), 0);
        assert!(spaces[1].contains_rank(4));
        assert!(!spaces[1].contains_rank(6));
        assert!(spaces[1].contains_barrier(1));
        assert!(!spaces[0].contains_barrier(1));
        assert_eq!(spaces[1].local_index(4), 1);
    }

    #[test]
    #[should_panic(expected = "no lock 1")]
    fn out_of_space_handles_panic() {
        let spaces = TenantSpace::layout(&[SessionSpec::new(1, 1, 0)]);
        let _ = spaces[0].lock(1);
    }

    #[test]
    fn residual_report_cleanliness() {
        assert!(ResidualReport::default().is_clean());
        assert!(!ResidualReport {
            leases: 1,
            ..Default::default()
        }
        .is_clean());
    }
}
