//! Update extraction and application.
//!
//! The releaser side turns coalesced [`UpdateRange`]s into [`WireUpdate`]
//! frames: a CGT-RMR tag plus the raw bytes of the modified elements, in
//! the sender's native format. The applier side is receiver-makes-right:
//! identical tag + endianness → `memcpy`; otherwise per-element conversion
//! (paper §4.1, Figure 5).
//!
//! **Pointers** get special treatment in both directions (paper §4: "with
//! each index then, it is straightforward to map the index to a memory
//! address and vice-versa"): a pointer stored in the shared region is a
//! native simulated address, meaningless on another node, so the extractor
//! *swizzles* each pointer to a portable `(entry, element)` index form and
//! the applier maps it back to a local address through its own index
//! table. Pointer updates therefore never take the memcpy fast path.

use crate::gthv::GthvInstance;
use crate::runs::UpdateRange;
use bytes::Bytes;
use hdsm_platform::endian::{fits_uint, read_uint, write_uint};
use hdsm_platform::scalar::{ScalarClass, ScalarKind};
use hdsm_tags::convert::{convert_scalar_run, ConversionError, ConversionStats};
use hdsm_tags::generate::tag_for_scalar_run;
use hdsm_tags::plan::RunPlan;
use hdsm_tags::tag::TagItem;
use hdsm_tags::wire::WireUpdate;
use std::fmt;

/// Bits of the portable pointer word reserved for the element index.
/// A portable pointer is `0` (NULL) or `1 + (entry << 24 | elem)`; the
/// `+1` bias keeps NULL all-zeros. 24 bits of element index covers the
/// paper's largest arrays (56 169 elements) with ample margin, and the
/// whole word still fits a 4-byte pointer (entry < 127).
pub const PTR_ELEM_BITS: u32 = 24;

/// How an update was applied — exposed so tests and benches can verify
/// the paper's fast-path claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applied {
    /// Homogeneous memcpy fast path.
    Memcpy,
    /// Full receiver-makes-right conversion.
    Converted,
    /// Pointer unswizzling (always element-by-element).
    PointerTranslated,
}

/// Errors from update extraction/application.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateError {
    /// Entry id not present in the table.
    NoSuchEntry(u32),
    /// Element range exceeds the entry.
    RangeOutOfBounds {
        /// Offending entry.
        entry: u32,
        /// First element requested.
        first: u64,
        /// Elements requested.
        count: u64,
        /// Elements available.
        available: u64,
    },
    /// Update tag is not a single scalar/pointer run.
    BadTagShape(String),
    /// Tag scalar kind (pointer vs data) disagrees with the entry.
    KindMismatch {
        /// Entry id.
        entry: u32,
    },
    /// A pointer value could not be swizzled (dangling address) or
    /// unswizzled (bad index).
    BadPointer(String),
    /// Underlying conversion failure.
    Conversion(ConversionError),
    /// Underlying memory failure.
    Mem(hdsm_memory::space::MemError),
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::NoSuchEntry(e) => write!(f, "no entry {e}"),
            UpdateError::RangeOutOfBounds {
                entry,
                first,
                count,
                available,
            } => write!(
                f,
                "range [{first}, +{count}) out of bounds for entry {entry} ({available} elems)"
            ),
            UpdateError::BadTagShape(t) => write!(f, "bad update tag {t}"),
            UpdateError::KindMismatch { entry } => write!(f, "kind mismatch for entry {entry}"),
            UpdateError::BadPointer(s) => write!(f, "bad pointer: {s}"),
            UpdateError::Conversion(e) => write!(f, "conversion: {e}"),
            UpdateError::Mem(e) => write!(f, "memory: {e}"),
        }
    }
}

impl std::error::Error for UpdateError {}

impl From<ConversionError> for UpdateError {
    fn from(e: ConversionError) -> Self {
        UpdateError::Conversion(e)
    }
}

impl From<hdsm_memory::space::MemError> for UpdateError {
    fn from(e: hdsm_memory::space::MemError) -> Self {
        UpdateError::Mem(e)
    }
}

/// Encode a local pointer word (native simulated address) into the
/// portable index form.
fn swizzle_ptr(gthv: &GthvInstance, raw_addr: u64) -> Result<u64, UpdateError> {
    if raw_addr == 0 {
        return Ok(0);
    }
    let (entry, elem) = gthv.table().locate(raw_addr).ok_or_else(|| {
        UpdateError::BadPointer(format!("address {raw_addr:#x} is not in the shared region"))
    })?;
    if elem >= (1 << PTR_ELEM_BITS) {
        return Err(UpdateError::BadPointer(format!(
            "element index {elem} exceeds the {PTR_ELEM_BITS}-bit portable pointer field"
        )));
    }
    Ok(1 + ((u64::from(entry) << PTR_ELEM_BITS) | elem))
}

/// Decode a portable pointer word to a local native address.
fn unswizzle_ptr(gthv: &GthvInstance, portable: u64) -> Result<u64, UpdateError> {
    if portable == 0 {
        return Ok(0);
    }
    let v = portable - 1;
    let entry = (v >> PTR_ELEM_BITS) as u32;
    let elem = v & ((1 << PTR_ELEM_BITS) - 1);
    let row = gthv
        .table()
        .row(entry)
        .ok_or_else(|| UpdateError::BadPointer(format!("portable pointer to bad entry {entry}")))?;
    if elem >= row.count {
        return Err(UpdateError::BadPointer(format!(
            "portable pointer to {entry}[{elem}] out of range"
        )));
    }
    Ok(row.elem_addr(elem))
}

/// Extract wire updates for the given (coalesced) ranges from a node's
/// shared region. Data entries ship verbatim native bytes; pointer entries
/// are swizzled to the portable index form (still in native byte order —
/// the receiver handles endianness like any unsigned scalar).
pub fn extract_updates(
    gthv: &GthvInstance,
    ranges: &[UpdateRange],
) -> Result<Vec<WireUpdate>, UpdateError> {
    let mut out = Vec::with_capacity(ranges.len());
    for r in ranges {
        let row = gthv
            .table()
            .row(r.entry)
            .ok_or(UpdateError::NoSuchEntry(r.entry))?;
        if r.first + r.count > row.count {
            return Err(UpdateError::RangeOutOfBounds {
                entry: r.entry,
                first: r.first,
                count: r.count,
                available: row.count,
            });
        }
        let len = (u64::from(row.size) * r.count) as usize;
        let raw = gthv.space().read(row.elem_addr(r.first), len)?;
        let data = if row.kind == ScalarKind::Ptr {
            let mut swizzled = vec![0u8; len];
            let s = row.size as usize;
            for i in 0..r.count as usize {
                let addr = read_uint(&raw[i * s..(i + 1) * s], gthv.platform().endian) as u64;
                let portable = swizzle_ptr(gthv, addr)?;
                write_uint(
                    u128::from(portable),
                    &mut swizzled[i * s..(i + 1) * s],
                    gthv.platform().endian,
                );
            }
            Bytes::from(swizzled)
        } else {
            Bytes::copy_from_slice(raw)
        };
        out.push(WireUpdate {
            entry: r.entry,
            elem_offset: r.first,
            endian: gthv.platform().endian,
            sender: gthv.platform().name.clone(),
            tag: tag_for_scalar_run(row.kind, row.size, r.count),
            data,
        });
    }
    Ok(out)
}

fn run_shape(u: &WireUpdate) -> Result<(u32, u64, bool), UpdateError> {
    match u.tag.0.as_slice() {
        [TagItem::Scalar { size, count }, TagItem::Padding { bytes: 0 }] => {
            Ok((*size, u64::from(*count), false))
        }
        [TagItem::Pointer { size, count }, TagItem::Padding { bytes: 0 }] => {
            Ok((*size, u64::from(*count), true))
        }
        _ => Err(UpdateError::BadTagShape(u.tag.to_string())),
    }
}

/// Apply one wire update to a node's shared region (untracked — applying
/// remote updates must not look like local writes).
///
/// Returns how it was applied; the caller times this call as `t_conv`.
pub fn apply_update(
    gthv: &mut GthvInstance,
    u: &WireUpdate,
    stats: &mut ConversionStats,
) -> Result<Applied, UpdateError> {
    apply_inner(gthv, u, stats, false, true)
}

/// Apply one wire update through the *tracked* write path, so the write
/// faults/twins/dirties like an application store. Used when replaying a
/// migrating thread's unreleased modifications onto its new node.
pub fn apply_tracked(
    gthv: &mut GthvInstance,
    u: &WireUpdate,
    stats: &mut ConversionStats,
) -> Result<Applied, UpdateError> {
    apply_inner(gthv, u, stats, true, true)
}

fn apply_inner(
    gthv: &mut GthvInstance,
    u: &WireUpdate,
    stats: &mut ConversionStats,
    tracked: bool,
    fast: bool,
) -> Result<Applied, UpdateError> {
    // Copy the scalar fields out of the row instead of cloning it — the
    // row's path String would otherwise be allocated and dropped once per
    // update, 16k times per SOR release.
    let (row_addr, row_size, row_count, row_kind) = {
        let row = gthv
            .table()
            .row(u.entry)
            .ok_or(UpdateError::NoSuchEntry(u.entry))?;
        (row.addr, row.size, row.count, row.kind)
    };
    let (src_size, count, is_ptr) = run_shape(u)?;
    if (row_kind == ScalarKind::Ptr) != is_ptr {
        return Err(UpdateError::KindMismatch { entry: u.entry });
    }
    if u.elem_offset + count > row_count {
        return Err(UpdateError::RangeOutOfBounds {
            entry: u.entry,
            first: u.elem_offset,
            count,
            available: row_count,
        });
    }
    let dst_addr = row_addr + u.elem_offset * u64::from(row_size);
    let dst_len = (u64::from(row_size) * count) as usize;
    let local_endian = gthv.platform().endian;

    if is_ptr {
        // Always element-by-element: unswizzle into native addresses.
        let s = src_size as usize;
        if u.data.len() != s * count as usize {
            return Err(UpdateError::Conversion(ConversionError::SrcSizeMismatch {
                expected: (s * count as usize) as u64,
                got: u.data.len() as u64,
            }));
        }
        let mut native = vec![0u8; dst_len];
        let d = row_size as usize;
        for i in 0..count as usize {
            let portable = read_uint(&u.data[i * s..(i + 1) * s], u.endian) as u64;
            let addr = unswizzle_ptr(gthv, portable)?;
            if !fits_uint(u128::from(addr), d) {
                return Err(UpdateError::BadPointer(format!(
                    "address {addr:#x} does not fit a {d}-byte pointer"
                )));
            }
            write_uint(
                u128::from(addr),
                &mut native[i * d..(i + 1) * d],
                local_endian,
            );
            stats.scalars_converted += 1;
        }
        store(gthv, dst_addr, &native, tracked)?;
        return Ok(Applied::PointerTranslated);
    }

    // Homogeneous fast path: same element size and byte order → memcpy.
    // (The paper gates this on a tag string comparison; size+endian
    // equality is exactly what identical run tags plus the wire-header
    // endianness check establish.)
    if src_size == row_size && u.endian == local_endian {
        if u.data.len() != dst_len {
            return Err(UpdateError::Conversion(ConversionError::SrcSizeMismatch {
                expected: dst_len as u64,
                got: u.data.len() as u64,
            }));
        }
        store(gthv, dst_addr, &u.data, tracked)?;
        stats.memcpy_bytes += dst_len as u64;
        return Ok(Applied::Memcpy);
    }

    // Heterogeneous path: receiver makes right. The fast variant fetches
    // the compiled plan for (entry, sender shape) — lowered once, memoized
    // — instead of re-deriving the dispatch per update; the slow variant
    // keeps the original per-update `convert_scalar_run` as the
    // differential-testing oracle. Both are byte- and stats-identical.
    let mut native = vec![0u8; dst_len];
    if fast {
        let class = row_kind.class();
        let plan = gthv
            .plans_mut()
            .lookup(u.entry as usize, src_size, u.endian, || {
                RunPlan::lower(class, src_size, u.endian, row_size, local_endian)
            });
        plan.apply(&u.data, &mut native, count, stats)?;
    } else {
        convert_scalar_run(
            &u.data,
            src_size,
            u.endian,
            &mut native,
            row_size,
            local_endian,
            row_kind.class(),
            count,
            stats,
        )?;
    }
    store(gthv, dst_addr, &native, tracked)?;
    Ok(Applied::Converted)
}

fn store(
    gthv: &mut GthvInstance,
    addr: u64,
    bytes: &[u8],
    tracked: bool,
) -> Result<(), UpdateError> {
    if tracked {
        gthv.space_mut().write(addr, bytes)?;
    } else {
        gthv.space_mut().write_untracked(addr, bytes)?;
    }
    Ok(())
}

/// Apply a whole batch, returning per-kind counts `(memcpy, converted,
/// pointer)`.
pub fn apply_batch(
    gthv: &mut GthvInstance,
    updates: &[WireUpdate],
    stats: &mut ConversionStats,
) -> Result<(u64, u64, u64), UpdateError> {
    apply_batch_mode(gthv, updates, stats, true)
}

/// [`apply_batch`] with an explicit path selection: `fast` uses the
/// compiled-plan cache, `!fast` the original per-update conversion
/// dispatch. The differential suite runs whole workloads under both and
/// requires byte-identical final memory.
pub fn apply_batch_mode(
    gthv: &mut GthvInstance,
    updates: &[WireUpdate],
    stats: &mut ConversionStats,
    fast: bool,
) -> Result<(u64, u64, u64), UpdateError> {
    let (mut m, mut c, mut p) = (0, 0, 0);
    for u in updates {
        match apply_inner(gthv, u, stats, false, fast)? {
            Applied::Memcpy => m += 1,
            Applied::Converted => c += 1,
            Applied::PointerTranslated => p += 1,
        }
    }
    Ok((m, c, p))
}

/// Ranges covering the *entire* shared structure — used to seed a freshly
/// joined node or to log initialisation as one big batch.
pub fn full_ranges(gthv: &GthvInstance) -> Vec<UpdateRange> {
    gthv.table()
        .rows()
        .iter()
        .map(|r| UpdateRange {
            entry: r.entry,
            first: 0,
            count: r.count,
        })
        .collect()
}

/// The conversion class of an entry (test helper).
pub fn entry_class(gthv: &GthvInstance, entry: u32) -> Option<ScalarClass> {
    gthv.table().row(entry).map(|r| r.kind.class())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gthv::{GthvDef, GthvInstance};
    use hdsm_platform::ctype::paper_figure4_struct;
    use hdsm_platform::spec::{Platform, PlatformSpec};

    fn inst(p: Platform) -> GthvInstance {
        GthvInstance::new(GthvDef::new(paper_figure4_struct()).unwrap(), p)
    }

    fn range(entry: u32, first: u64, count: u64) -> UpdateRange {
        UpdateRange {
            entry,
            first,
            count,
        }
    }

    #[test]
    fn extract_apply_homogeneous_is_memcpy() {
        let mut src = inst(PlatformSpec::linux_x86());
        let mut dst = inst(PlatformSpec::linux_x86());
        for i in 0..100 {
            src.write_int(1, i, (i as i128) * 3 - 50).unwrap();
        }
        let ups = extract_updates(&src, &[range(1, 0, 100)]).unwrap();
        let mut stats = ConversionStats::default();
        let (m, c, p) = apply_batch(&mut dst, &ups, &mut stats).unwrap();
        assert_eq!((m, c, p), (1, 0, 0));
        assert_eq!(stats.memcpy_bytes, 400);
        for i in 0..100 {
            assert_eq!(dst.read_int(1, i).unwrap(), (i as i128) * 3 - 50);
        }
    }

    #[test]
    fn extract_apply_heterogeneous_converts() {
        let mut src = inst(PlatformSpec::linux_x86());
        let mut dst = inst(PlatformSpec::solaris_sparc());
        for i in 0..50 {
            src.write_int(2, i, -(i as i128) * 7).unwrap();
        }
        let ups = extract_updates(&src, &[range(2, 0, 50)]).unwrap();
        let mut stats = ConversionStats::default();
        let (m, c, _p) = apply_batch(&mut dst, &ups, &mut stats).unwrap();
        assert_eq!((m, c), (0, 1));
        assert_eq!(stats.scalars_swapped, 50);
        for i in 0..50 {
            assert_eq!(dst.read_int(2, i).unwrap(), -(i as i128) * 7);
        }
    }

    #[test]
    fn pointer_swizzles_across_heterogeneous_nodes() {
        let mut src = inst(PlatformSpec::linux_x86());
        let mut dst = inst(PlatformSpec::solaris_sparc64());
        src.write_ptr(0, 0, Some((3, 4321))).unwrap();
        let ups = extract_updates(&src, &[range(0, 0, 1)]).unwrap();
        let mut stats = ConversionStats::default();
        let applied = apply_update(&mut dst, &ups[0], &mut stats).unwrap();
        assert_eq!(applied, Applied::PointerTranslated);
        // The logical target survived even though ILP32 LE → LP64 BE and
        // the local addresses of C[4321] differ between the two layouts.
        assert_eq!(dst.read_ptr(0, 0).unwrap(), Some((3, 4321)));
        let src_addr = src.table().row(3).unwrap().elem_addr(4321);
        let dst_addr = dst.table().row(3).unwrap().elem_addr(4321);
        assert_ne!(src_addr, dst_addr);
    }

    #[test]
    fn null_pointer_ships_as_zero() {
        let mut src = inst(PlatformSpec::solaris_sparc());
        let mut dst = inst(PlatformSpec::linux_x86());
        src.write_ptr(0, 0, None).unwrap();
        let ups = extract_updates(&src, &[range(0, 0, 1)]).unwrap();
        assert!(ups[0].data.iter().all(|&b| b == 0));
        let mut stats = ConversionStats::default();
        apply_update(&mut dst, &ups[0], &mut stats).unwrap();
        assert_eq!(dst.read_ptr(0, 0).unwrap(), None);
    }

    #[test]
    fn pointer_updates_never_memcpy_even_homogeneous() {
        let mut src = inst(PlatformSpec::linux_x86());
        let mut dst = inst(PlatformSpec::linux_x86());
        src.write_ptr(0, 0, Some((1, 5))).unwrap();
        let ups = extract_updates(&src, &[range(0, 0, 1)]).unwrap();
        let mut stats = ConversionStats::default();
        assert_eq!(
            apply_update(&mut dst, &ups[0], &mut stats).unwrap(),
            Applied::PointerTranslated
        );
        assert_eq!(dst.read_ptr(0, 0).unwrap(), Some((1, 5)));
    }

    #[test]
    fn partial_range_lands_at_right_offset() {
        let mut src = inst(PlatformSpec::linux_x86());
        let mut dst = inst(PlatformSpec::solaris_sparc());
        for i in 200..210 {
            src.write_int(3, i, 1000 + i as i128).unwrap();
        }
        let ups = extract_updates(&src, &[range(3, 200, 10)]).unwrap();
        assert_eq!(ups[0].elem_offset, 200);
        let mut stats = ConversionStats::default();
        apply_update(&mut dst, &ups[0], &mut stats).unwrap();
        assert_eq!(dst.read_int(3, 205).unwrap(), 1205);
        assert_eq!(dst.read_int(3, 199).unwrap(), 0);
        assert_eq!(dst.read_int(3, 210).unwrap(), 0);
    }

    #[test]
    fn out_of_bounds_rejected_both_sides() {
        let src = inst(PlatformSpec::linux_x86());
        assert!(matches!(
            extract_updates(&src, &[range(1, 56160, 100)]),
            Err(UpdateError::RangeOutOfBounds { .. })
        ));
        assert!(matches!(
            extract_updates(&src, &[range(9, 0, 1)]),
            Err(UpdateError::NoSuchEntry(9))
        ));
        let mut dst = inst(PlatformSpec::linux_x86());
        let mut ups = extract_updates(&src, &[range(1, 0, 4)]).unwrap();
        ups[0].elem_offset = 56168;
        let mut stats = ConversionStats::default();
        assert!(matches!(
            apply_update(&mut dst, &ups[0], &mut stats),
            Err(UpdateError::RangeOutOfBounds { .. })
        ));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let mut src = inst(PlatformSpec::linux_x86());
        src.write_int(1, 0, 5).unwrap();
        let mut ups = extract_updates(&src, &[range(1, 0, 1)]).unwrap();
        ups[0].entry = 0; // pointer entry, scalar tag
        let mut dst = inst(PlatformSpec::linux_x86());
        let mut stats = ConversionStats::default();
        assert!(matches!(
            apply_update(&mut dst, &ups[0], &mut stats),
            Err(UpdateError::KindMismatch { .. })
        ));
    }

    #[test]
    fn applied_updates_do_not_dirty_the_receiver() {
        let mut src = inst(PlatformSpec::linux_x86());
        let mut dst = inst(PlatformSpec::linux_x86());
        dst.space_mut().protect_all();
        src.write_int(1, 0, 1).unwrap();
        let ups = extract_updates(&src, &[range(1, 0, 1)]).unwrap();
        let mut stats = ConversionStats::default();
        apply_update(&mut dst, &ups[0], &mut stats).unwrap();
        assert_eq!(dst.space().dirty_count(), 0);
        assert_eq!(dst.space().stats().faults, 0);
    }

    #[test]
    fn fast_and_slow_apply_are_byte_and_stats_identical() {
        let mut src = inst(PlatformSpec::linux_x86());
        let mut fast = inst(PlatformSpec::solaris_sparc());
        let mut slow = inst(PlatformSpec::solaris_sparc());
        for i in 0..64 {
            src.write_int(1, i, (i as i128) * 13 - 99).unwrap();
        }
        src.write_ptr(0, 0, Some((2, 7))).unwrap();
        let ups = extract_updates(&src, &[range(0, 0, 1), range(1, 0, 64)]).unwrap();
        let mut fast_stats = ConversionStats::default();
        let mut slow_stats = ConversionStats::default();
        let rf = apply_batch_mode(&mut fast, &ups, &mut fast_stats, true).unwrap();
        let rs = apply_batch_mode(&mut slow, &ups, &mut slow_stats, false).unwrap();
        assert_eq!(rf, rs);
        assert_eq!(fast_stats, slow_stats);
        assert_eq!(fast.space().raw(), slow.space().raw());
    }

    #[test]
    fn full_ranges_cover_everything() {
        let g = inst(PlatformSpec::linux_x86());
        let rs = full_ranges(&g);
        assert_eq!(rs.len(), 5);
        assert_eq!(rs[1].count, 56169);
        let total_elems: u64 = rs.iter().map(|r| r.count).sum();
        assert_eq!(total_elems, 1 + 3 * 56169 + 1);
    }

    #[test]
    fn overflow_on_narrowing_long_entries() {
        use hdsm_platform::ctype::StructBuilder;
        use hdsm_platform::scalar::ScalarKind;
        let def = StructBuilder::new("L")
            .array("xs", ScalarKind::Long, 4)
            .build()
            .unwrap();
        let gd = GthvDef::new(def).unwrap();
        let mut src = GthvInstance::new(gd.clone(), PlatformSpec::linux_x86_64());
        let mut dst = GthvInstance::new(gd, PlatformSpec::linux_x86());
        src.write_int(0, 0, 1i128 << 40).unwrap();
        let ups = extract_updates(&src, &[range(0, 0, 4)]).unwrap();
        let mut stats = ConversionStats::default();
        assert!(matches!(
            apply_update(&mut dst, &ups[0], &mut stats),
            Err(UpdateError::Conversion(ConversionError::IntOverflow { .. }))
        ));
    }
}
