//! Property tests for the DSD core: the update pipeline
//! (diff → index ranges → wire → receiver-makes-right apply) must carry
//! arbitrary write patterns faithfully between arbitrary platform pairs.

use hdsm_core::gthv::{GthvDef, GthvInstance};
use hdsm_core::runs::{abstract_diffs, promote_ranges, UpdateRange};
use hdsm_core::update::{apply_batch, extract_updates};
use hdsm_memory::diff::diff_pages;
use hdsm_platform::ctype::StructBuilder;
use hdsm_platform::scalar::ScalarKind;
use hdsm_platform::spec::{Platform, PlatformSpec};
use hdsm_tags::convert::ConversionStats;
use hdsm_tags::wire::{pack_batch, unpack_batch};
use proptest::prelude::*;

const INTS: u64 = 200;
const DOUBLES: u64 = 40;
const PTRS: u64 = 4;

fn def() -> GthvDef {
    GthvDef::new(
        StructBuilder::new("G")
            .array("xs", ScalarKind::Int, INTS as usize)
            .array("fs", ScalarKind::Double, DOUBLES as usize)
            .array("ps", ScalarKind::Ptr, PTRS as usize)
            .scalar("tail", ScalarKind::Short)
            .build()
            .unwrap(),
    )
    .unwrap()
}

#[derive(Debug, Clone)]
enum W {
    Int(u64, i32),
    Float(u64, f32),
    Ptr(u64, Option<u64>),
    Tail(i16),
}

fn any_write() -> impl Strategy<Value = W> {
    prop_oneof![
        (0..INTS, any::<i32>()).prop_map(|(e, v)| W::Int(e, v)),
        (
            0..DOUBLES,
            any::<f32>().prop_filter("finite", |f| f.is_finite())
        )
            .prop_map(|(e, v)| W::Float(e, v)),
        (0..PTRS, prop::option::of(0..INTS)).prop_map(|(e, v)| W::Ptr(e, v)),
        any::<i16>().prop_map(W::Tail),
    ]
}

fn any_platform() -> impl Strategy<Value = Platform> {
    prop::sample::select(PlatformSpec::presets())
}

fn apply_writes(g: &mut GthvInstance, writes: &[W]) {
    for w in writes {
        match w {
            W::Int(e, v) => g.write_int(0, *e, *v as i128).unwrap(),
            W::Float(e, v) => g.write_float(1, *e, *v as f64).unwrap(),
            W::Ptr(e, None) => g.write_ptr(2, *e, None).unwrap(),
            W::Ptr(e, Some(t)) => g.write_ptr(2, *e, Some((0, *t))).unwrap(),
            W::Tail(v) => g.write_int(3, 0, *v as i128).unwrap(),
        }
    }
}

fn logical_equal(a: &GthvInstance, b: &GthvInstance) -> bool {
    for e in 0..INTS {
        if a.read_int(0, e).unwrap() != b.read_int(0, e).unwrap() {
            return false;
        }
    }
    for e in 0..DOUBLES {
        if a.read_float(1, e).unwrap() != b.read_float(1, e).unwrap() {
            return false;
        }
    }
    for e in 0..PTRS {
        if a.read_ptr(2, e).unwrap() != b.read_ptr(2, e).unwrap() {
            return false;
        }
    }
    a.read_int(3, 0).unwrap() == b.read_int(3, 0).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// diff → ranges → extract → pack → unpack → apply moves exactly the
    /// written state from a src platform to a dst platform.
    #[test]
    fn pipeline_transfers_arbitrary_writes(
        writes in prop::collection::vec(any_write(), 1..40),
        src_p in any_platform(),
        dst_p in any_platform(),
    ) {
        let mut src = GthvInstance::new(def(), src_p);
        src.space_mut().protect_all();
        apply_writes(&mut src, &writes);

        let ranges = abstract_diffs(src.table(), &diff_pages(src.space()));
        let ups = extract_updates(&src, &ranges).unwrap();
        let packed = pack_batch(&ups);
        let unpacked = unpack_batch(packed).unwrap();

        let mut dst = GthvInstance::new(def(), dst_p);
        let mut stats = ConversionStats::default();
        apply_batch(&mut dst, &unpacked, &mut stats).unwrap();
        prop_assert!(logical_equal(&src, &dst));
    }

    /// Promotion at any threshold never changes the transferred state
    /// (only how much of it ships) when the receiver starts from the same
    /// base image.
    #[test]
    fn promotion_is_semantics_preserving(
        writes in prop::collection::vec(any_write(), 1..30),
        threshold in 0u8..=100,
    ) {
        let p = PlatformSpec::linux_x86();
        let mut src = GthvInstance::new(def(), p.clone());
        src.space_mut().protect_all();
        apply_writes(&mut src, &writes);
        let ranges = abstract_diffs(src.table(), &diff_pages(src.space()));
        let promoted = promote_ranges(src.table(), ranges.clone(), threshold);

        // Promoted ranges cover at least the original ones.
        for r in &ranges {
            let covered = promoted.iter().any(|pr| {
                pr.entry == r.entry && pr.first <= r.first && pr.end() >= r.end()
            });
            prop_assert!(covered, "range {:?} lost by promotion", r);
        }

        // Applying promoted updates to a *fresh copy of the source's base
        // image* yields the same logical state.
        let ups = extract_updates(&src, &promoted).unwrap();
        let mut dst = GthvInstance::new(def(), PlatformSpec::solaris_sparc());
        let mut stats = ConversionStats::default();
        apply_batch(&mut dst, &ups, &mut stats).unwrap();
        // Elements inside the original ranges must match exactly.
        for r in &ranges {
            for e in r.first..r.end() {
                match r.entry {
                    0 => prop_assert_eq!(
                        src.read_int(0, e).unwrap(),
                        dst.read_int(0, e).unwrap()
                    ),
                    1 => prop_assert_eq!(
                        src.read_float(1, e).unwrap(),
                        dst.read_float(1, e).unwrap()
                    ),
                    2 => prop_assert_eq!(
                        src.read_ptr(2, e).unwrap(),
                        dst.read_ptr(2, e).unwrap()
                    ),
                    _ => prop_assert_eq!(
                        src.read_int(3, 0).unwrap(),
                        dst.read_int(3, 0).unwrap()
                    ),
                }
            }
        }
    }

    /// Ranges produced by abstraction are sorted, disjoint and in bounds.
    #[test]
    fn abstracted_ranges_are_well_formed(
        writes in prop::collection::vec(any_write(), 0..40),
    ) {
        let p = PlatformSpec::solaris_sparc();
        let mut g = GthvInstance::new(def(), p);
        g.space_mut().protect_all();
        apply_writes(&mut g, &writes);
        let ranges = abstract_diffs(g.table(), &diff_pages(g.space()));
        let mut prev: Option<UpdateRange> = None;
        for r in &ranges {
            let row = g.table().row(r.entry).unwrap();
            prop_assert!(r.count >= 1);
            prop_assert!(r.first + r.count <= row.count);
            if let Some(p) = prev {
                prop_assert!(
                    p.entry < r.entry || (p.entry == r.entry && p.end() < r.first),
                    "ranges not sorted/disjoint: {:?} then {:?}", p, r
                );
            }
            prev = Some(*r);
        }
    }

    /// Re-extracting and re-applying the same updates is idempotent.
    #[test]
    fn apply_is_idempotent(
        writes in prop::collection::vec(any_write(), 1..20),
    ) {
        let mut src = GthvInstance::new(def(), PlatformSpec::linux_x86());
        src.space_mut().protect_all();
        apply_writes(&mut src, &writes);
        let ranges = abstract_diffs(src.table(), &diff_pages(src.space()));
        let ups = extract_updates(&src, &ranges).unwrap();
        let mut dst = GthvInstance::new(def(), PlatformSpec::linux_arm());
        let mut stats = ConversionStats::default();
        apply_batch(&mut dst, &ups, &mut stats).unwrap();
        let snapshot = dst.space().raw().to_vec();
        apply_batch(&mut dst, &ups, &mut stats).unwrap();
        prop_assert_eq!(dst.space().raw(), &snapshot[..]);
    }
}
