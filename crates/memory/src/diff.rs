//! Twin/diff: byte-level comparison of dirty pages against their twins.
//!
//! Paper §4.2: "each byte on the dirty page must be compared to its
//! corresponding byte on the original page" — this scan is the dominant
//! part of the paper's `t_index` (Figure 8 measures it together with the
//! run→index mapping). The output is a list of maximal *runs* of modified
//! bytes, addressed in the node's simulated address space.

use crate::space::AddressSpace;

/// A maximal run of modified bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffRun {
    /// Simulated address of the first modified byte.
    pub addr: u64,
    /// Number of modified bytes.
    pub len: usize,
}

impl DiffRun {
    /// End address (exclusive).
    pub fn end(&self) -> u64 {
        self.addr + self.len as u64
    }
}

/// Compare one page against a twin, appending maximal modified runs to
/// `out`. `page_addr` is the simulated address of the page's first byte.
pub fn diff_page_into(page_addr: u64, twin: &[u8], current: &[u8], out: &mut Vec<DiffRun>) {
    debug_assert_eq!(twin.len(), current.len());
    let mut i = 0;
    let n = current.len();
    while i < n {
        if twin[i] == current[i] {
            i += 1;
            continue;
        }
        let start = i;
        while i < n && twin[i] != current[i] {
            i += 1;
        }
        out.push(DiffRun {
            addr: page_addr + start as u64,
            len: i - start,
        });
    }
}

/// Diff every dirty page of a space against its twin, returning runs in
/// ascending address order. Runs never span page boundaries (pages are
/// diffed independently, as in any twin/diff DSM); adjacent cross-page runs
/// are merged afterwards so callers see true byte runs.
pub fn diff_pages(space: &AddressSpace) -> Vec<DiffRun> {
    let mut out = Vec::new();
    for page in space.dirty_pages() {
        let twin = space
            .twin(page)
            .expect("dirty page always has a twin (fault handler invariant)");
        diff_page_into(space.page_addr(page), twin, space.page(page), &mut out);
    }
    // Merge runs that touch across page boundaries.
    merge_adjacent(&mut out);
    out
}

/// Worker count for [`diff_pages_parallel`] on this host: available
/// parallelism capped at 4 — diffing is memory-bound, so more threads stop
/// paying for themselves quickly.
pub fn default_diff_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4)
}

/// Number of dirty pages below which the parallel scan falls back to the
/// serial path: spawning scoped threads costs more than diffing a handful
/// of pages, and the fallback keeps small syncs (the common case for the
/// paper's workloads at reduced scale) on the cheap path.
pub const PARALLEL_DIFF_MIN_PAGES: usize = 16;

/// Parallel variant of [`diff_pages`]: shard the dirty-page set across up
/// to `threads` scoped workers, each diffing its contiguous shard of pages
/// independently, then concatenate shard outputs in shard order and merge
/// across page boundaries. Pages are diffed independently in the serial
/// path too, so the output is bit-identical to [`diff_pages`] — the
/// property test in `tests/proptest_dsd.rs` pins this.
pub fn diff_pages_parallel(space: &AddressSpace, threads: usize) -> Vec<DiffRun> {
    let pages: Vec<usize> = space.dirty_pages().collect();
    if threads < 2 || pages.len() < PARALLEL_DIFF_MIN_PAGES {
        return diff_pages(space);
    }
    // `dirty_pages` iterates in ascending page order; contiguous shards
    // concatenated in shard order therefore preserve ascending addresses.
    let chunk = pages.len().div_ceil(threads.min(pages.len()));
    let mut shards: Vec<Vec<DiffRun>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = pages
            .chunks(chunk)
            .map(|shard| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    for &page in shard {
                        let twin = space
                            .twin(page)
                            .expect("dirty page always has a twin (fault handler invariant)");
                        diff_page_into(space.page_addr(page), twin, space.page(page), &mut out);
                    }
                    out
                })
            })
            .collect();
        shards = handles
            .into_iter()
            .map(|h| h.join().expect("diff shard panicked"))
            .collect();
    });
    let mut out: Vec<DiffRun> = shards.into_iter().flatten().collect();
    merge_adjacent(&mut out);
    out
}

/// Merge runs where one ends exactly where the next begins.
pub fn merge_adjacent(runs: &mut Vec<DiffRun>) {
    if runs.len() < 2 {
        return;
    }
    let mut w = 0;
    for r in 1..runs.len() {
        if runs[w].end() == runs[r].addr {
            runs[w].len += runs[r].len;
        } else {
            w += 1;
            runs[w] = runs[r];
        }
    }
    runs.truncate(w + 1);
}

/// Total modified bytes across runs.
pub fn total_bytes(runs: &[DiffRun]) -> u64 {
    runs.iter().map(|r| r.len as u64).sum()
}

/// Attribute runs to pages: split every run at page boundaries and return
/// `(page_index, bytes)` chunks in run order, where `page_index` is
/// relative to `base`. Used by the observability heatmap to charge diffed
/// bytes to the page they live on; a merged cross-page run contributes one
/// chunk per page it touches.
pub fn split_by_page(runs: &[DiffRun], base: u64, page_size: u64) -> Vec<(u64, u64)> {
    debug_assert!(page_size > 0);
    let mut out = Vec::new();
    for run in runs {
        // Clamp to the space: bytes below `base` have no page to be charged
        // to, and including them would underflow the page computation.
        let mut addr = run.addr.max(base);
        let end = run.end();
        while addr < end {
            let page = (addr - base) / page_size;
            let page_end = base + (page + 1) * page_size;
            let chunk = end.min(page_end) - addr;
            out.push((page, chunk));
            addr += chunk;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: u64 = 0x1000;

    fn armed(len: usize, page: usize) -> AddressSpace {
        let mut s = AddressSpace::new(BASE, len, page);
        s.protect_all();
        s
    }

    #[test]
    fn clean_space_has_no_diffs() {
        let s = armed(4096, 4096);
        assert!(diff_pages(&s).is_empty());
    }

    #[test]
    fn single_byte_diff() {
        let mut s = armed(4096, 4096);
        s.write(BASE + 17, &[5]).unwrap();
        assert_eq!(
            diff_pages(&s),
            vec![DiffRun {
                addr: BASE + 17,
                len: 1
            }]
        );
    }

    #[test]
    fn write_of_same_value_produces_no_diff() {
        // The page faults (it was armed) but the bytes did not change, so
        // the byte-level diff is empty — exactly why twin/diff beats
        // page-granularity dirty tracking for write traffic.
        let mut s = armed(4096, 4096);
        s.write(BASE + 17, &[0]).unwrap();
        assert_eq!(s.dirty_count(), 1);
        assert!(diff_pages(&s).is_empty());
    }

    #[test]
    fn separate_runs_within_a_page() {
        let mut s = armed(4096, 4096);
        s.write(BASE, &[1, 2]).unwrap();
        s.write(BASE + 100, &[3]).unwrap();
        let runs = diff_pages(&s);
        assert_eq!(
            runs,
            vec![
                DiffRun { addr: BASE, len: 2 },
                DiffRun {
                    addr: BASE + 100,
                    len: 1
                }
            ]
        );
        assert_eq!(total_bytes(&runs), 3);
    }

    #[test]
    fn run_spanning_page_boundary_is_merged() {
        let mut s = armed(8192, 4096);
        let addr = BASE + 4094;
        s.write(addr, &[1, 2, 3, 4]).unwrap();
        let runs = diff_pages(&s);
        assert_eq!(runs, vec![DiffRun { addr, len: 4 }]);
    }

    #[test]
    fn adjacent_writes_coalesce_into_one_run() {
        let mut s = armed(4096, 4096);
        s.write(BASE + 8, &[1, 1, 1, 1]).unwrap();
        s.write(BASE + 12, &[2, 2, 2, 2]).unwrap();
        assert_eq!(
            diff_pages(&s),
            vec![DiffRun {
                addr: BASE + 8,
                len: 8
            }]
        );
    }

    #[test]
    fn only_dirty_pages_are_scanned() {
        let mut s = armed(3 * 4096, 4096);
        s.write(BASE + 2 * 4096 + 5, &[7]).unwrap();
        let runs = diff_pages(&s);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].addr, BASE + 2 * 4096 + 5);
    }

    #[test]
    fn merge_adjacent_handles_non_touching() {
        let mut runs = vec![
            DiffRun { addr: 0, len: 4 },
            DiffRun { addr: 4, len: 4 },
            DiffRun { addr: 10, len: 2 },
            DiffRun { addr: 12, len: 1 },
        ];
        merge_adjacent(&mut runs);
        assert_eq!(
            runs,
            vec![DiffRun { addr: 0, len: 8 }, DiffRun { addr: 10, len: 3 }]
        );
    }

    #[test]
    fn split_by_page_charges_each_page_its_share() {
        let runs = vec![
            DiffRun {
                addr: BASE + 10,
                len: 4,
            },
            // Spans the first/second page boundary: 2 bytes each side.
            DiffRun {
                addr: BASE + 4094,
                len: 4,
            },
            // Covers all of page 2 and one byte of page 3.
            DiffRun {
                addr: BASE + 2 * 4096,
                len: 4097,
            },
        ];
        assert_eq!(
            split_by_page(&runs, BASE, 4096),
            vec![(0, 4), (0, 2), (1, 2), (2, 4096), (3, 1)]
        );
        let charged: u64 = split_by_page(&runs, BASE, 4096)
            .iter()
            .map(|(_, b)| b)
            .sum();
        assert_eq!(charged, total_bytes(&runs));
    }

    #[test]
    fn parallel_diff_matches_serial_above_threshold() {
        // Enough dirty pages to engage the sharded scan, with runs that
        // cross shard boundaries so concatenation order matters.
        let pages = 2 * PARALLEL_DIFF_MIN_PAGES;
        let mut s = armed(pages * 4096, 4096);
        for p in 0..pages {
            let addr = BASE + (p as u64) * 4096 + (p as u64 % 7) * 11;
            s.write(addr, &[p as u8 + 1, 2, 3]).unwrap();
        }
        // A run spanning a page boundary (and thus possibly a shard seam).
        s.write(BASE + 4096 * 8 - 2, &[9, 9, 9, 9]).unwrap();
        let serial = diff_pages(&s);
        for threads in [2, 3, 4, 8] {
            assert_eq!(diff_pages_parallel(&s, threads), serial);
        }
    }

    #[test]
    fn parallel_diff_falls_back_below_threshold() {
        let mut s = armed(4 * 4096, 4096);
        s.write(BASE + 5, &[1, 2]).unwrap();
        s.write(BASE + 4096 + 9, &[3]).unwrap();
        assert_eq!(diff_pages_parallel(&s, 4), diff_pages(&s));
    }

    #[test]
    fn split_by_page_run_straddling_base_charges_only_in_space_pages() {
        // A run that begins below `base` and spans the base boundary must
        // still attribute its in-space bytes to page 0 (and further pages it
        // reaches) — not underflow the page computation. Runs like this
        // arise when a caller merges externally-sourced runs with space
        // runs before charging the heatmap.
        let runs = vec![DiffRun {
            addr: BASE - 2,
            len: 4100,
        }];
        assert_eq!(split_by_page(&runs, BASE, 4096), vec![(0, 4096), (1, 2)]);
    }

    #[test]
    fn write_back_to_original_value_cancels_diff() {
        let mut s = armed(4096, 4096);
        s.write(BASE, &[9]).unwrap();
        s.write(BASE, &[0]).unwrap(); // restore original zero
        assert!(diff_pages(&s).is_empty());
    }
}
