#![warn(missing_docs)]

//! Simulated paged virtual memory with write detection.
//!
//! A traditional DSM (paper §4) installs a SIGSEGV handler, `mprotect()`s
//! the shared region, and on the first write to a page copies the pristine
//! page (the *twin*), unprotects the page and lets the write continue;
//! at release time each dirty page is compared byte-by-byte against its
//! twin to produce a *diff*.
//!
//! This crate reproduces that machinery in a software [`AddressSpace`]:
//! the write accessor checks a per-page protection bit and runs the exact
//! fault-handler logic (twin copy → unprotect → record dirty → proceed).
//! The observable artefacts — one fault per page, twins, dirty sets,
//! byte-run diffs — are identical to the `mprotect` implementation; only
//! the trap delivery differs (a branch instead of a hardware fault), which
//! is also what lets a node simulate a *different page size* than the
//! host's (the paper's SPARC nodes have 8 KiB pages, x86 nodes 4 KiB).

pub mod diff;
pub mod space;

pub use diff::{diff_pages, DiffRun};
pub use space::{AddressSpace, FaultStats, MemError, PageProt};
