//! The software address space.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Per-page protection state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PageProt {
    /// Writes fault (the DSM's armed state after a release).
    ReadOnly,
    /// Writes proceed directly (after the first fault, or never armed).
    ReadWrite,
}

/// Counters describing fault activity — the DSM uses these to assert the
/// "one fault per page, subsequent writes go through directly" behaviour
/// the paper relies on to keep signal-handler time minimal (§4.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Number of write faults taken (= twins created).
    pub faults: u64,
    /// Bytes copied into twins.
    pub twin_bytes: u64,
    /// Total write operations (faulting or not).
    pub writes: u64,
}

/// Errors from address-space access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// Access outside `[base, base+len)`.
    OutOfRange {
        /// Requested address.
        addr: u64,
        /// Requested length.
        len: usize,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfRange { addr, len } => {
                write!(f, "access [{addr:#x}, +{len}) outside address space")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// A contiguous simulated memory region with page-granular write protection
/// and twin/diff support.
///
/// Addresses are *simulated virtual addresses*: the region starts at `base`
/// (e.g. `0x40058000`, the base the paper's Table 1 shows) regardless of
/// where the backing `Vec` lives on the host.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    base: u64,
    page_size: usize,
    data: Vec<u8>,
    prot: Vec<PageProt>,
    twins: Vec<Option<Box<[u8]>>>,
    dirty: BTreeSet<usize>,
    stats: FaultStats,
}

impl AddressSpace {
    /// Create a zero-filled space of at least `len` bytes starting at
    /// simulated address `base`, rounded up to whole pages.
    ///
    /// # Panics
    /// Panics if `page_size` is zero.
    pub fn new(base: u64, len: usize, page_size: usize) -> AddressSpace {
        assert!(page_size > 0, "page size must be positive");
        let pages = len.div_ceil(page_size).max(1);
        AddressSpace {
            base,
            page_size,
            data: vec![0; pages * page_size],
            prot: vec![PageProt::ReadWrite; pages],
            twins: vec![None; pages],
            dirty: BTreeSet::new(),
            stats: FaultStats::default(),
        }
    }

    /// Simulated base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Total size in bytes (whole pages).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the space has no pages (never happens via [`new`](Self::new)).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.prot.len()
    }

    /// Fault statistics so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    fn offset_of(&self, addr: u64, len: usize) -> Result<usize, MemError> {
        let off = addr
            .checked_sub(self.base)
            .ok_or(MemError::OutOfRange { addr, len })? as usize;
        if off.checked_add(len).is_none_or(|end| end > self.data.len()) {
            return Err(MemError::OutOfRange { addr, len });
        }
        Ok(off)
    }

    /// Read `len` bytes at simulated address `addr`. Reads never fault —
    /// the DSD propagates updates at acquire time, so the protocol never
    /// needs read traps (paper §4 traps only writes).
    pub fn read(&self, addr: u64, len: usize) -> Result<&[u8], MemError> {
        let off = self.offset_of(addr, len)?;
        Ok(&self.data[off..off + len])
    }

    /// Write `bytes` at `addr` through the protection check: the first
    /// write to a protected page runs the fault handler (twin copy,
    /// unprotect, mark dirty), exactly the paper's SIGSEGV handler.
    pub fn write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemError> {
        let off = self.offset_of(addr, bytes.len())?;
        self.stats.writes += 1;
        if !bytes.is_empty() {
            let first = off / self.page_size;
            let last = (off + bytes.len() - 1) / self.page_size;
            for page in first..=last {
                if self.prot[page] == PageProt::ReadOnly {
                    self.fault(page);
                }
            }
        }
        self.data[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Write bypassing protection (used by the DSM itself when applying
    /// remote updates to the authoritative copy — those must not count as
    /// local modifications).
    pub fn write_untracked(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemError> {
        let off = self.offset_of(addr, bytes.len())?;
        self.data[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// The fault handler: copy the pristine page into a twin, unprotect,
    /// record dirty.
    fn fault(&mut self, page: usize) {
        debug_assert_eq!(self.prot[page], PageProt::ReadOnly);
        let start = page * self.page_size;
        let twin: Box<[u8]> = self.data[start..start + self.page_size].into();
        self.stats.faults += 1;
        self.stats.twin_bytes += twin.len() as u64;
        self.twins[page] = Some(twin);
        self.prot[page] = PageProt::ReadWrite;
        self.dirty.insert(page);
    }

    /// Write-protect a byte range (page-granular: every page overlapping
    /// the range is armed). This is the DSM's `mprotect(PROT_READ)` at
    /// acquire/re-arm time.
    pub fn protect(&mut self, addr: u64, len: usize) -> Result<(), MemError> {
        if len == 0 {
            return Ok(());
        }
        let off = self.offset_of(addr, len)?;
        let first = off / self.page_size;
        let last = (off + len - 1) / self.page_size;
        for p in first..=last {
            self.prot[p] = PageProt::ReadOnly;
        }
        Ok(())
    }

    /// Arm the entire space.
    pub fn protect_all(&mut self) {
        for p in &mut self.prot {
            *p = PageProt::ReadOnly;
        }
    }

    /// Disarm the entire space without faulting (e.g. during initial
    /// population of the global structure).
    pub fn unprotect_all(&mut self) {
        for p in &mut self.prot {
            *p = PageProt::ReadWrite;
        }
    }

    /// Protection state of the page containing `addr`.
    pub fn prot_at(&self, addr: u64) -> Result<PageProt, MemError> {
        let off = self.offset_of(addr, 1)?;
        Ok(self.prot[off / self.page_size])
    }

    /// Indices of dirty pages, ascending.
    pub fn dirty_pages(&self) -> impl Iterator<Item = usize> + '_ {
        self.dirty.iter().copied()
    }

    /// Number of dirty pages.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Current contents of a page.
    pub fn page(&self, page: usize) -> &[u8] {
        &self.data[page * self.page_size..(page + 1) * self.page_size]
    }

    /// Twin (pristine copy) of a page, if it faulted since the last reset.
    pub fn twin(&self, page: usize) -> Option<&[u8]> {
        self.twins[page].as_deref()
    }

    /// Simulated address of the first byte of a page.
    pub fn page_addr(&self, page: usize) -> u64 {
        self.base + (page * self.page_size) as u64
    }

    /// Discard all twins and dirty marks and re-arm protection — the state
    /// transition after a successful release (unlock) has shipped the
    /// diffs, or after an acquire has applied incoming updates.
    pub fn reset_and_protect(&mut self) {
        for t in &mut self.twins {
            *t = None;
        }
        self.dirty.clear();
        self.protect_all();
    }

    /// Discard twins/dirty marks but leave pages writable.
    pub fn reset_unprotected(&mut self) {
        for t in &mut self.twins {
            *t = None;
        }
        self.dirty.clear();
        self.unprotect_all();
    }

    /// Raw view of the full backing store (tests/benches).
    pub fn raw(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: u64 = 0x4005_8000;

    fn space() -> AddressSpace {
        AddressSpace::new(BASE, 10_000, 4096)
    }

    #[test]
    fn rounds_up_to_pages() {
        let s = space();
        assert_eq!(s.len(), 3 * 4096);
        assert_eq!(s.page_count(), 3);
        assert_eq!(s.page_addr(1), BASE + 4096);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut s = space();
        s.write(BASE + 100, &[1, 2, 3, 4]).unwrap();
        assert_eq!(s.read(BASE + 100, 4).unwrap(), &[1, 2, 3, 4]);
        assert_eq!(s.read(BASE + 104, 2).unwrap(), &[0, 0]);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut s = space();
        assert!(s.read(BASE - 1, 1).is_err());
        assert!(s.read(BASE + 3 * 4096, 1).is_err());
        assert!(s.read(BASE + 3 * 4096 - 1, 2).is_err());
        assert!(s.write(u64::MAX, &[0]).is_err());
        // Length overflow must not wrap.
        assert!(s.read(BASE, usize::MAX).is_err());
    }

    #[test]
    fn first_write_to_protected_page_faults_once() {
        let mut s = space();
        s.protect_all();
        assert_eq!(s.stats().faults, 0);
        s.write(BASE + 10, &[9]).unwrap();
        assert_eq!(s.stats().faults, 1);
        assert_eq!(s.dirty_count(), 1);
        assert_eq!(s.prot_at(BASE + 10).unwrap(), PageProt::ReadWrite);
        // Subsequent writes to the same page do not fault again.
        s.write(BASE + 20, &[8]).unwrap();
        s.write(BASE + 30, &[7]).unwrap();
        assert_eq!(s.stats().faults, 1);
    }

    #[test]
    fn twin_captures_pre_write_contents() {
        let mut s = space();
        s.write(BASE, &[1, 2, 3]).unwrap(); // before arming
        s.protect_all();
        s.write(BASE + 1, &[9]).unwrap();
        let twin = s.twin(0).expect("twin exists");
        assert_eq!(&twin[..3], &[1, 2, 3]);
        assert_eq!(s.read(BASE, 3).unwrap(), &[1, 9, 3]);
    }

    #[test]
    fn write_spanning_pages_faults_both() {
        let mut s = space();
        s.protect_all();
        let addr = BASE + 4096 - 2;
        s.write(addr, &[1, 2, 3, 4]).unwrap();
        assert_eq!(s.stats().faults, 2);
        let dirty: Vec<usize> = s.dirty_pages().collect();
        assert_eq!(dirty, vec![0, 1]);
    }

    #[test]
    fn untracked_write_does_not_fault_or_dirty() {
        let mut s = space();
        s.protect_all();
        s.write_untracked(BASE + 5, &[42]).unwrap();
        assert_eq!(s.stats().faults, 0);
        assert_eq!(s.dirty_count(), 0);
        assert_eq!(s.prot_at(BASE + 5).unwrap(), PageProt::ReadOnly);
        assert_eq!(s.read(BASE + 5, 1).unwrap(), &[42]);
    }

    #[test]
    fn reset_and_protect_rearms() {
        let mut s = space();
        s.protect_all();
        s.write(BASE, &[1]).unwrap();
        assert_eq!(s.dirty_count(), 1);
        s.reset_and_protect();
        assert_eq!(s.dirty_count(), 0);
        assert!(s.twin(0).is_none());
        // Writing again faults again.
        s.write(BASE, &[2]).unwrap();
        assert_eq!(s.stats().faults, 2);
    }

    #[test]
    fn partial_protect_only_arms_touched_pages() {
        let mut s = space();
        s.protect(BASE + 4096, 1).unwrap();
        assert_eq!(s.prot_at(BASE).unwrap(), PageProt::ReadWrite);
        assert_eq!(s.prot_at(BASE + 4096).unwrap(), PageProt::ReadOnly);
        assert_eq!(s.prot_at(BASE + 2 * 4096).unwrap(), PageProt::ReadWrite);
    }

    #[test]
    fn sparc_page_size_changes_fault_granularity() {
        let mut s = AddressSpace::new(BASE, 16384, 8192);
        s.protect_all();
        s.write(BASE, &[1]).unwrap();
        s.write(BASE + 8000, &[1]).unwrap(); // same 8K page
        assert_eq!(s.stats().faults, 1);
        s.write(BASE + 8192, &[1]).unwrap(); // next page
        assert_eq!(s.stats().faults, 2);
    }

    #[test]
    fn zero_length_write_is_noop() {
        let mut s = space();
        s.protect_all();
        s.write(BASE, &[]).unwrap();
        assert_eq!(s.stats().faults, 0);
    }
}
