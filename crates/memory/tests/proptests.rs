//! Property tests: twin/diff must reconstruct exactly the set of modified
//! bytes under arbitrary write schedules, on every modelled page size.

use hdsm_memory::diff::{diff_pages, total_bytes};
use hdsm_memory::space::AddressSpace;
use proptest::prelude::*;

const BASE: u64 = 0x4005_8000;

#[derive(Debug, Clone)]
struct WriteOp {
    off: usize,
    data: Vec<u8>,
}

fn writes(space_len: usize) -> impl Strategy<Value = Vec<WriteOp>> {
    prop::collection::vec(
        (0..space_len, prop::collection::vec(any::<u8>(), 1..64))
            .prop_map(|(off, data)| WriteOp { off, data }),
        0..32,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Applying the diff runs to a copy of the pristine image reproduces
    /// the current image byte-for-byte (diff → patch round-trip).
    #[test]
    fn diff_patch_roundtrip(
        ops in writes(3 * 4096),
        page_size in prop::sample::select(vec![512usize, 4096, 8192]),
    ) {
        let len = 3 * 4096;
        let mut s = AddressSpace::new(BASE, len, page_size);
        // Pristine image: some nonzero fill so same-value writes can cancel.
        let pristine: Vec<u8> = (0..s.len()).map(|i| (i % 251) as u8).collect();
        s.write(BASE, &pristine).unwrap();
        s.reset_and_protect();

        for op in &ops {
            let addr = BASE + op.off as u64;
            let n = op.data.len().min(s.len() - op.off);
            s.write(addr, &op.data[..n]).unwrap();
        }

        let runs = diff_pages(&s);
        // Patch pristine with the runs.
        let mut patched = pristine.clone();
        for r in &runs {
            let start = (r.addr - BASE) as usize;
            patched[start..start + r.len]
                .copy_from_slice(s.read(r.addr, r.len).unwrap());
        }
        prop_assert_eq!(&patched[..], s.raw());
    }

    /// Diff runs are sorted, non-overlapping, non-adjacent and minimal:
    /// every byte inside a run differs from the pristine image, every byte
    /// outside matches it.
    #[test]
    fn diff_runs_are_exact(ops in writes(2 * 4096)) {
        let mut s = AddressSpace::new(BASE, 2 * 4096, 4096);
        let pristine: Vec<u8> = (0..s.len()).map(|i| (i * 7 % 256) as u8).collect();
        s.write(BASE, &pristine).unwrap();
        s.reset_and_protect();
        for op in &ops {
            let n = op.data.len().min(s.len() - op.off);
            s.write(BASE + op.off as u64, &op.data[..n]).unwrap();
        }
        let runs = diff_pages(&s);
        let mut prev_end = 0u64;
        let mut in_run = vec![false; s.len()];
        for r in &runs {
            prop_assert!(r.addr >= BASE && r.end() <= BASE + s.len() as u64);
            prop_assert!(r.addr > prev_end || prev_end == 0, "adjacent/overlapping runs");
            prev_end = r.end();
            for i in 0..r.len {
                in_run[(r.addr - BASE) as usize + i] = true;
            }
        }
        for (i, byte) in s.raw().iter().enumerate() {
            if in_run[i] {
                prop_assert_ne!(*byte, pristine[i], "unchanged byte inside run at {}", i);
            } else {
                prop_assert_eq!(*byte, pristine[i], "changed byte outside runs at {}", i);
            }
        }
        prop_assert_eq!(
            total_bytes(&runs),
            in_run.iter().filter(|b| **b).count() as u64
        );
    }

    /// Fault count equals the number of distinct pages written, regardless
    /// of how many writes hit each page.
    #[test]
    fn one_fault_per_touched_page(ops in writes(4 * 1024)) {
        let page = 512usize;
        let mut s = AddressSpace::new(BASE, 4 * 1024, page);
        s.protect_all();
        let mut touched = std::collections::BTreeSet::new();
        for op in &ops {
            let n = op.data.len().min(s.len() - op.off);
            if n == 0 { continue; }
            s.write(BASE + op.off as u64, &op.data[..n]).unwrap();
            for p in (op.off / page)..=((op.off + n - 1) / page) {
                touched.insert(p);
            }
        }
        prop_assert_eq!(s.stats().faults, touched.len() as u64);
        let dirty: Vec<usize> = s.dirty_pages().collect();
        prop_assert_eq!(dirty, touched.into_iter().collect::<Vec<_>>());
    }
}
