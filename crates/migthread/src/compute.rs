//! Resumable computations.
//!
//! The original MigThread preprocessor rewrites C functions so their live
//! variables live in `MThV`/`MThP` structures and execution can be cut at
//! *adaptation points* (the only places a migration request is honoured).
//! The Rust equivalent is a trait: a computation exposes its state as a
//! [`ThreadState`] and advances in steps between adaptation points.
//!
//! The trait is generic over a context type `Ctx` so the DSM layer can hand
//! computations a handle for `MTh_lock`/`MTh_unlock`/`MTh_barrier` calls
//! without this crate depending on the DSM crate.

use crate::packfmt::MigrateError;
use crate::state::ThreadState;
use hdsm_platform::spec::Platform;
use std::collections::HashMap;

/// Result of advancing a computation by one quantum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// Reached an adaptation point; more work remains. The thread may be
    /// migrated here and resumed elsewhere.
    Yield,
    /// The computation finished (the thread should `MTh_join`).
    Done,
}

/// A migratable computation.
pub trait Computation<Ctx>: Send {
    /// Program name — must match a registry entry on every node.
    fn program(&self) -> &str;

    /// Advance until the next adaptation point or completion.
    fn step(&mut self, ctx: &mut Ctx) -> StepStatus;

    /// Capture the full logical state (valid only at adaptation points —
    /// callers must not invoke mid-step; the type system enforces this by
    /// requiring `&self` access between `step` calls only).
    fn capture(&self) -> ThreadState;
}

/// Factory rebuilding a computation from a restored state on `platform`.
pub type Factory<Ctx> =
    fn(ThreadState, Platform) -> Result<Box<dyn Computation<Ctx>>, MigrateError>;

/// Registry of programs available on a node.
///
/// Every node runs the same application binary (paper §3.1: "the same
/// applications need to be started remotely"), so every node's registry
/// contains the same entries; a migration image names its program and the
/// receiving node instantiates it from the restored state.
pub struct ProgramRegistry<Ctx> {
    programs: HashMap<String, ProgramEntry<Ctx>>,
}

struct ProgramEntry<Ctx> {
    /// Declared state shape (zeroed blocks) used by receiver-makes-right
    /// restoration to know each block's C type.
    declared: ThreadState,
    factory: Factory<Ctx>,
}

impl<Ctx> Default for ProgramRegistry<Ctx> {
    fn default() -> Self {
        ProgramRegistry {
            programs: HashMap::new(),
        }
    }
}

impl<Ctx> ProgramRegistry<Ctx> {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a program. `declared` supplies the state shape (block
    /// names and C types); its platform/bytes content is ignored.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        declared: ThreadState,
        factory: Factory<Ctx>,
    ) {
        self.programs
            .insert(name.into(), ProgramEntry { declared, factory });
    }

    /// Declared state shape for `name`.
    pub fn declared(&self, name: &str) -> Option<&ThreadState> {
        self.programs.get(name).map(|e| &e.declared)
    }

    /// Instantiate a computation from a restored state.
    pub fn instantiate(
        &self,
        state: ThreadState,
        platform: Platform,
    ) -> Result<Box<dyn Computation<Ctx>>, MigrateError> {
        let entry = self
            .programs
            .get(&state.program)
            .ok_or_else(|| MigrateError::UnknownProgram(state.program.clone()))?;
        (entry.factory)(state, platform)
    }

    /// Restore a migration image into a computation on `platform`:
    /// parse + receiver-makes-right convert + instantiate.
    pub fn restore(
        &self,
        image: &crate::packfmt::StateImage,
        platform: Platform,
    ) -> Result<Box<dyn Computation<Ctx>>, MigrateError> {
        let parsed = crate::packfmt::parse_image(image)?;
        let entry = self
            .programs
            .get(&parsed.program)
            .ok_or(MigrateError::UnknownProgram(parsed.program))?;
        let state = crate::packfmt::unpack_state(image, &platform, &entry.declared)?;
        (entry.factory)(state, platform)
    }

    /// Registered program names.
    pub fn names(&self) -> Vec<&str> {
        self.programs.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packfmt::pack_state;
    use crate::state::TypedBlock;
    use hdsm_platform::ctype::{CType, StructBuilder};
    use hdsm_platform::scalar::ScalarKind;
    use hdsm_platform::spec::PlatformSpec;
    use hdsm_platform::value::Value;

    /// A toy migratable computation: sums i*i for i in 0..limit, one i per
    /// adaptation quantum.
    struct SumSquares {
        state: ThreadState,
        platform: Platform,
    }

    fn state_type() -> CType {
        CType::Struct(
            StructBuilder::new("MThV")
                .scalar("i", ScalarKind::Int)
                .scalar("limit", ScalarKind::Int)
                .scalar("acc", ScalarKind::LongLong)
                .build()
                .unwrap(),
        )
    }

    fn declared(p: &Platform) -> ThreadState {
        let mut st = ThreadState::new("sum-squares");
        st.push_block("MThV", TypedBlock::zeroed(state_type(), p.clone()));
        st
    }

    impl SumSquares {
        fn new(limit: i128, p: Platform) -> Self {
            let mut st = declared(&p);
            st.block_mut("MThV")
                .unwrap()
                .set_field(1, &Value::Int(limit))
                .unwrap();
            SumSquares {
                state: st,
                platform: p,
            }
        }
    }

    impl Computation<()> for SumSquares {
        fn program(&self) -> &str {
            "sum-squares"
        }

        fn step(&mut self, _ctx: &mut ()) -> StepStatus {
            let b = self.state.block_mut("MThV").unwrap();
            let i = b.get_field(0).unwrap().as_int();
            let limit = b.get_field(1).unwrap().as_int();
            if i >= limit {
                return StepStatus::Done;
            }
            let acc = b.get_field(2).unwrap().as_int();
            b.set_field(2, &Value::Int(acc + i * i)).unwrap();
            b.set_field(0, &Value::Int(i + 1)).unwrap();
            let _ = &self.platform;
            StepStatus::Yield
        }

        fn capture(&self) -> ThreadState {
            self.state.clone()
        }
    }

    fn factory(
        state: ThreadState,
        platform: Platform,
    ) -> Result<Box<dyn Computation<()>>, MigrateError> {
        Ok(Box::new(SumSquares { state, platform }))
    }

    fn registry(p: &Platform) -> ProgramRegistry<()> {
        let mut r = ProgramRegistry::new();
        r.register("sum-squares", declared(p), factory);
        r
    }

    #[test]
    fn computation_survives_heterogeneous_migration_mid_run() {
        let linux = PlatformSpec::linux_x86();
        let sparc = PlatformSpec::solaris_sparc();

        // Run 5 steps on Linux.
        let mut comp = SumSquares::new(10, linux.clone());
        let mut ctx = ();
        for _ in 0..5 {
            assert_eq!(comp.step(&mut ctx), StepStatus::Yield);
        }

        // Migrate to SPARC at the adaptation point.
        let image = pack_state(&comp.capture());
        let reg = registry(&sparc);
        let mut remote = reg.restore(&image, sparc.clone()).unwrap();

        // Finish there.
        let mut steps = 0;
        while remote.step(&mut ctx) == StepStatus::Yield {
            steps += 1;
            assert!(steps < 100, "runaway");
        }
        let final_state = remote.capture();
        let acc = final_state
            .block("MThV")
            .unwrap()
            .get_field(2)
            .unwrap()
            .as_int();
        // sum of squares 0..10
        assert_eq!(acc, (0..10).map(|i| i * i).sum::<i128>());
        // And the state is genuinely in SPARC representation now.
        assert_eq!(
            final_state.block("MThV").unwrap().platform.name,
            "solaris-sparc"
        );
    }

    #[test]
    fn migration_result_equals_unmigrated_run() {
        let linux = PlatformSpec::linux_x86();
        let mut ctx = ();
        let mut direct = SumSquares::new(25, linux.clone());
        while direct.step(&mut ctx) == StepStatus::Yield {}
        let want = direct
            .capture()
            .block("MThV")
            .unwrap()
            .get_field(2)
            .unwrap()
            .as_int();

        // Bounce Linux → SPARC64 → Linux at arbitrary points.
        let sparc64 = PlatformSpec::solaris_sparc64();
        let mut comp: Box<dyn Computation<()>> = Box::new(SumSquares::new(25, linux.clone()));
        for _ in 0..7 {
            comp.step(&mut ctx);
        }
        let img1 = pack_state(&comp.capture());
        let mut comp = registry(&sparc64).restore(&img1, sparc64.clone()).unwrap();
        for _ in 0..7 {
            comp.step(&mut ctx);
        }
        let img2 = pack_state(&comp.capture());
        let mut comp = registry(&linux).restore(&img2, linux.clone()).unwrap();
        while comp.step(&mut ctx) == StepStatus::Yield {}
        let got = comp
            .capture()
            .block("MThV")
            .unwrap()
            .get_field(2)
            .unwrap()
            .as_int();
        assert_eq!(got, want);
    }

    #[test]
    fn unknown_program_fails_restore() {
        let linux = PlatformSpec::linux_x86();
        let comp = SumSquares::new(3, linux.clone());
        let image = pack_state(&comp.capture());
        let empty: ProgramRegistry<()> = ProgramRegistry::new();
        assert!(matches!(
            empty.restore(&image, linux),
            Err(MigrateError::UnknownProgram(_))
        ));
    }
}
