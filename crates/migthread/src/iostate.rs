//! File-I/O and socket state migration — the paper's §6 future work:
//! "Additional work, such as supporting file I/O migration and socket
//! migration also continues as both will be necessary for a truly
//! portable heterogeneous system."
//!
//! A thread's I/O state cannot be shipped as kernel descriptors; like the
//! rest of MigThread it has to be abstracted to the application level.
//! This module provides:
//!
//! * [`SimFs`] — a simulated shared filesystem (the cluster's NFS stand-in)
//!   that every node can reach by path;
//! * [`FileCursor`] — the *logical* state of an open file: path, access
//!   mode and byte offset. Migration serialises cursors (not descriptors)
//!   and the destination node reopens the path on its own `SimFs` handle
//!   and seeks — exactly how application-level migration systems (Tui,
//!   Condor) reconstruct file state;
//! * [`SocketState`] — the logical state of a connection: peer endpoint,
//!   bytes-consumed counters and any received-but-unread bytes, which must
//!   travel with the thread so no input is lost or replayed.
//!
//! I/O state is byte-order-independent by construction (offsets and
//! counters are serialized in a fixed wire order), so unlike `MThV` data
//! it needs no receiver-makes-right conversion — only re-binding.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Access mode of an open file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileMode {
    /// Read-only.
    Read,
    /// Read + write.
    ReadWrite,
    /// Append (writes go to the end regardless of offset).
    Append,
}

/// Errors from the simulated filesystem and I/O migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// Path does not exist.
    NotFound(String),
    /// Write attempted through a read-only cursor.
    ReadOnly(String),
    /// Malformed serialized I/O state.
    BadState(String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::NotFound(p) => write!(f, "no such file: {p}"),
            IoError::ReadOnly(p) => write!(f, "file {p} opened read-only"),
            IoError::BadState(s) => write!(f, "bad I/O state: {s}"),
        }
    }
}

impl std::error::Error for IoError {}

/// A simulated cluster-visible filesystem. Cheap to clone; clones share
/// the same storage (every node mounts the same share).
#[derive(Debug, Clone, Default)]
pub struct SimFs {
    files: Arc<RwLock<HashMap<String, Vec<u8>>>>,
}

impl SimFs {
    /// An empty filesystem.
    pub fn new() -> SimFs {
        SimFs::default()
    }

    /// Create or replace a file.
    pub fn put(&self, path: impl Into<String>, contents: impl Into<Vec<u8>>) {
        self.files.write().insert(path.into(), contents.into());
    }

    /// Whole-file read (tests/inspection).
    pub fn get(&self, path: &str) -> Option<Vec<u8>> {
        self.files.read().get(path).cloned()
    }

    /// File length.
    pub fn len_of(&self, path: &str) -> Option<u64> {
        self.files.read().get(path).map(|f| f.len() as u64)
    }

    /// Open a cursor on `path`.
    pub fn open(&self, path: &str, mode: FileMode) -> Result<FileCursor, IoError> {
        if !self.files.read().contains_key(path) {
            if mode == FileMode::Read {
                return Err(IoError::NotFound(path.to_string()));
            }
            self.files.write().entry(path.to_string()).or_default();
        }
        Ok(FileCursor {
            path: path.to_string(),
            mode,
            offset: 0,
        })
    }
}

/// The logical state of one open file: everything needed to reconstruct
/// the descriptor on another node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileCursor {
    /// Path on the shared filesystem.
    pub path: String,
    /// Access mode.
    pub mode: FileMode,
    /// Current byte offset.
    pub offset: u64,
}

impl FileCursor {
    /// Read up to `n` bytes at the cursor, advancing it.
    pub fn read(&mut self, fs: &SimFs, n: usize) -> Result<Vec<u8>, IoError> {
        let files = fs.files.read();
        let data = files
            .get(&self.path)
            .ok_or_else(|| IoError::NotFound(self.path.clone()))?;
        let start = (self.offset as usize).min(data.len());
        let end = (start + n).min(data.len());
        self.offset = end as u64;
        Ok(data[start..end].to_vec())
    }

    /// Write bytes at the cursor (or the end, in append mode).
    pub fn write(&mut self, fs: &SimFs, bytes: &[u8]) -> Result<(), IoError> {
        if self.mode == FileMode::Read {
            return Err(IoError::ReadOnly(self.path.clone()));
        }
        let mut files = fs.files.write();
        let data = files
            .get_mut(&self.path)
            .ok_or_else(|| IoError::NotFound(self.path.clone()))?;
        let at = if self.mode == FileMode::Append {
            data.len()
        } else {
            self.offset as usize
        };
        if at + bytes.len() > data.len() {
            data.resize(at + bytes.len(), 0);
        }
        data[at..at + bytes.len()].copy_from_slice(bytes);
        self.offset = (at + bytes.len()) as u64;
        Ok(())
    }

    /// Serialize the logical state (fixed byte order — platform-free).
    pub fn pack(&self, out: &mut BytesMut) {
        out.put_u8(match self.mode {
            FileMode::Read => 0,
            FileMode::ReadWrite => 1,
            FileMode::Append => 2,
        });
        out.put_u64(self.offset);
        out.put_u16(self.path.len() as u16);
        out.put_slice(self.path.as_bytes());
    }

    /// Deserialize; the destination re-binds against its own [`SimFs`].
    pub fn unpack(buf: &mut Bytes) -> Result<FileCursor, IoError> {
        if buf.remaining() < 11 {
            return Err(IoError::BadState("truncated cursor".into()));
        }
        let mode = match buf.get_u8() {
            0 => FileMode::Read,
            1 => FileMode::ReadWrite,
            2 => FileMode::Append,
            m => return Err(IoError::BadState(format!("bad mode {m}"))),
        };
        let offset = buf.get_u64();
        let n = buf.get_u16() as usize;
        if buf.remaining() < n {
            return Err(IoError::BadState("truncated path".into()));
        }
        let path = String::from_utf8(buf.copy_to_bytes(n).to_vec())
            .map_err(|_| IoError::BadState("non-UTF-8 path".into()))?;
        Ok(FileCursor { path, mode, offset })
    }

    /// Validate against a destination filesystem (the migration-time
    /// check: the path must exist on the destination's mount).
    pub fn rebind(&self, fs: &SimFs) -> Result<(), IoError> {
        if fs.files.read().contains_key(&self.path) {
            Ok(())
        } else {
            Err(IoError::NotFound(self.path.clone()))
        }
    }
}

/// Logical connection state: what must travel so the conversation neither
/// loses nor replays bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocketState {
    /// Peer identity ("host:port" in a real deployment; a rank here).
    pub peer: String,
    /// Bytes this side has consumed from the peer.
    pub bytes_received: u64,
    /// Bytes this side has sent to the peer.
    pub bytes_sent: u64,
    /// Received-but-unread bytes buffered in user space — these would be
    /// lost with the old kernel socket, so they ride in the image.
    pub unread: Vec<u8>,
}

impl SocketState {
    /// Serialize (fixed byte order).
    pub fn pack(&self, out: &mut BytesMut) {
        out.put_u64(self.bytes_received);
        out.put_u64(self.bytes_sent);
        out.put_u16(self.peer.len() as u16);
        out.put_slice(self.peer.as_bytes());
        out.put_u32(self.unread.len() as u32);
        out.put_slice(&self.unread);
    }

    /// Deserialize.
    pub fn unpack(buf: &mut Bytes) -> Result<SocketState, IoError> {
        if buf.remaining() < 18 {
            return Err(IoError::BadState("truncated socket state".into()));
        }
        let bytes_received = buf.get_u64();
        let bytes_sent = buf.get_u64();
        let n = buf.get_u16() as usize;
        if buf.remaining() < n + 4 {
            return Err(IoError::BadState("truncated peer".into()));
        }
        let peer = String::from_utf8(buf.copy_to_bytes(n).to_vec())
            .map_err(|_| IoError::BadState("non-UTF-8 peer".into()))?;
        let u = buf.get_u32() as usize;
        if buf.remaining() < u {
            return Err(IoError::BadState("truncated unread buffer".into()));
        }
        Ok(SocketState {
            peer,
            bytes_received,
            bytes_sent,
            unread: buf.copy_to_bytes(u).to_vec(),
        })
    }
}

/// A thread's complete I/O state: open files + live connections.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoState {
    /// Open file cursors.
    pub files: Vec<FileCursor>,
    /// Live connections.
    pub sockets: Vec<SocketState>,
}

impl IoState {
    /// Serialize all I/O state into one buffer.
    pub fn pack(&self) -> Bytes {
        let mut out = BytesMut::new();
        out.put_u16(self.files.len() as u16);
        for f in &self.files {
            f.pack(&mut out);
        }
        out.put_u16(self.sockets.len() as u16);
        for s in &self.sockets {
            s.pack(&mut out);
        }
        out.freeze()
    }

    /// Deserialize; must consume the whole buffer.
    pub fn unpack(mut buf: Bytes) -> Result<IoState, IoError> {
        if buf.remaining() < 2 {
            return Err(IoError::BadState("truncated file count".into()));
        }
        let nf = buf.get_u16() as usize;
        let mut files = Vec::with_capacity(nf.min(64));
        for _ in 0..nf {
            files.push(FileCursor::unpack(&mut buf)?);
        }
        if buf.remaining() < 2 {
            return Err(IoError::BadState("truncated socket count".into()));
        }
        let ns = buf.get_u16() as usize;
        let mut sockets = Vec::with_capacity(ns.min(64));
        for _ in 0..ns {
            sockets.push(SocketState::unpack(&mut buf)?);
        }
        if buf.has_remaining() {
            return Err(IoError::BadState("trailing bytes".into()));
        }
        Ok(IoState { files, sockets })
    }

    /// Re-bind every cursor against the destination filesystem.
    pub fn rebind(&self, fs: &SimFs) -> Result<(), IoError> {
        for f in &self.files {
            f.rebind(fs)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_fs() -> SimFs {
        let fs = SimFs::new();
        fs.put("/data/input.txt", b"hello heterogeneous world".to_vec());
        fs
    }

    #[test]
    fn read_write_and_offsets() {
        let fs = shared_fs();
        let mut c = fs.open("/data/input.txt", FileMode::Read).unwrap();
        assert_eq!(c.read(&fs, 5).unwrap(), b"hello");
        assert_eq!(c.offset, 5);
        assert_eq!(c.read(&fs, 100).unwrap(), b" heterogeneous world");
        assert_eq!(c.read(&fs, 10).unwrap(), b"");
    }

    #[test]
    fn write_modes() {
        let fs = shared_fs();
        let mut ro = fs.open("/data/input.txt", FileMode::Read).unwrap();
        assert!(matches!(ro.write(&fs, b"x"), Err(IoError::ReadOnly(_))));

        let mut rw = fs.open("/data/out.bin", FileMode::ReadWrite).unwrap();
        rw.write(&fs, b"abc").unwrap();
        rw.offset = 1;
        rw.write(&fs, b"XY").unwrap();
        assert_eq!(fs.get("/data/out.bin").unwrap(), b"aXY");

        let mut ap = fs.open("/data/out.bin", FileMode::Append).unwrap();
        ap.offset = 0; // ignored by append
        ap.write(&fs, b"!").unwrap();
        assert_eq!(fs.get("/data/out.bin").unwrap(), b"aXY!");
    }

    #[test]
    fn open_missing_read_fails_but_write_creates() {
        let fs = SimFs::new();
        assert!(matches!(
            fs.open("/nope", FileMode::Read),
            Err(IoError::NotFound(_))
        ));
        assert!(fs.open("/new", FileMode::ReadWrite).is_ok());
        assert_eq!(fs.len_of("/new"), Some(0));
    }

    #[test]
    fn mid_read_migration_resumes_exactly() {
        // "Node A" reads 5 bytes, migrates; "node B" (its own SimFs handle
        // to the same share) resumes and reads the rest — nothing lost,
        // nothing replayed.
        let fs_a = shared_fs();
        let fs_b = fs_a.clone(); // same mounted share
        let mut cur = fs_a.open("/data/input.txt", FileMode::Read).unwrap();
        assert_eq!(cur.read(&fs_a, 5).unwrap(), b"hello");

        let state = IoState {
            files: vec![cur],
            sockets: vec![SocketState {
                peer: "home:4000".into(),
                bytes_received: 128,
                bytes_sent: 64,
                unread: b"pending".to_vec(),
            }],
        };
        let image = state.pack();
        let restored = IoState::unpack(image).unwrap();
        assert_eq!(restored, state);
        restored.rebind(&fs_b).unwrap();

        let mut cur_b = restored.files[0].clone();
        assert_eq!(cur_b.read(&fs_b, 14).unwrap(), b" heterogeneous");
        assert_eq!(restored.sockets[0].unread, b"pending");
    }

    #[test]
    fn rebind_fails_on_missing_destination_file() {
        let fs = shared_fs();
        let cur = fs.open("/data/input.txt", FileMode::Read).unwrap();
        let state = IoState {
            files: vec![cur],
            sockets: vec![],
        };
        let other = SimFs::new(); // destination without the share
        assert!(matches!(state.rebind(&other), Err(IoError::NotFound(_))));
    }

    #[test]
    fn truncated_io_state_rejected() {
        let fs = shared_fs();
        let cur = fs.open("/data/input.txt", FileMode::Read).unwrap();
        let state = IoState {
            files: vec![cur],
            sockets: vec![],
        };
        let image = state.pack();
        for cut in 0..image.len() {
            assert!(IoState::unpack(image.slice(..cut)).is_err(), "cut {cut}");
        }
        let mut with_garbage = BytesMut::from(&image[..]);
        with_garbage.put_u8(0);
        assert!(IoState::unpack(with_garbage.freeze()).is_err());
    }

    #[test]
    fn empty_io_state_roundtrips() {
        let st = IoState::default();
        assert_eq!(IoState::unpack(st.pack()).unwrap(), st);
    }
}
