#![warn(missing_docs)]

//! MigThread: application-level heterogeneous thread migration.
//!
//! Paper §3: thread states (global data segment, stack, heap, registers)
//! are "extracted from their original locations … and abstracted up to the
//! application level", turning the physical state into a logical,
//! platform-independent form. The original system uses a source-to-source
//! preprocessor that collects a thread's variables into `MThV`/`MThP`
//! structures; here a computation declares its state explicitly:
//!
//! * [`state::TypedBlock`] — one structure of live data, held in the *native
//!   byte representation* of the platform the thread currently runs on;
//! * [`state::ThreadState`] — the full logical thread state: named blocks
//!   (`MThV`, `MThP`, stack frames, heap objects) plus a resume point (the
//!   logical program counter, valid at adaptation points only);
//! * [`packfmt`] — the portable migration image: CGT-RMR tags + raw bytes
//!   per block, convertible on the receiving platform ("receiver makes
//!   right");
//! * [`compute::Computation`] — the resumable-computation contract that
//!   replaces preprocessor-instrumented C functions;
//! * [`roles`] — the paper's thread role machine (master / local /
//!   skeleton / stub / remote);
//! * [`scheduler`] — adaptive load policies deciding who migrates where.

pub mod compute;
pub mod iostate;
pub mod packfmt;
pub mod roles;
pub mod scheduler;
pub mod state;

pub use compute::{Computation, ProgramRegistry, StepStatus};
pub use packfmt::{pack_state, unpack_state, MigrateError, StateImage};
pub use roles::{RoleError, ThreadRole};
pub use scheduler::{MigrationPlan, MigrationPolicy, NodeLoad, ThresholdPolicy};
pub use state::{NamedBlock, ThreadState, TypedBlock};
