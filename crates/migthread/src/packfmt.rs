//! The portable migration image.
//!
//! Packing produces, per block, a CGT-RMR tag plus the raw native bytes —
//! "the physical state is transformed into a logical form to achieve
//! platform-independence" (paper §3.1). The *sender does no conversion*;
//! the receiver rebuilds each block in its own representation from the
//! shared type declaration (receiver makes right).

use crate::state::{Link, NamedBlock, ThreadState, TypedBlock};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use hdsm_platform::endian::Endianness;
use hdsm_platform::layout::TypeLayout;
use hdsm_platform::spec::{Platform, PlatformSpec};
use hdsm_tags::convert::{convert_block, ConversionError, ConversionStats};
use hdsm_tags::generate::tag_for;
use hdsm_tags::parse::parse_tag;
use std::fmt;

/// Magic guarding migration images.
const MAGIC: u32 = 0x4D695468; // "MiTh"

/// A serialized thread state ready for the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct StateImage {
    /// The frame bytes.
    pub bytes: Bytes,
}

/// Errors during migration pack/unpack/restore.
#[derive(Debug)]
pub enum MigrateError {
    /// Image is malformed or truncated.
    BadImage(String),
    /// The sending platform is not known to the receiver.
    UnknownPlatform(String),
    /// The receiver has no registered program of this name.
    UnknownProgram(String),
    /// The tag in the image disagrees with the sender layout of the
    /// declared type — a corrupted or mismatched image.
    TagMismatch {
        /// Tag in the image.
        image: String,
        /// Tag expected from the declared type on the sender platform.
        expected: String,
    },
    /// Receiver-makes-right conversion failed.
    Conversion(ConversionError),
    /// A block name in the image does not exist in the receiver's state
    /// declaration.
    UnknownBlock(String),
}

impl fmt::Display for MigrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrateError::BadImage(s) => write!(f, "bad migration image: {s}"),
            MigrateError::UnknownPlatform(p) => write!(f, "unknown platform {p}"),
            MigrateError::UnknownProgram(p) => write!(f, "unknown program {p}"),
            MigrateError::TagMismatch { image, expected } => {
                write!(f, "tag mismatch: image {image} vs expected {expected}")
            }
            MigrateError::Conversion(e) => write!(f, "conversion failed: {e}"),
            MigrateError::UnknownBlock(b) => write!(f, "unknown block {b}"),
        }
    }
}

impl std::error::Error for MigrateError {}

impl From<ConversionError> for MigrateError {
    fn from(e: ConversionError) -> Self {
        MigrateError::Conversion(e)
    }
}

fn put_str(out: &mut BytesMut, s: &str) {
    out.put_u16(s.len().min(u16::MAX as usize) as u16);
    out.put_slice(&s.as_bytes()[..s.len().min(u16::MAX as usize)]);
}

fn get_str(buf: &mut Bytes) -> Result<String, MigrateError> {
    if buf.remaining() < 2 {
        return Err(MigrateError::BadImage("truncated string length".into()));
    }
    let n = buf.get_u16() as usize;
    if buf.remaining() < n {
        return Err(MigrateError::BadImage("truncated string".into()));
    }
    String::from_utf8(buf.copy_to_bytes(n).to_vec())
        .map_err(|_| MigrateError::BadImage("non-UTF-8 string".into()))
}

/// Pack a thread state into a portable image. Every block is shipped as
/// `(name, tag, native-bytes)`; the image header records the program name,
/// resume point and sending platform.
pub fn pack_state(state: &ThreadState) -> StateImage {
    let mut out = BytesMut::with_capacity(64 + state.total_bytes());
    out.put_u32(MAGIC);
    put_str(&mut out, &state.program);
    out.put_u32(state.resume_point);
    // All blocks of one thread live on one platform; record it once from
    // the first block (an empty state records an empty platform name).
    let plat_name = state
        .blocks
        .first()
        .map(|b| b.block.platform.name.clone())
        .unwrap_or_default();
    put_str(&mut out, &plat_name);
    out.put_u32(state.blocks.len() as u32);
    for nb in &state.blocks {
        put_str(&mut out, &nb.name);
        let tag = tag_for(&nb.block.layout).to_string();
        put_str(&mut out, &tag);
        out.put_u64(nb.block.bytes.len() as u64);
        out.put_slice(&nb.block.bytes);
    }
    out.put_u32(state.links.len() as u32);
    for l in &state.links {
        put_str(&mut out, &l.src_block);
        out.put_u64(l.src_leaf);
        put_str(&mut out, &l.dst_block);
        out.put_u64(l.dst_leaf);
    }
    StateImage {
        bytes: out.freeze(),
    }
}

/// A block parsed out of an image (still in sender representation).
#[derive(Debug, Clone)]
pub struct RawBlock {
    /// Block name.
    pub name: String,
    /// Tag string from the image.
    pub tag: String,
    /// Sender-native bytes.
    pub bytes: Bytes,
}

/// Parsed image header + raw blocks.
#[derive(Debug, Clone)]
pub struct ParsedImage {
    /// Program name.
    pub program: String,
    /// Resume point.
    pub resume_point: u32,
    /// Sender platform name.
    pub platform: String,
    /// Raw blocks.
    pub blocks: Vec<RawBlock>,
    /// Cross-block pointer links.
    pub links: Vec<Link>,
}

/// Parse an image without converting (the receiver's first step).
pub fn parse_image(image: &StateImage) -> Result<ParsedImage, MigrateError> {
    let mut buf = image.bytes.clone();
    if buf.remaining() < 4 || buf.get_u32() != MAGIC {
        return Err(MigrateError::BadImage("bad magic".into()));
    }
    let program = get_str(&mut buf)?;
    if buf.remaining() < 4 {
        return Err(MigrateError::BadImage("truncated header".into()));
    }
    let resume_point = buf.get_u32();
    let platform = get_str(&mut buf)?;
    if buf.remaining() < 4 {
        return Err(MigrateError::BadImage("truncated block count".into()));
    }
    let n = buf.get_u32() as usize;
    // `n` is untrusted wire data: bound the preallocation (growth is
    // amortised; the per-block length checks reject bogus counts).
    let mut blocks = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let name = get_str(&mut buf)?;
        let tag = get_str(&mut buf)?;
        if buf.remaining() < 8 {
            return Err(MigrateError::BadImage("truncated block length".into()));
        }
        let len = buf.get_u64() as usize;
        if buf.remaining() < len {
            return Err(MigrateError::BadImage("truncated block data".into()));
        }
        let bytes = buf.copy_to_bytes(len);
        blocks.push(RawBlock { name, tag, bytes });
    }
    if buf.remaining() < 4 {
        return Err(MigrateError::BadImage("truncated link count".into()));
    }
    let nl = buf.get_u32() as usize;
    let mut links = Vec::with_capacity(nl.min(64));
    for _ in 0..nl {
        let src_block = get_str(&mut buf)?;
        if buf.remaining() < 8 {
            return Err(MigrateError::BadImage("truncated link".into()));
        }
        let src_leaf = buf.get_u64();
        let dst_block = get_str(&mut buf)?;
        if buf.remaining() < 8 {
            return Err(MigrateError::BadImage("truncated link".into()));
        }
        let dst_leaf = buf.get_u64();
        links.push(Link {
            src_block,
            src_leaf,
            dst_block,
            dst_leaf,
        });
    }
    if buf.has_remaining() {
        return Err(MigrateError::BadImage("trailing bytes".into()));
    }
    Ok(ParsedImage {
        program,
        resume_point,
        platform,
        blocks,
        links,
    })
}

/// Restore a thread state on `target`: parse the image, look up the sender
/// platform, and receiver-makes-right convert every block into the local
/// representation. `declared` supplies the C type of each block name (the
/// shared program knowledge that replaces the preprocessor's tables).
pub fn unpack_state(
    image: &StateImage,
    target: &Platform,
    declared: &ThreadState,
) -> Result<ThreadState, MigrateError> {
    let parsed = parse_image(image)?;
    if parsed.program != declared.program {
        return Err(MigrateError::UnknownProgram(parsed.program));
    }
    let sender = PlatformSpec::by_name(&parsed.platform)
        .ok_or_else(|| MigrateError::UnknownPlatform(parsed.platform.clone()))?;
    let mut out = ThreadState::new(parsed.program.clone());
    out.resume_point = parsed.resume_point;
    for raw in &parsed.blocks {
        let decl = declared
            .block(&raw.name)
            .ok_or_else(|| MigrateError::UnknownBlock(raw.name.clone()))?;
        let src_layout = TypeLayout::compute(&decl.ty, &sender);
        // Validate the image tag against the declared type (the paper's
        // homogeneous string-compare doubles as an integrity check).
        let expected = tag_for(&src_layout).to_string();
        if raw.tag != expected {
            // Parse to confirm it's at least a tag, then report mismatch.
            let _ = parse_tag(&raw.tag)
                .map_err(|e| MigrateError::BadImage(format!("unparsable tag: {e}")))?;
            return Err(MigrateError::TagMismatch {
                image: raw.tag.clone(),
                expected,
            });
        }
        let mut local = TypedBlock::zeroed(decl.ty.clone(), target.clone());
        let mut stats = ConversionStats::default();
        convert_block(
            &src_layout,
            &sender,
            &raw.bytes,
            &local.layout.clone(),
            target,
            &mut local.bytes,
            &mut stats,
        )?;
        out.blocks.push(NamedBlock {
            name: raw.name.clone(),
            block: local,
        });
    }
    // Re-target cross-block pointers against the new layouts (paper §3.1:
    // pointers must be translated because addresses differ per platform).
    out.links = parsed.links;
    out.materialize_links()
        .map_err(|e| MigrateError::BadImage(format!("bad link: {e}")))?;
    Ok(out)
}

/// [`pack_state`] under an observability span: records a
/// `migration-pack` event against `rank` (arg0 = image bytes, arg1 =
/// block count). Identical to the plain call when `rec` is disabled.
pub fn pack_state_observed(state: &ThreadState, rec: &hdsm_obs::Recorder, rank: u32) -> StateImage {
    let t_us = rec.now_us();
    let t0 = std::time::Instant::now();
    let image = pack_state(state);
    rec.span_at(
        rank,
        hdsm_obs::EventKind::MigrationPack,
        t_us,
        t0.elapsed().as_micros() as u64,
        image.bytes.len() as u64,
        state.blocks.len() as u64,
        "",
    );
    image
}

/// [`unpack_state`] under an observability span: records a
/// `migration-restore` event against `rank` (arg0 = image bytes, arg1 =
/// restored block count). Identical to the plain call when `rec` is
/// disabled.
pub fn unpack_state_observed(
    image: &StateImage,
    target: &Platform,
    declared: &ThreadState,
    rec: &hdsm_obs::Recorder,
    rank: u32,
) -> Result<ThreadState, MigrateError> {
    let t_us = rec.now_us();
    let t0 = std::time::Instant::now();
    let out = unpack_state(image, target, declared)?;
    rec.span_at(
        rank,
        hdsm_obs::EventKind::MigrationRestore,
        t_us,
        t0.elapsed().as_micros() as u64,
        image.bytes.len() as u64,
        out.blocks.len() as u64,
        "",
    );
    Ok(out)
}

/// Convenience: the endianness recorded in an image (via its platform).
pub fn image_endianness(image: &StateImage) -> Result<Endianness, MigrateError> {
    let parsed = parse_image(image)?;
    PlatformSpec::by_name(&parsed.platform)
        .map(|p| p.endian)
        .ok_or(MigrateError::UnknownPlatform(parsed.platform))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsm_platform::ctype::{CType, StructBuilder};
    use hdsm_platform::scalar::ScalarKind;
    use hdsm_platform::value::Value;

    fn mthv() -> CType {
        CType::Struct(
            StructBuilder::new("MThV")
                .scalar("i", ScalarKind::Int)
                .scalar("sum", ScalarKind::Double)
                .array("row", ScalarKind::Int, 16)
                .build()
                .unwrap(),
        )
    }

    fn sample_state(p: Platform) -> ThreadState {
        let mut st = ThreadState::new("matmul");
        st.resume_point = 2;
        let mut b = TypedBlock::zeroed(mthv(), p.clone());
        b.set_field(0, &Value::Int(5)).unwrap();
        b.set_field(1, &Value::Float(0.5)).unwrap();
        b.set_field(2, &Value::Array((0..16).map(Value::Int).collect()))
            .unwrap();
        st.push_block("MThV", b);
        let mut p_block = TypedBlock::zeroed(CType::Scalar(ScalarKind::Ptr), p);
        p_block.set(&Value::Ptr(Some(128))).unwrap();
        st.push_block("MThP", p_block);
        st
    }

    fn declared(p: &Platform) -> ThreadState {
        let mut st = ThreadState::new("matmul");
        st.push_block("MThV", TypedBlock::zeroed(mthv(), p.clone()));
        st.push_block(
            "MThP",
            TypedBlock::zeroed(CType::Scalar(ScalarKind::Ptr), p.clone()),
        );
        st
    }

    #[test]
    fn heterogeneous_migration_roundtrip() {
        let src = PlatformSpec::linux_x86();
        let dst = PlatformSpec::solaris_sparc();
        let st = sample_state(src);
        let image = pack_state(&st);
        let restored = unpack_state(&image, &dst, &declared(&dst)).unwrap();
        assert_eq!(restored.resume_point, 2);
        assert_eq!(restored.program, "matmul");
        let v = restored.block("MThV").unwrap().value().unwrap();
        assert_eq!(v.field(0), &Value::Int(5));
        assert_eq!(v.field(1), &Value::Float(0.5));
        assert_eq!(
            restored.block("MThP").unwrap().value().unwrap(),
            Value::Ptr(Some(128))
        );
        // Restored bytes are genuinely big-endian now.
        assert_ne!(
            restored.block("MThV").unwrap().bytes,
            st.block("MThV").unwrap().bytes
        );
    }

    #[test]
    fn homogeneous_migration_is_byte_identical() {
        let src = PlatformSpec::solaris_sparc();
        let dst = PlatformSpec::aix_power(); // homogeneous layout rules
        let st = sample_state(src);
        let image = pack_state(&st);
        let restored = unpack_state(&image, &dst, &declared(&dst)).unwrap();
        assert_eq!(
            restored.block("MThV").unwrap().bytes,
            st.block("MThV").unwrap().bytes
        );
    }

    #[test]
    fn ilp32_to_lp64_pointer_growth() {
        let src = PlatformSpec::linux_x86();
        let dst = PlatformSpec::solaris_sparc64();
        let st = sample_state(src);
        let restored = unpack_state(&pack_state(&st), &dst, &declared(&dst)).unwrap();
        let p = restored.block("MThP").unwrap();
        assert_eq!(p.size(), 8);
        assert_eq!(p.value().unwrap(), Value::Ptr(Some(128)));
    }

    #[test]
    fn unknown_program_rejected() {
        let src = PlatformSpec::linux_x86();
        let st = sample_state(src.clone());
        let image = pack_state(&st);
        let mut wrong = declared(&src);
        wrong.program = "lu".into();
        assert!(matches!(
            unpack_state(&image, &src, &wrong),
            Err(MigrateError::UnknownProgram(_))
        ));
    }

    #[test]
    fn unknown_block_rejected() {
        let src = PlatformSpec::linux_x86();
        let st = sample_state(src.clone());
        let image = pack_state(&st);
        let mut partial = ThreadState::new("matmul");
        partial.push_block("MThV", TypedBlock::zeroed(mthv(), src.clone()));
        assert!(matches!(
            unpack_state(&image, &src, &partial),
            Err(MigrateError::UnknownBlock(_))
        ));
    }

    #[test]
    fn truncated_images_rejected() {
        let st = sample_state(PlatformSpec::linux_x86());
        let image = pack_state(&st);
        for cut in 0..image.bytes.len().min(64) {
            let partial = StateImage {
                bytes: image.bytes.slice(..cut),
            };
            assert!(parse_image(&partial).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn observed_pack_and_unpack_record_migration_spans() {
        let rec = hdsm_obs::Recorder::enabled();
        let src = PlatformSpec::linux_x86();
        let dst = PlatformSpec::solaris_sparc();
        let st = sample_state(src);
        let image = pack_state_observed(&st, &rec, 7);
        assert_eq!(image, pack_state(&st));
        let restored = unpack_state_observed(&image, &dst, &declared(&dst), &rec, 7).unwrap();
        assert_eq!(restored.resume_point, 2);
        let evs = rec.events();
        assert_eq!(evs.len(), 2);
        let pack = evs
            .iter()
            .find(|e| e.kind == hdsm_obs::EventKind::MigrationPack)
            .unwrap();
        assert_eq!(pack.rank, 7);
        assert_eq!(pack.arg0, image.bytes.len() as u64);
        assert_eq!(pack.arg1, 2); // MThV + MThP
        assert!(evs
            .iter()
            .any(|e| e.kind == hdsm_obs::EventKind::MigrationRestore));
    }

    #[test]
    fn image_endianness_reads_header() {
        let st = sample_state(PlatformSpec::solaris_sparc());
        assert_eq!(image_endianness(&pack_state(&st)).unwrap(), Endianness::Big);
    }

    #[test]
    fn empty_state_roundtrips() {
        let st = ThreadState::new("noop");
        let image = pack_state(&st);
        let parsed = parse_image(&image).unwrap();
        assert_eq!(parsed.blocks.len(), 0);
        assert_eq!(parsed.program, "noop");
        assert!(parsed.links.is_empty());
    }

    /// A stack frame holds a pointer into a heap object; after a
    /// heterogeneous migration the pointer must reference the same logical
    /// element even though the heap object's layout (and hence the
    /// target's byte offset) changed. This is the case the paper's
    /// related-work section says Ariadne's stack scanning "can fail" at.
    #[test]
    fn stack_to_heap_pointer_survives_heterogeneous_migration() {
        let linux = PlatformSpec::linux_x86();
        let sparc64 = PlatformSpec::solaris_sparc64();

        // Heap object: struct { char hdr; double payload[4]; } — offsets
        // differ between i386 (payload at 4) and SPARC64 (payload at 8).
        let heap_ty = CType::Struct(
            StructBuilder::new("Obj")
                .scalar("hdr", ScalarKind::Char)
                .array("payload", ScalarKind::Double, 4)
                .build()
                .unwrap(),
        );
        // Stack frame: struct { void *cursor; int depth; }.
        let frame_ty = CType::Struct(
            StructBuilder::new("Frame")
                .scalar("cursor", ScalarKind::Ptr)
                .scalar("depth", ScalarKind::Int)
                .build()
                .unwrap(),
        );

        let mut st = ThreadState::new("walker");
        let mut heap = TypedBlock::zeroed(heap_ty.clone(), linux.clone());
        heap.set_field(
            1,
            &Value::Array((0..4).map(|i| Value::Float(i as f64 + 0.5)).collect()),
        )
        .unwrap();
        st.push_block("heap:0", heap);
        let mut frame = TypedBlock::zeroed(frame_ty.clone(), linux.clone());
        frame.set_field(1, &Value::Int(3)).unwrap();
        st.push_block("stack:0", frame);
        // cursor = &heap_obj.payload[2] → leaf 3 of heap:0 (hdr is leaf 0,
        // payload[0..3] are leaves 1..4).
        st.add_link("stack:0", 0, "heap:0", 3);
        st.materialize_links().unwrap();

        // On the source platform the pointer word encodes offset 4+16=20.
        assert_eq!(
            st.block("stack:0").unwrap().read_ptr_leaf(0).unwrap(),
            Some(4 + 2 * 8)
        );

        // Migrate to big-endian LP64.
        let mut decl = ThreadState::new("walker");
        decl.push_block("heap:0", TypedBlock::zeroed(heap_ty, sparc64.clone()));
        decl.push_block("stack:0", TypedBlock::zeroed(frame_ty, sparc64.clone()));
        let restored = unpack_state(&pack_state(&st), &sparc64, &decl).unwrap();

        // Data converted…
        let heap = restored.block("heap:0").unwrap();
        assert_eq!(
            heap.get_field(1).unwrap(),
            Value::Array((0..4).map(|i| Value::Float(i as f64 + 0.5)).collect())
        );
        // …and the pointer re-targeted: payload starts at 8 on SPARC64, so
        // payload[2] is at byte offset 8 + 16 = 24, not 20.
        assert_eq!(
            restored.block("stack:0").unwrap().read_ptr_leaf(0).unwrap(),
            Some(8 + 2 * 8)
        );
        assert_eq!(restored.links, st.links);
        // Non-pointer frame data intact.
        assert_eq!(
            restored.block("stack:0").unwrap().get_field(1).unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn link_to_missing_block_rejected_at_restore() {
        let linux = PlatformSpec::linux_x86();
        let mut st = sample_state(linux.clone());
        st.add_link("MThP", 0, "nonexistent", 0);
        let image = pack_state(&st);
        assert!(matches!(
            unpack_state(&image, &linux, &declared(&linux)),
            Err(MigrateError::BadImage(_))
        ));
    }

    #[test]
    fn link_to_non_pointer_leaf_rejected() {
        let linux = PlatformSpec::linux_x86();
        let mut st = sample_state(linux.clone());
        // Leaf 0 of MThV is an int, not a pointer.
        st.add_link("MThV", 0, "MThP", 0);
        assert!(st.materialize_links().is_err());
    }
}
