//! The paper's thread role machine (§3.1, Figure 1).
//!
//! * The application starts on the **home node**; its default thread is the
//!   **master** and the spawned workers are **local** threads.
//! * Restarting the same application on a newly joined machine creates
//!   **skeleton** threads — blocked placeholders "holding computing slots
//!   for migrating states".
//! * When a local thread's state is shipped out it becomes a **stub** —
//!   it stays behind to serve resource access (the home side of the DSD
//!   protocol runs on stubs).
//! * A skeleton that loads an incoming state is renamed a **remote**
//!   thread and continues the computation.

use std::fmt;

/// Role of an application thread slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadRole {
    /// The default thread at the home node.
    Master,
    /// A worker at the home node, state still resident.
    Local,
    /// A blocked placeholder at a remote node awaiting a state.
    Skeleton,
    /// A home-node thread whose state migrated away; serves resources.
    Stub,
    /// A remote thread executing a migrated state.
    Remote,
}

/// Invalid role transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoleError {
    /// Role the transition was attempted from.
    pub from: ThreadRole,
    /// What was attempted.
    pub event: &'static str,
}

impl fmt::Display for RoleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {} from role {:?}", self.event, self.from)
    }
}

impl std::error::Error for RoleError {}

impl ThreadRole {
    /// Transition when this thread's state is migrated out.
    /// Local/Master → Stub (a master migration also moves the home node —
    /// that cluster-level effect is handled by the caller); Remote → Stub is
    /// forbidden (remote threads migrate *onward*: their slot reverts to
    /// Skeleton).
    pub fn on_migrate_out(self) -> Result<ThreadRole, RoleError> {
        match self {
            ThreadRole::Local | ThreadRole::Master => Ok(ThreadRole::Stub),
            ThreadRole::Remote => Ok(ThreadRole::Skeleton),
            from => Err(RoleError {
                from,
                event: "migrate-out",
            }),
        }
    }

    /// Transition when a migrated state arrives in this slot.
    pub fn on_receive_state(self) -> Result<ThreadRole, RoleError> {
        match self {
            ThreadRole::Skeleton => Ok(ThreadRole::Remote),
            // A stub can re-absorb a state that migrates back home.
            ThreadRole::Stub => Ok(ThreadRole::Local),
            from => Err(RoleError {
                from,
                event: "receive-state",
            }),
        }
    }

    /// Does this role currently execute application code?
    pub fn is_computing(self) -> bool {
        matches!(
            self,
            ThreadRole::Master | ThreadRole::Local | ThreadRole::Remote
        )
    }

    /// Does this role serve home-side resource requests?
    pub fn serves_requests(self) -> bool {
        matches!(self, ThreadRole::Stub | ThreadRole::Master)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lifecycle() {
        // Home node: local thread migrates away → stub.
        let local = ThreadRole::Local;
        let stub = local.on_migrate_out().unwrap();
        assert_eq!(stub, ThreadRole::Stub);
        assert!(stub.serves_requests());
        assert!(!stub.is_computing());

        // Remote node: skeleton receives the state → remote.
        let skel = ThreadRole::Skeleton;
        let remote = skel.on_receive_state().unwrap();
        assert_eq!(remote, ThreadRole::Remote);
        assert!(remote.is_computing());
    }

    #[test]
    fn remote_can_migrate_onward() {
        // "Threads can migrate again if the hosting node is overloaded."
        assert_eq!(
            ThreadRole::Remote.on_migrate_out().unwrap(),
            ThreadRole::Skeleton
        );
    }

    #[test]
    fn state_can_return_home() {
        assert_eq!(
            ThreadRole::Stub.on_receive_state().unwrap(),
            ThreadRole::Local
        );
    }

    #[test]
    fn invalid_transitions_rejected() {
        assert!(ThreadRole::Skeleton.on_migrate_out().is_err());
        assert!(ThreadRole::Stub.on_migrate_out().is_err());
        assert!(ThreadRole::Local.on_receive_state().is_err());
        assert!(ThreadRole::Remote.on_receive_state().is_err());
        assert!(ThreadRole::Master.on_receive_state().is_err());
    }

    #[test]
    fn master_migration_becomes_stub() {
        assert_eq!(
            ThreadRole::Master.on_migrate_out().unwrap(),
            ThreadRole::Stub
        );
    }
}
