//! Adaptive migration policies.
//!
//! The "adaptive" half of the paper's title: jobs are dispatched and
//! redistributed "according to requests from schedulers for load balancing
//! and load sharing" (§3.1). A [`MigrationPolicy`] inspects per-node load
//! and proposes thread movements; the cluster layer executes them at the
//! threads' next adaptation points.

use std::fmt;

/// Load snapshot for one node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeLoad {
    /// Node rank.
    pub rank: u32,
    /// Number of computing threads currently hosted.
    pub threads: usize,
    /// Relative CPU speed of the node (1.0 = reference machine).
    pub cpu_factor: f64,
    /// Whether the node accepts new work (a draining node does not).
    pub accepting: bool,
}

impl NodeLoad {
    /// Normalised load: threads per unit of compute capacity.
    pub fn normalized(&self) -> f64 {
        if self.cpu_factor <= 0.0 {
            f64::INFINITY
        } else {
            self.threads as f64 / self.cpu_factor
        }
    }
}

/// One proposed migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationPlan {
    /// Source node rank.
    pub from: u32,
    /// Destination node rank.
    pub to: u32,
}

impl fmt::Display for MigrationPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "migrate one thread {} -> {}", self.from, self.to)
    }
}

/// A policy mapping load snapshots to migration plans.
pub trait MigrationPolicy {
    /// Propose zero or more migrations for the given loads.
    fn plan(&self, loads: &[NodeLoad]) -> Vec<MigrationPlan>;
}

/// Move threads from the most- to the least-loaded node while the
/// normalised imbalance exceeds `imbalance_ratio`.
#[derive(Debug, Clone)]
pub struct ThresholdPolicy {
    /// Trigger when max_load / min_load exceeds this (>= 1.0).
    pub imbalance_ratio: f64,
    /// Upper bound on plans per invocation.
    pub max_moves: usize,
}

impl Default for ThresholdPolicy {
    fn default() -> Self {
        ThresholdPolicy {
            imbalance_ratio: 1.5,
            max_moves: 4,
        }
    }
}

impl MigrationPolicy for ThresholdPolicy {
    fn plan(&self, loads: &[NodeLoad]) -> Vec<MigrationPlan> {
        let mut working: Vec<NodeLoad> = loads.to_vec();
        let mut plans = Vec::new();
        for _ in 0..self.max_moves {
            let Some(dst) = working
                .iter()
                .filter(|n| n.accepting)
                .min_by(|a, b| a.normalized().total_cmp(&b.normalized()))
                .cloned()
            else {
                break;
            };
            let Some(src) = working
                .iter()
                .filter(|n| n.threads > 0 && n.rank != dst.rank)
                .max_by(|a, b| a.normalized().total_cmp(&b.normalized()))
                .cloned()
            else {
                break;
            };
            // Stop when balanced enough, guarding the empty-destination case.
            let dst_next = NodeLoad {
                threads: dst.threads + 1,
                ..dst.clone()
            };
            let improves = src.normalized() > dst_next.normalized();
            let imbalanced = dst.normalized() <= 0.0
                || src.normalized() / dst.normalized().max(1e-9) > self.imbalance_ratio;
            if !(imbalanced && improves) {
                break;
            }
            plans.push(MigrationPlan {
                from: src.rank,
                to: dst.rank,
            });
            for n in &mut working {
                if n.rank == src.rank {
                    n.threads -= 1;
                }
                if n.rank == dst.rank {
                    n.threads += 1;
                }
            }
        }
        plans
    }
}

/// Policy that drains a departing node: move everything off `leaving`.
#[derive(Debug, Clone)]
pub struct DrainPolicy {
    /// Rank being vacated.
    pub leaving: u32,
}

impl MigrationPolicy for DrainPolicy {
    fn plan(&self, loads: &[NodeLoad]) -> Vec<MigrationPlan> {
        let Some(src) = loads.iter().find(|n| n.rank == self.leaving) else {
            return Vec::new();
        };
        let mut targets: Vec<&NodeLoad> = loads
            .iter()
            .filter(|n| n.rank != self.leaving && n.accepting)
            .collect();
        if targets.is_empty() {
            return Vec::new();
        }
        targets.sort_by(|a, b| a.normalized().total_cmp(&b.normalized()));
        (0..src.threads)
            .map(|i| MigrationPlan {
                from: self.leaving,
                to: targets[i % targets.len()].rank,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(rank: u32, threads: usize, cpu: f64) -> NodeLoad {
        NodeLoad {
            rank,
            threads,
            cpu_factor: cpu,
            accepting: true,
        }
    }

    #[test]
    fn balanced_cluster_stays_put() {
        let p = ThresholdPolicy::default();
        assert!(p.plan(&[node(0, 2, 1.0), node(1, 2, 1.0)]).is_empty());
    }

    #[test]
    fn overload_moves_to_idle_node() {
        let p = ThresholdPolicy::default();
        let plans = p.plan(&[node(0, 4, 1.0), node(1, 0, 1.0)]);
        assert!(!plans.is_empty());
        assert!(plans.iter().all(|m| m.from == 0 && m.to == 1));
        // Should converge to 2/2, i.e. exactly 2 moves.
        assert_eq!(plans.len(), 2);
    }

    #[test]
    fn faster_node_attracts_more_work() {
        // Node 1 is twice as fast; 6 threads on node 0, none on node 1.
        let p = ThresholdPolicy {
            imbalance_ratio: 1.2,
            max_moves: 10,
        };
        let plans = p.plan(&[node(0, 6, 1.0), node(1, 0, 2.0)]);
        // Equilibrium near threads0/1.0 ≈ threads1/2.0 → 2 vs 4.
        assert_eq!(plans.len(), 4);
    }

    #[test]
    fn non_accepting_node_receives_nothing() {
        let p = ThresholdPolicy::default();
        let mut idle = node(1, 0, 1.0);
        idle.accepting = false;
        let plans = p.plan(&[node(0, 4, 1.0), idle]);
        assert!(plans.is_empty());
    }

    #[test]
    fn drain_moves_everything_round_robin() {
        let d = DrainPolicy { leaving: 0 };
        let plans = d.plan(&[node(0, 3, 1.0), node(1, 1, 1.0), node(2, 0, 1.0)]);
        assert_eq!(plans.len(), 3);
        assert!(plans.iter().all(|m| m.from == 0));
        // Least-loaded target (rank 2) comes first.
        assert_eq!(plans[0].to, 2);
    }

    #[test]
    fn drain_without_targets_is_noop() {
        let d = DrainPolicy { leaving: 0 };
        assert!(d.plan(&[node(0, 3, 1.0)]).is_empty());
    }

    #[test]
    fn zero_cpu_factor_is_infinitely_loaded() {
        assert!(node(0, 1, 0.0).normalized().is_infinite());
    }
}
