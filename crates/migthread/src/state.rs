//! Logical thread state.

use hdsm_platform::ctype::CType;
use hdsm_platform::layout::TypeLayout;
use hdsm_platform::spec::Platform;
use hdsm_platform::value::{Value, ValueError};

/// One block of live thread data (the unit MigThread tags and converts).
///
/// The bytes are always in the *native representation* of `platform` —
/// migrating a block to another platform goes through the portable image
/// ([`crate::packfmt`]) and receiver-makes-right conversion.
#[derive(Debug, Clone)]
pub struct TypedBlock {
    /// The declared C type of the block.
    pub ty: CType,
    /// Platform whose representation `bytes` uses.
    pub platform: Platform,
    /// Layout of `ty` on `platform` (cached).
    pub layout: TypeLayout,
    /// Native byte image.
    pub bytes: Vec<u8>,
}

impl TypedBlock {
    /// A zeroed block of `ty` on `platform`.
    pub fn zeroed(ty: CType, platform: Platform) -> TypedBlock {
        let layout = TypeLayout::compute(&ty, &platform);
        let bytes = vec![0u8; layout.size as usize];
        TypedBlock {
            ty,
            platform,
            layout,
            bytes,
        }
    }

    /// Build a block from a logical value.
    pub fn from_value(
        ty: CType,
        platform: Platform,
        value: &Value,
    ) -> Result<TypedBlock, ValueError> {
        let mut b = TypedBlock::zeroed(ty, platform);
        b.set(value)?;
        Ok(b)
    }

    /// Decode the whole block to a logical value.
    pub fn value(&self) -> Result<Value, ValueError> {
        Value::decode(&self.layout, &self.platform, &self.bytes)
    }

    /// Overwrite the whole block from a logical value.
    pub fn set(&mut self, value: &Value) -> Result<(), ValueError> {
        value.encode(&self.layout, &self.platform, &mut self.bytes)
    }

    /// Decode one top-level struct field.
    pub fn get_field(&self, index: usize) -> Result<Value, ValueError> {
        let f = &self.layout.struct_fields()[index];
        let start = f.offset as usize;
        let end = start + f.layout.size as usize;
        Value::decode(&f.layout, &self.platform, &self.bytes[start..end])
    }

    /// Encode one top-level struct field.
    pub fn set_field(&mut self, index: usize, value: &Value) -> Result<(), ValueError> {
        let f = self.layout.struct_fields()[index].clone();
        let start = f.offset as usize;
        let end = start + f.layout.size as usize;
        value.encode(&f.layout, &self.platform, &mut self.bytes[start..end])
    }

    /// Size of the native image in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Locate the `leaf`-th scalar of this block: `(offset, size, kind)`.
    /// Leaf indexes are layout-independent; offsets are not.
    pub fn leaf_info(&self, leaf: u64) -> Option<(u64, u64, hdsm_platform::scalar::ScalarKind)> {
        let mut n = 0u64;
        let mut found = None;
        self.layout.for_each_scalar(0, &mut |off, kind, size| {
            if n == leaf {
                found = Some((off, size, kind));
            }
            n += 1;
        });
        found
    }

    /// Write a pointer word at the `leaf`-th scalar (which must be a
    /// pointer leaf): the symbolic representation `1 + target_offset`
    /// (`0` = NULL), in this block's native byte order and pointer size.
    pub fn write_ptr_leaf(
        &mut self,
        leaf: u64,
        target_offset: Option<u64>,
    ) -> Result<(), ValueError> {
        let (off, size, kind) = self.leaf_info(leaf).ok_or(ValueError::ArityMismatch {
            expected: 0,
            got: leaf,
        })?;
        if kind != hdsm_platform::scalar::ScalarKind::Ptr {
            return Err(ValueError::ShapeMismatch(format!(
                "leaf {leaf} is {kind:?}, not a pointer"
            )));
        }
        let raw = match target_offset {
            None => 0u128,
            Some(o) => 1 + u128::from(o),
        };
        if !hdsm_platform::endian::fits_uint(raw, size as usize) {
            return Err(ValueError::Overflow {
                kind,
                value: format!("{target_offset:?}"),
            });
        }
        hdsm_platform::endian::write_uint(
            raw,
            &mut self.bytes[off as usize..(off + size) as usize],
            self.platform.endian,
        );
        Ok(())
    }

    /// Read a pointer word at the `leaf`-th scalar as a target offset.
    pub fn read_ptr_leaf(&self, leaf: u64) -> Result<Option<u64>, ValueError> {
        let (off, size, kind) = self.leaf_info(leaf).ok_or(ValueError::ArityMismatch {
            expected: 0,
            got: leaf,
        })?;
        if kind != hdsm_platform::scalar::ScalarKind::Ptr {
            return Err(ValueError::ShapeMismatch(format!(
                "leaf {leaf} is {kind:?}, not a pointer"
            )));
        }
        let raw = hdsm_platform::endian::read_uint(
            &self.bytes[off as usize..(off + size) as usize],
            self.platform.endian,
        );
        Ok(if raw == 0 {
            None
        } else {
            Some((raw - 1) as u64)
        })
    }
}

/// A named block within a thread state. Conventional names: `"MThV"` for
/// value state, `"MThP"` for pointer state (paper Fig. 3), `"stack:<n>"`
/// for stack frames, `"heap:<n>"` for heap objects.
#[derive(Debug, Clone)]
pub struct NamedBlock {
    /// Block name.
    pub name: String,
    /// The block data.
    pub block: TypedBlock,
}

/// A cross-block pointer: "the `src_leaf`-th scalar of block `src_block`
/// points at the `dst_leaf`-th scalar of block `dst_block`".
///
/// Leaf indexes are *layout-independent* (they count scalar leaves in
/// declaration order), so a link survives heterogeneous migration even
/// though the byte offsets of both ends change with the platform — the
/// same trick the DSD index table plays for `GThV` pointers. This is what
/// lets MigThread ship stack/heap pointers that systems like Ariadne
/// (paper §2) recover by error-prone stack scanning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Link {
    /// Block holding the pointer.
    pub src_block: String,
    /// Scalar-leaf index of the pointer within `src_block`.
    pub src_leaf: u64,
    /// Block the pointer targets.
    pub dst_block: String,
    /// Scalar-leaf index of the target within `dst_block`.
    pub dst_leaf: u64,
}

/// The complete logical state of one application thread, as captured at an
/// adaptation point.
#[derive(Debug, Clone)]
pub struct ThreadState {
    /// Program identifier — the receiving node's registry must know it
    /// (the same application binary runs on every node; paper §3.1).
    pub program: String,
    /// Logical resume point (valid only at adaptation points).
    pub resume_point: u32,
    /// Named data blocks.
    pub blocks: Vec<NamedBlock>,
    /// Cross-block pointers, re-targeted on restore.
    pub links: Vec<Link>,
}

impl ThreadState {
    /// Create an empty state for `program`.
    pub fn new(program: impl Into<String>) -> ThreadState {
        ThreadState {
            program: program.into(),
            resume_point: 0,
            blocks: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Record a cross-block pointer (see [`Link`]). The pointer's stored
    /// word is materialised at restore time; callers only maintain the
    /// logical link.
    pub fn add_link(
        &mut self,
        src_block: impl Into<String>,
        src_leaf: u64,
        dst_block: impl Into<String>,
        dst_leaf: u64,
    ) {
        self.links.push(Link {
            src_block: src_block.into(),
            src_leaf,
            dst_block: dst_block.into(),
            dst_leaf,
        });
    }

    /// Append a named block.
    pub fn push_block(&mut self, name: impl Into<String>, block: TypedBlock) {
        self.blocks.push(NamedBlock {
            name: name.into(),
            block,
        });
    }

    /// Find a block by name.
    pub fn block(&self, name: &str) -> Option<&TypedBlock> {
        self.blocks
            .iter()
            .find(|b| b.name == name)
            .map(|b| &b.block)
    }

    /// Find a block by name, mutably.
    pub fn block_mut(&mut self, name: &str) -> Option<&mut TypedBlock> {
        self.blocks
            .iter_mut()
            .find(|b| b.name == name)
            .map(|b| &mut b.block)
    }

    /// Total native bytes across blocks.
    pub fn total_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.block.size()).sum()
    }

    /// Materialise every [`Link`] into its pointer word: for each link,
    /// the target's byte offset *in the current layout* is written into
    /// the source pointer leaf. Called automatically after restore; call
    /// manually after mutating `links` locally.
    pub fn materialize_links(&mut self) -> Result<(), ValueError> {
        let links = self.links.clone();
        for link in &links {
            let target_off = {
                let dst = self.block(&link.dst_block).ok_or_else(|| {
                    ValueError::ShapeMismatch(format!("no block {}", link.dst_block))
                })?;
                let (off, _, _) = dst.leaf_info(link.dst_leaf).ok_or_else(|| {
                    ValueError::ShapeMismatch(format!(
                        "no leaf {} in {}",
                        link.dst_leaf, link.dst_block
                    ))
                })?;
                off
            };
            let src = self
                .block_mut(&link.src_block)
                .ok_or_else(|| ValueError::ShapeMismatch(format!("no block {}", link.src_block)))?;
            src.write_ptr_leaf(link.src_leaf, Some(target_off))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsm_platform::ctype::StructBuilder;
    use hdsm_platform::scalar::ScalarKind;
    use hdsm_platform::spec::PlatformSpec;

    fn mthv_type() -> CType {
        CType::Struct(
            StructBuilder::new("MThV")
                .scalar("p", ScalarKind::Ptr)
                .scalar("i", ScalarKind::Int)
                .scalar("sum", ScalarKind::Double)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn zeroed_block_decodes_to_zero() {
        let b = TypedBlock::zeroed(mthv_type(), PlatformSpec::solaris_sparc());
        let v = b.value().unwrap();
        assert_eq!(v.field(0), &Value::Ptr(None));
        assert_eq!(v.field(1), &Value::Int(0));
        assert_eq!(v.field(2), &Value::Float(0.0));
    }

    #[test]
    fn field_level_access() {
        let mut b = TypedBlock::zeroed(mthv_type(), PlatformSpec::linux_x86());
        b.set_field(1, &Value::Int(42)).unwrap();
        b.set_field(2, &Value::Float(1.5)).unwrap();
        assert_eq!(b.get_field(1).unwrap(), Value::Int(42));
        assert_eq!(b.get_field(2).unwrap(), Value::Float(1.5));
        assert_eq!(b.get_field(0).unwrap(), Value::Ptr(None));
    }

    #[test]
    fn blocks_are_native_representation() {
        let mut le = TypedBlock::zeroed(CType::Scalar(ScalarKind::Int), PlatformSpec::linux_x86());
        let mut be = TypedBlock::zeroed(
            CType::Scalar(ScalarKind::Int),
            PlatformSpec::solaris_sparc(),
        );
        le.set(&Value::Int(1)).unwrap();
        be.set(&Value::Int(1)).unwrap();
        assert_eq!(le.bytes, vec![1, 0, 0, 0]);
        assert_eq!(be.bytes, vec![0, 0, 0, 1]);
    }

    #[test]
    fn thread_state_block_lookup() {
        let mut st = ThreadState::new("matmul");
        st.push_block(
            "MThV",
            TypedBlock::zeroed(mthv_type(), PlatformSpec::linux_x86()),
        );
        st.resume_point = 3;
        assert!(st.block("MThV").is_some());
        assert!(st.block("MThP").is_none());
        st.block_mut("MThV")
            .unwrap()
            .set_field(1, &Value::Int(7))
            .unwrap();
        assert_eq!(
            st.block("MThV").unwrap().get_field(1).unwrap(),
            Value::Int(7)
        );
        assert!(st.total_bytes() > 0);
    }
}
