//! Property tests for MigThread: migration images must round-trip thread
//! states across arbitrary platform chains, preserving every logical
//! value and re-targeting every cross-block link.

use hdsm_migthread::packfmt::{pack_state, unpack_state};
use hdsm_migthread::state::{ThreadState, TypedBlock};
use hdsm_platform::ctype::{CType, StructBuilder};
use hdsm_platform::scalar::ScalarKind;
use hdsm_platform::spec::{Platform, PlatformSpec};
use hdsm_platform::value::Value;
use proptest::prelude::*;

const INTS: usize = 24;
const DOUBLES: usize = 8;
const PTR_SLOTS: usize = 3;

fn block_ty() -> CType {
    CType::Struct(
        StructBuilder::new("MThV")
            .scalar("pc", ScalarKind::Int)
            .array("xs", ScalarKind::Int, INTS)
            .array("fs", ScalarKind::Double, DOUBLES)
            .array("ps", ScalarKind::Ptr, PTR_SLOTS)
            .build()
            .unwrap(),
    )
}

fn heap_ty() -> CType {
    CType::Struct(
        StructBuilder::new("Heap")
            .scalar("hdr", ScalarKind::Char)
            .array("payload", ScalarKind::Double, 6)
            .build()
            .unwrap(),
    )
}

fn declared(p: &Platform) -> ThreadState {
    let mut st = ThreadState::new("prop");
    st.push_block("MThV", TypedBlock::zeroed(block_ty(), p.clone()));
    st.push_block("heap:0", TypedBlock::zeroed(heap_ty(), p.clone()));
    st
}

fn any_platform() -> impl Strategy<Value = Platform> {
    prop::sample::select(PlatformSpec::presets())
}

#[derive(Debug, Clone)]
struct StateSeed {
    pc: i32,
    xs: Vec<i32>,
    fs: Vec<f32>,
    heap: Vec<f32>,
    links: Vec<(usize, u64)>, // (ptr slot, heap leaf)
    resume: u32,
}

fn any_seed() -> impl Strategy<Value = StateSeed> {
    (
        any::<i32>(),
        prop::collection::vec(any::<i32>(), INTS..=INTS),
        prop::collection::vec(
            any::<f32>().prop_filter("finite", |f| f.is_finite()),
            DOUBLES..=DOUBLES,
        ),
        prop::collection::vec(any::<f32>().prop_filter("finite", |f| f.is_finite()), 6..=6),
        prop::collection::vec((0..PTR_SLOTS, 0u64..7), 0..PTR_SLOTS),
        any::<u32>(),
    )
        .prop_map(|(pc, xs, fs, heap, links, resume)| StateSeed {
            pc,
            xs,
            fs,
            heap,
            links,
            resume,
        })
}

fn build_state(seed: &StateSeed, p: &Platform) -> ThreadState {
    let mut st = declared(p);
    st.resume_point = seed.resume;
    {
        let b = st.block_mut("MThV").unwrap();
        b.set_field(0, &Value::Int(seed.pc as i128)).unwrap();
        b.set_field(
            1,
            &Value::Array(seed.xs.iter().map(|&v| Value::Int(v as i128)).collect()),
        )
        .unwrap();
        b.set_field(
            2,
            &Value::Array(seed.fs.iter().map(|&v| Value::Float(v as f64)).collect()),
        )
        .unwrap();
    }
    {
        let h = st.block_mut("heap:0").unwrap();
        h.set_field(
            1,
            &Value::Array(seed.heap.iter().map(|&v| Value::Float(v as f64)).collect()),
        )
        .unwrap();
    }
    for (slot, leaf) in dedup_links(&seed.links) {
        // ps[slot] is leaf 1 + INTS + DOUBLES + slot of MThV.
        st.add_link("MThV", (1 + INTS + DOUBLES + slot) as u64, "heap:0", leaf);
    }
    st.materialize_links().unwrap();
    st
}

/// One link per pointer slot (the generator may propose duplicates; a
/// real program has a single live target per pointer).
fn dedup_links(links: &[(usize, u64)]) -> Vec<(usize, u64)> {
    let mut by_slot = std::collections::BTreeMap::new();
    for &(slot, leaf) in links {
        by_slot.insert(slot, leaf);
    }
    by_slot.into_iter().collect()
}

fn check_state(st: &ThreadState, seed: &StateSeed, p: &Platform) {
    assert_eq!(st.resume_point, seed.resume);
    let b = st.block("MThV").unwrap();
    assert_eq!(b.platform.name, p.name);
    assert_eq!(b.get_field(0).unwrap(), Value::Int(seed.pc as i128));
    assert_eq!(
        b.get_field(1).unwrap(),
        Value::Array(seed.xs.iter().map(|&v| Value::Int(v as i128)).collect())
    );
    assert_eq!(
        b.get_field(2).unwrap(),
        Value::Array(seed.fs.iter().map(|&v| Value::Float(v as f64)).collect())
    );
    // Links point at the platform-correct offsets.
    let heap = st.block("heap:0").unwrap();
    for (slot, leaf) in dedup_links(&seed.links) {
        let (want_off, _, _) = heap.leaf_info(leaf).unwrap();
        let got = b.read_ptr_leaf((1 + INTS + DOUBLES + slot) as u64).unwrap();
        assert_eq!(got, Some(want_off), "link slot {slot} leaf {leaf}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// pack → unpack between any two platforms preserves the whole state.
    #[test]
    fn migration_roundtrip_any_pair(
        seed in any_seed(),
        src in any_platform(),
        dst in any_platform(),
    ) {
        let st = build_state(&seed, &src);
        let image = pack_state(&st);
        let restored = unpack_state(&image, &dst, &declared(&dst)).unwrap();
        check_state(&restored, &seed, &dst);
    }

    /// A chain of migrations through three random platforms ends with the
    /// same logical state as a direct migration.
    #[test]
    fn migration_chain_equals_direct(
        seed in any_seed(),
        a in any_platform(),
        b in any_platform(),
        c in any_platform(),
    ) {
        let st = build_state(&seed, &a);
        // a → b → c
        let via_b = unpack_state(&pack_state(&st), &b, &declared(&b)).unwrap();
        let via_c = unpack_state(&pack_state(&via_b), &c, &declared(&c)).unwrap();
        check_state(&via_c, &seed, &c);
        // a → c directly
        let direct = unpack_state(&pack_state(&st), &c, &declared(&c)).unwrap();
        // Byte-identical final images (both in c's representation).
        prop_assert_eq!(
            &via_c.block("MThV").unwrap().bytes,
            &direct.block("MThV").unwrap().bytes
        );
        prop_assert_eq!(
            &via_c.block("heap:0").unwrap().bytes,
            &direct.block("heap:0").unwrap().bytes
        );
    }

    /// Image parsing never panics on arbitrary corruption of a valid
    /// image (single-byte flips at every position).
    #[test]
    fn corrupted_images_never_panic(seed in any_seed(), pos_salt in any::<u16>()) {
        use hdsm_migthread::packfmt::{parse_image, StateImage};
        let st = build_state(&seed, &PlatformSpec::linux_x86());
        let image = pack_state(&st);
        let pos = (pos_salt as usize) % image.bytes.len();
        let mut corrupted = image.bytes.to_vec();
        corrupted[pos] ^= 0x5a;
        let _ = parse_image(&StateImage { bytes: corrupted.into() });
    }
}
