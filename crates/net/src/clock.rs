//! The fabric clock: one time abstraction for both execution modes.
//!
//! Every timer in the DSD — retransmit backoff, lease expiry, replica
//! promotion, heartbeat cadence, drain deadlines — reads time through a
//! [`FabricClock`] instead of `std::time::Instant`. In threaded mode the
//! clock is wall time (microseconds since a process-wide epoch), so
//! behaviour is identical to the pre-clock code. In simulation mode the
//! clock is the [`SimFabric`](crate::sim::SimFabric)'s virtual clock, which
//! only advances when the event queue fires — timers become events and a
//! whole run is a pure function of `(workload, config, seed)`.

use crate::sim::SimFabric;
use std::ops::Add;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A point on the fabric timeline, microseconds since the mode's epoch
/// (process start for wall mode, virtual zero for sim mode). Instants from
/// different clocks must not be compared; in practice every component of a
/// cluster shares the one clock handed out by its [`Network`].
///
/// [`Network`]: crate::Network
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FabricInstant {
    us: u64,
}

impl FabricInstant {
    /// The epoch itself (`t = 0`).
    pub const ZERO: FabricInstant = FabricInstant { us: 0 };

    /// Construct from raw microseconds since the epoch.
    pub fn from_micros(us: u64) -> FabricInstant {
        FabricInstant { us }
    }

    /// Microseconds since the epoch.
    pub fn as_micros(self) -> u64 {
        self.us
    }

    /// Time elapsed from `earlier` to `self`, zero if `earlier` is later.
    pub fn saturating_since(self, earlier: FabricInstant) -> Duration {
        Duration::from_micros(self.us.saturating_sub(earlier.us))
    }
}

impl Add<Duration> for FabricInstant {
    type Output = FabricInstant;

    fn add(self, d: Duration) -> FabricInstant {
        FabricInstant {
            us: self
                .us
                .saturating_add(d.as_micros().min(u64::MAX as u128) as u64),
        }
    }
}

fn wall_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[derive(Clone)]
enum Source {
    Wall,
    Sim(SimFabric),
}

/// Handle to the time source of a fabric. Cheap to clone; all clones of a
/// sim clock observe the same virtual timeline.
#[derive(Clone)]
pub struct FabricClock {
    source: Source,
}

impl FabricClock {
    /// The wall clock (threaded mode): real time since process start.
    pub fn wall() -> FabricClock {
        FabricClock {
            source: Source::Wall,
        }
    }

    /// The virtual clock of a simulation fabric.
    pub fn sim(fabric: SimFabric) -> FabricClock {
        FabricClock {
            source: Source::Sim(fabric),
        }
    }

    /// Is this a virtual (simulation) clock?
    pub fn is_sim(&self) -> bool {
        matches!(self.source, Source::Sim(_))
    }

    /// Current time on the fabric timeline.
    pub fn now(&self) -> FabricInstant {
        FabricInstant { us: self.now_us() }
    }

    /// Current time in microseconds since the epoch.
    pub fn now_us(&self) -> u64 {
        match &self.source {
            Source::Wall => wall_epoch().elapsed().as_micros() as u64,
            Source::Sim(f) => f.now_us(),
        }
    }

    /// Sleep for `d` on this timeline. Wall mode really sleeps; sim mode
    /// yields to the scheduler until the virtual clock reaches `now + d`
    /// (the calling thread must be a registered sim actor).
    pub fn sleep(&self, d: Duration) {
        match &self.source {
            Source::Wall => std::thread::sleep(d),
            Source::Sim(f) => f.sleep(d),
        }
    }
}

/// A fixed-interval tick source over a [`FabricClock`] timeline. The
/// telemetry actor sleeps in small slices and drains `due(now)` each time
/// it wakes: every returned boundary is an *exact multiple* of the
/// interval past the start instant, regardless of how late the actor
/// actually woke — so windows closed on the virtual clock of two
/// same-seed simulated runs carry byte-identical timestamps.
#[derive(Debug, Clone, Copy)]
pub struct Ticker {
    next: FabricInstant,
    interval: Duration,
}

impl Ticker {
    /// A ticker whose first boundary is `start + interval`. A zero
    /// interval is clamped to 1 µs.
    pub fn new(start: FabricInstant, interval: Duration) -> Ticker {
        let interval = interval.max(Duration::from_micros(1));
        Ticker {
            next: start + interval,
            interval,
        }
    }

    /// The configured interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// If a boundary has been reached, return it and advance to the next
    /// one. Call in a loop to drain every boundary `now` has passed.
    pub fn due(&mut self, now: FabricInstant) -> Option<FabricInstant> {
        if now >= self.next {
            let t = self.next;
            self.next = t + self.interval;
            Some(t)
        } else {
            None
        }
    }
}

impl std::fmt::Debug for FabricClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.source {
            Source::Wall => write!(f, "FabricClock::Wall"),
            Source::Sim(_) => write!(f, "FabricClock::Sim"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_advances() {
        let clock = FabricClock::wall();
        let a = clock.now();
        std::thread::sleep(Duration::from_millis(2));
        let b = clock.now();
        assert!(b > a);
        assert!(b.saturating_since(a) >= Duration::from_millis(1));
        assert_eq!(a.saturating_since(b), Duration::ZERO);
    }

    #[test]
    fn instant_arithmetic() {
        let t = FabricInstant::from_micros(100);
        let later = t + Duration::from_micros(50);
        assert_eq!(later.as_micros(), 150);
        assert_eq!(later.saturating_since(t), Duration::from_micros(50));
        assert!(later > t);
    }

    #[test]
    fn ticker_boundaries_are_exact_multiples() {
        let mut t = Ticker::new(FabricInstant::from_micros(0), Duration::from_micros(100));
        // Not yet due.
        assert_eq!(t.due(FabricInstant::from_micros(99)), None);
        // A late wake drains every passed boundary, each an exact multiple.
        let mut drained = Vec::new();
        let now = FabricInstant::from_micros(350);
        while let Some(b) = t.due(now) {
            drained.push(b.as_micros());
        }
        assert_eq!(drained, vec![100, 200, 300]);
        // The next boundary stays on the grid.
        assert_eq!(
            t.due(FabricInstant::from_micros(400)),
            Some(FabricInstant::from_micros(400))
        );
    }

    #[test]
    fn ticker_clamps_zero_interval() {
        let mut t = Ticker::new(FabricInstant::ZERO, Duration::ZERO);
        assert_eq!(t.interval(), Duration::from_micros(1));
        assert_eq!(
            t.due(FabricInstant::from_micros(1)),
            Some(FabricInstant::from_micros(1))
        );
    }
}
