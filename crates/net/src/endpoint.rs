//! The network fabric and per-node endpoints.

use crate::message::{Message, MsgKind};
use crate::stats::{NetConfig, NetStats};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::{Mutex, RwLock};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Errors from sending/receiving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Destination rank is not registered.
    UnknownDestination(u32),
    /// The destination endpoint has been dropped.
    Disconnected(u32),
    /// Blocking receive timed out.
    Timeout,
    /// Channel empty on `try_recv`.
    Empty,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownDestination(r) => write!(f, "unknown destination rank {r}"),
            NetError::Disconnected(r) => write!(f, "rank {r} disconnected"),
            NetError::Timeout => write!(f, "receive timeout"),
            NetError::Empty => write!(f, "no message available"),
        }
    }
}

impl std::error::Error for NetError {}

struct Fabric {
    config: NetConfig,
    senders: RwLock<Vec<Sender<Message>>>,
    stats: Mutex<NetStats>,
}

/// Handle to the shared network fabric. Cloning is cheap; all clones refer
/// to the same fabric.
#[derive(Clone)]
pub struct Network {
    fabric: Arc<Fabric>,
}

impl Network {
    /// Create a fabric with `n` endpoints (ranks `0..n`).
    pub fn new(n: usize, config: NetConfig) -> (Network, Vec<Endpoint>) {
        let net = Network {
            fabric: Arc::new(Fabric {
                config,
                senders: RwLock::new(Vec::new()),
                stats: Mutex::new(NetStats::default()),
            }),
        };
        let eps = (0..n).map(|_| net.add_endpoint()).collect();
        (net, eps)
    }

    /// Register a new endpoint at runtime — this is how a machine "joins"
    /// the adaptive cluster (paper §1: jobs dispatched to newly added
    /// machines). Returns the endpoint with the next free rank.
    pub fn add_endpoint(&self) -> Endpoint {
        let (tx, rx) = unbounded();
        let mut senders = self.fabric.senders.write();
        let rank = senders.len() as u32;
        senders.push(tx);
        Endpoint {
            rank,
            rx,
            net: self.clone(),
        }
    }

    /// Number of registered endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.fabric.senders.read().len()
    }

    /// Snapshot of traffic statistics.
    pub fn stats(&self) -> NetStats {
        self.fabric.stats.lock().clone()
    }

    /// Reset traffic statistics (between benchmark phases).
    pub fn reset_stats(&self) {
        *self.fabric.stats.lock() = NetStats::default();
    }

    fn send(&self, msg: Message) -> Result<(), NetError> {
        let wire = self.fabric.config.transfer_time(msg.payload.len());
        let tx = {
            let senders = self.fabric.senders.read();
            senders
                .get(msg.dst as usize)
                .ok_or(NetError::UnknownDestination(msg.dst))?
                .clone()
        };
        self.fabric
            .stats
            .lock()
            .record(msg.kind, msg.payload.len(), wire);
        if self.fabric.config.real_delay && wire > Duration::ZERO {
            std::thread::sleep(wire);
        }
        let dst = msg.dst;
        tx.send(msg).map_err(|_| NetError::Disconnected(dst))
    }
}

/// A node's connection to the fabric. Receives are exclusive to the owner;
/// sends go through the shared fabric.
pub struct Endpoint {
    rank: u32,
    rx: Receiver<Message>,
    net: Network,
}

impl Endpoint {
    /// This endpoint's rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Handle to the fabric (for stats or adding endpoints).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Send `payload` to `dst`.
    pub fn send(&self, dst: u32, kind: MsgKind, payload: Bytes) -> Result<(), NetError> {
        self.net.send(Message {
            src: self.rank,
            dst,
            kind,
            payload,
        })
    }

    /// Blocking receive.
    pub fn recv(&self) -> Result<Message, NetError> {
        self.rx.recv().map_err(|_| NetError::Disconnected(self.rank))
    }

    /// Blocking receive with timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Message, NetError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => NetError::Timeout,
            RecvTimeoutError::Disconnected => NetError::Disconnected(self.rank),
        })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Message, NetError> {
        self.rx.try_recv().map_err(|e| match e {
            TryRecvError::Empty => NetError::Empty,
            TryRecvError::Disconnected => NetError::Disconnected(self.rank),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_send_receive() {
        let (_net, eps) = Network::new(2, NetConfig::instant());
        eps[0]
            .send(1, MsgKind::Other, Bytes::from_static(b"hello"))
            .unwrap();
        let m = eps[1].recv().unwrap();
        assert_eq!(m.src, 0);
        assert_eq!(m.dst, 1);
        assert_eq!(&m.payload[..], b"hello");
    }

    #[test]
    fn unknown_destination() {
        let (_net, eps) = Network::new(1, NetConfig::instant());
        assert_eq!(
            eps[0].send(9, MsgKind::Other, Bytes::new()),
            Err(NetError::UnknownDestination(9))
        );
    }

    #[test]
    fn self_send_allowed() {
        let (_net, eps) = Network::new(1, NetConfig::instant());
        eps[0].send(0, MsgKind::Other, Bytes::new()).unwrap();
        assert!(eps[0].try_recv().is_ok());
    }

    #[test]
    fn try_recv_empty() {
        let (_net, eps) = Network::new(1, NetConfig::instant());
        assert_eq!(eps[0].try_recv().unwrap_err(), NetError::Empty);
    }

    #[test]
    fn timeout_fires() {
        let (_net, eps) = Network::new(1, NetConfig::instant());
        assert_eq!(
            eps[0].recv_timeout(Duration::from_millis(5)).unwrap_err(),
            NetError::Timeout
        );
    }

    #[test]
    fn dynamic_join_gets_next_rank() {
        let (net, eps) = Network::new(2, NetConfig::instant());
        let newcomer = net.add_endpoint();
        assert_eq!(newcomer.rank(), 2);
        assert_eq!(net.endpoint_count(), 3);
        eps[0]
            .send(2, MsgKind::Other, Bytes::from_static(b"welcome"))
            .unwrap();
        assert_eq!(&newcomer.recv().unwrap().payload[..], b"welcome");
    }

    #[test]
    fn stats_track_traffic() {
        let (net, eps) = Network::new(2, NetConfig::default());
        eps[0]
            .send(1, MsgKind::LockRequest, Bytes::from_static(&[0; 100]))
            .unwrap();
        eps[1]
            .send(0, MsgKind::LockGrant, Bytes::from_static(&[0; 5000]))
            .unwrap();
        let s = net.stats();
        assert_eq!(s.total_messages(), 2);
        assert_eq!(s.total_bytes(), 5100);
        assert!(s.simulated_wire_time > Duration::ZERO);
        net.reset_stats();
        assert_eq!(net.stats().total_messages(), 0);
    }

    #[test]
    fn cross_thread_messaging() {
        let (_net, mut eps) = Network::new(2, NetConfig::instant());
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let t = std::thread::spawn(move || {
            let m = ep1.recv().unwrap();
            ep1.send(m.src, MsgKind::Other, m.payload).unwrap();
        });
        ep0.send(1, MsgKind::Other, Bytes::from_static(b"ping"))
            .unwrap();
        let echo = ep0.recv().unwrap();
        assert_eq!(&echo.payload[..], b"ping");
        t.join().unwrap();
    }

    #[test]
    fn messages_preserve_fifo_per_pair() {
        let (_net, eps) = Network::new(2, NetConfig::instant());
        for i in 0..100u8 {
            eps[0]
                .send(1, MsgKind::Other, Bytes::copy_from_slice(&[i]))
                .unwrap();
        }
        for i in 0..100u8 {
            assert_eq!(eps[1].recv().unwrap().payload[0], i);
        }
    }
}
