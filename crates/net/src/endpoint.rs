//! The network fabric and per-node endpoints.

use crate::clock::FabricClock;
use crate::fault::{FaultPlan, FaultState};
use crate::message::{Message, MsgKind, TraceCtx};
use crate::sim::{SimFabric, Wake};
use crate::stats::{NetConfig, NetStats};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use hdsm_obs::{EventKind, OpCtx, Recorder};
use parking_lot::{Mutex, RwLock};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Errors from sending/receiving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Destination rank is not registered.
    UnknownDestination(u32),
    /// The destination endpoint (rank given) has been dropped.
    Disconnected(u32),
    /// This endpoint's own receive channel is closed: every sender handle
    /// to it is gone, so no message can ever arrive.
    ChannelClosed,
    /// Blocking receive timed out.
    Timeout,
    /// Channel empty on `try_recv`.
    Empty,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownDestination(r) => write!(f, "unknown destination rank {r}"),
            NetError::Disconnected(r) => write!(f, "destination rank {r} disconnected"),
            NetError::ChannelClosed => write!(f, "receive channel closed (fabric gone)"),
            NetError::Timeout => write!(f, "receive timeout"),
            NetError::Empty => write!(f, "no message available"),
        }
    }
}

impl std::error::Error for NetError {}

struct Fabric {
    config: NetConfig,
    senders: RwLock<Vec<Sender<Message>>>,
    stats: Mutex<NetStats>,
    /// Present iff the config carries a fault plan or a partition was ever
    /// requested; absent means the fast path skips fault bookkeeping.
    faults: Mutex<Option<FaultState>>,
    /// Observability hook; the default disabled recorder costs one branch
    /// per send.
    recorder: Recorder,
    /// Present in simulation mode: sends become virtual-clock events and
    /// receives yield to the deterministic scheduler.
    sim: Option<SimFabric>,
}

/// Handle to the shared network fabric. Cloning is cheap; all clones refer
/// to the same fabric.
#[derive(Clone)]
pub struct Network {
    fabric: Arc<Fabric>,
}

impl Network {
    /// Create a fabric with `n` endpoints (ranks `0..n`).
    pub fn new(n: usize, config: NetConfig) -> (Network, Vec<Endpoint>) {
        Network::new_observed(n, config, Recorder::disabled())
    }

    /// Create a fabric whose traffic is recorded into `recorder` (message
    /// events, per-kind traffic, fault instants). With a disabled recorder
    /// this is identical to [`Network::new`].
    pub fn new_observed(
        n: usize,
        config: NetConfig,
        recorder: Recorder,
    ) -> (Network, Vec<Endpoint>) {
        Network::build(n, config, recorder, None)
    }

    /// Create a fabric whose message delivery and timers run on `sim`'s
    /// virtual clock instead of wall time. Sends enqueue deterministic
    /// delivery events; blocking receives yield to the sim scheduler (the
    /// receiving thread must be a registered sim actor).
    pub fn new_sim(
        n: usize,
        config: NetConfig,
        recorder: Recorder,
        sim: &SimFabric,
    ) -> (Network, Vec<Endpoint>) {
        if recorder.is_enabled() {
            // A sim deadlock is about to panic the scheduler: flush a
            // flight-recorder bundle first. The hook runs with the sim
            // state lock held, so the trigger takes the virtual time as an
            // argument instead of reading the (sim-backed) time source.
            let rec = recorder.clone();
            sim.set_deadlock_hook(move |t_us| {
                rec.blackbox_trigger_at("sim-deadlock", t_us);
            });
        }
        Network::build(n, config, recorder, Some(sim.clone()))
    }

    fn build(
        n: usize,
        config: NetConfig,
        recorder: Recorder,
        sim: Option<SimFabric>,
    ) -> (Network, Vec<Endpoint>) {
        let faults = config.fault_plan.clone().map(FaultState::new);
        let net = Network {
            fabric: Arc::new(Fabric {
                config,
                senders: RwLock::new(Vec::new()),
                stats: Mutex::new(NetStats::default()),
                faults: Mutex::new(faults),
                recorder,
                sim,
            }),
        };
        let eps = (0..n).map(|_| net.add_endpoint()).collect();
        (net, eps)
    }

    /// The fabric's observability recorder (disabled unless the fabric was
    /// built with [`Network::new_observed`]).
    pub fn recorder(&self) -> &Recorder {
        &self.fabric.recorder
    }

    /// The fabric's time source: wall time in threaded mode, the virtual
    /// clock in simulation mode. Every timer above the fabric (retransmit
    /// backoff, leases, heartbeats, drain deadlines) should read this.
    pub fn clock(&self) -> FabricClock {
        match &self.fabric.sim {
            None => FabricClock::wall(),
            Some(sim) => FabricClock::sim(sim.clone()),
        }
    }

    /// The simulation scheduler, if this fabric runs in sim mode.
    pub fn sim(&self) -> Option<&SimFabric> {
        self.fabric.sim.as_ref()
    }

    /// Register a new endpoint at runtime — this is how a machine "joins"
    /// the adaptive cluster (paper §1: jobs dispatched to newly added
    /// machines). Returns the endpoint with the next free rank.
    pub fn add_endpoint(&self) -> Endpoint {
        let (tx, rx) = unbounded();
        let mut senders = self.fabric.senders.write();
        let rank = senders.len() as u32;
        senders.push(tx);
        Endpoint {
            rank,
            rx,
            net: self.clone(),
        }
    }

    /// Number of registered endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.fabric.senders.read().len()
    }

    /// Snapshot of traffic statistics.
    pub fn stats(&self) -> NetStats {
        self.fabric.stats.lock().clone()
    }

    /// Reset traffic statistics (between benchmark phases).
    pub fn reset_stats(&self) {
        *self.fabric.stats.lock() = NetStats::default();
    }

    /// Sever the link between ranks `a` and `b` in both directions: every
    /// message between them is silently dropped (and counted) until
    /// [`Network::heal`]. Takes effect even without a configured
    /// [`FaultPlan`].
    pub fn partition(&self, a: u32, b: u32) {
        let mut faults = self.fabric.faults.lock();
        faults
            .get_or_insert_with(|| FaultState::new(FaultPlan::default()))
            .partition(a, b);
    }

    /// Restore every severed link.
    pub fn heal(&self) {
        if let Some(f) = self.fabric.faults.lock().as_mut() {
            f.heal();
        }
    }

    /// Record a retransmission performed by a reliability layer above the
    /// fabric (the message itself is sent normally and counted as traffic).
    pub fn note_retransmit(&self) {
        self.fabric.stats.lock().retransmitted += 1;
        self.fabric.recorder.count("net.retransmits", 1);
    }

    /// Send a message on behalf of rank `src` — for auxiliary threads
    /// (e.g. a heartbeat pump) that speak for a node without owning its
    /// [`Endpoint`]. Subject to the same fault injection as normal sends.
    pub fn send_as(
        &self,
        src: u32,
        dst: u32,
        kind: MsgKind,
        payload: Bytes,
    ) -> Result<(), NetError> {
        self.send(
            Message {
                src,
                dst,
                kind,
                payload,
                trace: None,
            },
            OpCtx::default(),
        )
    }

    fn send(&self, mut msg: Message, op: OpCtx) -> Result<(), NetError> {
        let wire = self.fabric.config.transfer_time(msg.payload.len());
        let tx = {
            let senders = self.fabric.senders.read();
            senders
                .get(msg.dst as usize)
                .ok_or(NetError::UnknownDestination(msg.dst))?
                .clone()
        };
        // The send attempt is always charged to the cost model — a dropped
        // packet still crossed the sender's NIC. The recorder is fed at the
        // same point, so its totals always agree with NetStats.
        self.fabric
            .stats
            .lock()
            .record(msg.kind, msg.dst, msg.payload.len(), wire);
        let rec = &self.fabric.recorder;
        rec.net_send(
            msg.kind.label(),
            msg.dst,
            msg.payload.len() as u64,
            msg.kind.carries_updates(),
        );
        // Tick the sender's hybrid logical clock and stamp the causal
        // trace context into the envelope. With a disabled recorder this
        // is one branch and the envelope stays trace-free (`None`), so
        // the wire format is byte-identical to an unobserved fabric.
        if let Some((hlc, flow)) = rec.msg_send_event(
            msg.src,
            msg.payload.len() as u64,
            msg.dst,
            msg.kind.label(),
            op,
        ) {
            msg.trace = Some(TraceCtx { flow, hlc, op });
        }
        let dst = msg.dst;
        let src_rank = msg.src;
        let mut extra_delay = Duration::ZERO;
        let to_deliver = {
            let mut faults = self.fabric.faults.lock();
            match faults.as_mut() {
                None => vec![msg],
                Some(f) => {
                    let src = msg.src;
                    let label = msg.kind.label();
                    let applied = f.apply(msg);
                    let mut stats = self.fabric.stats.lock();
                    stats.dropped += applied.dropped;
                    stats.duplicated += applied.duplicated;
                    stats.reordered += applied.reordered;
                    stats.simulated_wire_time += applied.extra_delay;
                    drop(stats);
                    if applied.dropped > 0 {
                        rec.instant(
                            src,
                            EventKind::FaultDrop,
                            applied.dropped,
                            dst as u64,
                            label,
                        );
                    }
                    if applied.duplicated > 0 {
                        rec.instant(
                            src,
                            EventKind::FaultDup,
                            applied.duplicated,
                            dst as u64,
                            label,
                        );
                    }
                    if applied.reordered > 0 {
                        rec.instant(
                            src,
                            EventKind::FaultReorder,
                            applied.reordered,
                            dst as u64,
                            label,
                        );
                    }
                    extra_delay = applied.extra_delay;
                    applied.deliver
                }
            }
        };
        if let Some(sim) = &self.fabric.sim {
            // Delivery is an event at `now + wire (+ jitter)` on the
            // virtual clock; nothing sleeps and fault jitter becomes real
            // (virtual) latency instead of pure accounting.
            if sim.schedule_delivery(src_rank, dst, wire, extra_delay, &tx, to_deliver) {
                return Ok(());
            }
            return Err(NetError::Disconnected(dst));
        }
        let sleep_for = if self.fabric.config.real_delay {
            wire + extra_delay
        } else {
            Duration::ZERO
        };
        if sleep_for > Duration::ZERO {
            std::thread::sleep(sleep_for);
        }
        for out in to_deliver {
            tx.send(out).map_err(|_| NetError::Disconnected(dst))?;
        }
        Ok(())
    }
}

/// A node's connection to the fabric. Receives are exclusive to the owner;
/// sends go through the shared fabric.
pub struct Endpoint {
    rank: u32,
    rx: Receiver<Message>,
    net: Network,
}

impl Endpoint {
    /// This endpoint's rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Handle to the fabric (for stats or adding endpoints).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Send `payload` to `dst`.
    pub fn send(&self, dst: u32, kind: MsgKind, payload: Bytes) -> Result<(), NetError> {
        self.send_op(dst, kind, payload, OpCtx::default())
    }

    /// Send `payload` to `dst`, attributing the message (and its trace
    /// context) to sync operation `op`.
    pub fn send_op(
        &self,
        dst: u32,
        kind: MsgKind,
        payload: Bytes,
        op: OpCtx,
    ) -> Result<(), NetError> {
        self.net.send(
            Message {
                src: self.rank,
                dst,
                kind,
                payload,
                trace: None,
            },
            op,
        )
    }

    /// Record a delivered message in the fabric's observability stream,
    /// merging the carried HLC stamp into this rank's clock so the
    /// receive is causally after the send even under fault injection.
    fn note_recv(&self, m: &Message) {
        let rec = &self.net.fabric.recorder;
        match &m.trace {
            Some(t) => rec.msg_recv_event(
                self.rank,
                m.payload.len() as u64,
                m.src,
                m.kind.label(),
                t.hlc,
                t.flow,
                t.op,
            ),
            None => rec.instant(
                self.rank,
                EventKind::MsgRecv,
                m.payload.len() as u64,
                m.src as u64,
                m.kind.label(),
            ),
        }
    }

    /// This endpoint's fabric clock (wall or virtual).
    pub fn clock(&self) -> FabricClock {
        self.net.clock()
    }

    /// Blocking receive.
    pub fn recv(&self) -> Result<Message, NetError> {
        if let Some(sim) = &self.net.fabric.sim {
            loop {
                match self.rx.try_recv() {
                    Ok(m) => {
                        self.note_recv(&m);
                        return Ok(m);
                    }
                    Err(TryRecvError::Disconnected) => return Err(NetError::ChannelClosed),
                    Err(TryRecvError::Empty) => {}
                }
                match sim.block_recv(self.rank, None) {
                    Wake::Delivery => continue,
                    Wake::Timeout => unreachable!("no deadline on a plain recv"),
                    Wake::Closed => return Err(NetError::ChannelClosed),
                }
            }
        }
        let m = self.rx.recv().map_err(|_| NetError::ChannelClosed)?;
        self.note_recv(&m);
        Ok(m)
    }

    /// Blocking receive with timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Message, NetError> {
        if let Some(sim) = &self.net.fabric.sim {
            let deadline = sim.now_us().saturating_add(timeout.as_micros() as u64);
            loop {
                match self.rx.try_recv() {
                    Ok(m) => {
                        self.note_recv(&m);
                        return Ok(m);
                    }
                    Err(TryRecvError::Disconnected) => return Err(NetError::ChannelClosed),
                    Err(TryRecvError::Empty) => {}
                }
                let left = deadline.saturating_sub(sim.now_us());
                if left == 0 {
                    return Err(NetError::Timeout);
                }
                match sim.block_recv(self.rank, Some(Duration::from_micros(left))) {
                    Wake::Delivery => continue,
                    Wake::Timeout => return Err(NetError::Timeout),
                    Wake::Closed => return Err(NetError::ChannelClosed),
                }
            }
        }
        let m = self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => NetError::Timeout,
            RecvTimeoutError::Disconnected => NetError::ChannelClosed,
        })?;
        self.note_recv(&m);
        Ok(m)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Message, NetError> {
        let m = self.rx.try_recv().map_err(|e| match e {
            TryRecvError::Empty => NetError::Empty,
            TryRecvError::Disconnected => NetError::ChannelClosed,
        })?;
        self.note_recv(&m);
        Ok(m)
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        // In sim mode a dropped endpoint is a crashed node: in-flight
        // deliveries evaporate and later sends to it fail with
        // `Disconnected`, matching the threaded fabric's closed channel.
        if let Some(sim) = &self.net.fabric.sim {
            sim.note_endpoint_dropped(self.rank);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    #[test]
    fn basic_send_receive() {
        let (_net, eps) = Network::new(2, NetConfig::instant());
        eps[0]
            .send(1, MsgKind::Other, Bytes::from_static(b"hello"))
            .unwrap();
        let m = eps[1].recv().unwrap();
        assert_eq!(m.src, 0);
        assert_eq!(m.dst, 1);
        assert_eq!(&m.payload[..], b"hello");
    }

    #[test]
    fn unknown_destination() {
        let (_net, eps) = Network::new(1, NetConfig::instant());
        assert_eq!(
            eps[0].send(9, MsgKind::Other, Bytes::new()),
            Err(NetError::UnknownDestination(9))
        );
    }

    #[test]
    fn self_send_allowed() {
        let (_net, eps) = Network::new(1, NetConfig::instant());
        eps[0].send(0, MsgKind::Other, Bytes::new()).unwrap();
        assert!(eps[0].try_recv().is_ok());
    }

    #[test]
    fn try_recv_empty() {
        let (_net, eps) = Network::new(1, NetConfig::instant());
        assert_eq!(eps[0].try_recv().unwrap_err(), NetError::Empty);
    }

    #[test]
    fn timeout_fires() {
        let (_net, eps) = Network::new(1, NetConfig::instant());
        assert_eq!(
            eps[0].recv_timeout(Duration::from_millis(5)).unwrap_err(),
            NetError::Timeout
        );
    }

    #[test]
    fn dynamic_join_gets_next_rank() {
        let (net, eps) = Network::new(2, NetConfig::instant());
        let newcomer = net.add_endpoint();
        assert_eq!(newcomer.rank(), 2);
        assert_eq!(net.endpoint_count(), 3);
        eps[0]
            .send(2, MsgKind::Other, Bytes::from_static(b"welcome"))
            .unwrap();
        assert_eq!(&newcomer.recv().unwrap().payload[..], b"welcome");
    }

    #[test]
    fn stats_track_traffic() {
        let (net, eps) = Network::new(2, NetConfig::default());
        eps[0]
            .send(1, MsgKind::LockRequest, Bytes::from_static(&[0; 100]))
            .unwrap();
        eps[1]
            .send(0, MsgKind::LockGrant, Bytes::from_static(&[0; 5000]))
            .unwrap();
        let s = net.stats();
        assert_eq!(s.total_messages(), 2);
        assert_eq!(s.total_bytes(), 5100);
        assert!(s.simulated_wire_time > Duration::ZERO);
        net.reset_stats();
        assert_eq!(net.stats().total_messages(), 0);
    }

    #[test]
    fn cross_thread_messaging() {
        let (_net, mut eps) = Network::new(2, NetConfig::instant());
        let ep1 = eps.pop().unwrap();
        let ep0 = eps.pop().unwrap();
        let t = std::thread::spawn(move || {
            let m = ep1.recv().unwrap();
            ep1.send(m.src, MsgKind::Other, m.payload).unwrap();
        });
        ep0.send(1, MsgKind::Other, Bytes::from_static(b"ping"))
            .unwrap();
        let echo = ep0.recv().unwrap();
        assert_eq!(&echo.payload[..], b"ping");
        t.join().unwrap();
    }

    #[test]
    fn messages_preserve_fifo_per_pair() {
        let (_net, eps) = Network::new(2, NetConfig::instant());
        for i in 0..100u8 {
            eps[0]
                .send(1, MsgKind::Other, Bytes::copy_from_slice(&[i]))
                .unwrap();
        }
        for i in 0..100u8 {
            assert_eq!(eps[1].recv().unwrap().payload[0], i);
        }
    }

    #[test]
    fn partition_drops_and_heal_restores() {
        let (net, eps) = Network::new(3, NetConfig::instant());
        net.partition(0, 1);
        eps[0].send(1, MsgKind::Other, Bytes::new()).unwrap();
        eps[1].send(0, MsgKind::Other, Bytes::new()).unwrap();
        // Unrelated link unaffected.
        eps[0]
            .send(2, MsgKind::Other, Bytes::from_static(b"ok"))
            .unwrap();
        assert_eq!(&eps[2].recv().unwrap().payload[..], b"ok");
        assert_eq!(eps[1].try_recv().unwrap_err(), NetError::Empty);
        assert_eq!(eps[0].try_recv().unwrap_err(), NetError::Empty);
        assert_eq!(net.stats().dropped, 2);
        net.heal();
        eps[0].send(1, MsgKind::Other, Bytes::new()).unwrap();
        assert!(eps[1].recv().is_ok());
    }

    #[test]
    fn fault_plan_drop_is_counted() {
        let plan = FaultPlan::seeded(11).drop(1.0);
        let (net, eps) = Network::new(2, NetConfig::instant().with_faults(plan));
        for _ in 0..10 {
            eps[0].send(1, MsgKind::Other, Bytes::new()).unwrap();
        }
        assert_eq!(eps[1].try_recv().unwrap_err(), NetError::Empty);
        let s = net.stats();
        assert_eq!(s.dropped, 10);
        assert_eq!(s.total_messages(), 10); // attempts still accounted
    }

    #[test]
    fn fault_plan_duplicates_are_delivered_and_counted() {
        let plan = FaultPlan::seeded(11).duplicate(1.0);
        let (net, eps) = Network::new(2, NetConfig::instant().with_faults(plan));
        eps[0]
            .send(1, MsgKind::Other, Bytes::from_static(b"x"))
            .unwrap();
        assert!(eps[1].recv().is_ok());
        assert!(eps[1].recv().is_ok());
        assert_eq!(eps[1].try_recv().unwrap_err(), NetError::Empty);
        assert_eq!(net.stats().duplicated, 1);
    }

    #[test]
    fn fault_plan_reorders_adjacent_pairs() {
        let plan = FaultPlan::seeded(11).reorder(1.0);
        let (net, eps) = Network::new(2, NetConfig::instant().with_faults(plan));
        for i in 0..4u8 {
            eps[0]
                .send(1, MsgKind::Other, Bytes::copy_from_slice(&[i]))
                .unwrap();
        }
        let got: Vec<u8> = (0..4).map(|_| eps[1].recv().unwrap().payload[0]).collect();
        assert_eq!(got, vec![1, 0, 3, 2]);
        assert_eq!(net.stats().reordered, 2);
    }

    #[test]
    fn retransmit_counter_is_exposed() {
        let (net, _eps) = Network::new(1, NetConfig::instant());
        net.note_retransmit();
        net.note_retransmit();
        assert_eq!(net.stats().retransmitted, 2);
    }

    #[test]
    fn observed_fabric_agrees_with_netstats() {
        let rec = Recorder::enabled();
        let (net, eps) = Network::new_observed(2, NetConfig::instant(), rec.clone());
        eps[0]
            .send(1, MsgKind::LockRequest, Bytes::from_static(&[0; 10]))
            .unwrap();
        eps[1]
            .send(0, MsgKind::LockGrant, Bytes::from_static(&[0; 100]))
            .unwrap();
        eps[1].recv().unwrap();
        let snap = rec.snapshot().unwrap();
        let s = net.stats();
        assert_eq!(snap.net_total_msgs, s.total_messages());
        assert_eq!(snap.net_total_bytes, s.total_bytes());
        assert_eq!(snap.net_update_bytes, s.update_bytes());
        assert_eq!(snap.net_control_bytes, s.control_bytes());
        // Send and receive instants carry the kind label and peer rank.
        let evs = rec.events();
        assert!(evs
            .iter()
            .any(|e| e.kind == EventKind::MsgSend && e.label == "lock-req" && e.rank == 0));
        assert!(evs
            .iter()
            .any(|e| e.kind == EventKind::MsgRecv && e.label == "lock-req" && e.rank == 1));
    }

    #[test]
    fn disabled_recorder_leaves_envelope_untraced() {
        let (_net, eps) = Network::new(2, NetConfig::instant());
        eps[0]
            .send(1, MsgKind::LockRequest, Bytes::from_static(b"payload"))
            .unwrap();
        let m = eps[1].recv().unwrap();
        assert!(m.trace.is_none());
        assert_eq!(&m.payload[..], b"payload");
    }

    #[test]
    fn observed_sends_stamp_trace_context() {
        use hdsm_obs::OpKind;
        let rec = Recorder::enabled();
        let (_net, eps) = Network::new_observed(2, NetConfig::instant(), rec.clone());
        let op = OpCtx {
            kind: OpKind::Lock,
            id: 4,
            epoch: 1,
            origin: 0,
        };
        eps[0]
            .send_op(1, MsgKind::LockRequest, Bytes::from_static(b"x"), op)
            .unwrap();
        let m = eps[1].recv().unwrap();
        let t = m.trace.expect("observed send must carry trace");
        assert_ne!(t.flow, 0);
        assert_eq!(t.op, op);
        // The send and receive events share the flow id and carry the op;
        // the receive's merged stamp is causally after the send's.
        let evs = rec.events();
        let send = evs.iter().find(|e| e.kind == EventKind::MsgSend).unwrap();
        let recv = evs.iter().find(|e| e.kind == EventKind::MsgRecv).unwrap();
        assert_eq!(send.flow, t.flow);
        assert_eq!(recv.flow, t.flow);
        assert_eq!(send.op, op);
        assert_eq!(recv.op, op);
        assert!(send.hlc < recv.hlc, "{} !< {}", send.hlc, recv.hlc);
    }

    #[test]
    fn reordered_delivery_keeps_causal_send_recv_order() {
        let rec = Recorder::enabled();
        let plan = FaultPlan::seeded(11).reorder(1.0).duplicate(0.5);
        let (_net, eps) =
            Network::new_observed(2, NetConfig::instant().with_faults(plan), rec.clone());
        for _ in 0..8 {
            eps[0].send(1, MsgKind::Other, Bytes::new()).unwrap();
        }
        while eps[1].try_recv().is_ok() {}
        hdsm_obs::check_happens_before(&rec.events()).unwrap();
    }

    #[test]
    fn fault_injection_emits_events_when_observed() {
        let rec = Recorder::enabled();
        let plan = FaultPlan::seeded(11).drop(1.0);
        let (_net, eps) =
            Network::new_observed(2, NetConfig::instant().with_faults(plan), rec.clone());
        eps[0].send(1, MsgKind::Other, Bytes::new()).unwrap();
        assert!(rec.events().iter().any(|e| e.kind == EventKind::FaultDrop));
    }
}
