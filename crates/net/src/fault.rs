//! Deterministic fault injection for the simulated fabric.
//!
//! A [`FaultPlan`] describes, per directed link, the probability that a
//! message is dropped, duplicated, or reordered, plus a bound on random
//! extra delay. The plan is applied inside `Network::send`, *after* cost
//! accounting, so every injected fault is visible in [`crate::NetStats`].
//! All randomness comes from a seeded SplitMix64 stream: the same plan,
//! seed and traffic sequence always produce the same faults, which keeps
//! chaos tests reproducible.
//!
//! Partitions are dynamic rather than part of the plan: `Network::partition`
//! severs a pair of ranks both ways (sends are silently dropped, like
//! pulled cables), and `Network::heal` restores all links.

use std::collections::{HashMap, HashSet};
use std::time::Duration;

use crate::message::Message;

/// Fault probabilities and delay bound for one directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability a message is silently dropped.
    pub drop_p: f64,
    /// Probability a message is delivered twice.
    pub dup_p: f64,
    /// Probability a message is held back and delivered after the next
    /// message on the same link (pairwise reordering).
    pub reorder_p: f64,
    /// Extra wire delay drawn uniformly from `[0, delay_jitter)`.
    pub delay_jitter: Duration,
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults {
            drop_p: 0.0,
            dup_p: 0.0,
            reorder_p: 0.0,
            delay_jitter: Duration::ZERO,
        }
    }
}

impl LinkFaults {
    /// True when this link injects nothing.
    pub fn is_clean(&self) -> bool {
        self.drop_p == 0.0
            && self.dup_p == 0.0
            && self.reorder_p == 0.0
            && self.delay_jitter == Duration::ZERO
    }
}

/// A deterministic, seeded description of which faults the fabric injects.
///
/// `default` applies to every directed link unless overridden via
/// [`FaultPlan::link`]. Build with the fluent setters:
///
/// ```
/// use hdsm_net::fault::FaultPlan;
/// let plan = FaultPlan::seeded(42).drop(0.05).duplicate(0.05).reorder(0.05);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// RNG seed; identical seeds replay identical fault sequences.
    pub seed: u64,
    /// Faults applied to links without an override.
    pub default: LinkFaults,
    /// Per-link `(src, dst)` overrides.
    pub links: HashMap<(u32, u32), LinkFaults>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Set the default drop probability.
    pub fn drop(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop probability out of range");
        self.default.drop_p = p;
        self
    }

    /// Set the default duplication probability.
    pub fn duplicate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "dup probability out of range");
        self.default.dup_p = p;
        self
    }

    /// Set the default reorder probability.
    pub fn reorder(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "reorder probability out of range");
        self.default.reorder_p = p;
        self
    }

    /// Set the default delay jitter bound.
    pub fn jitter(mut self, bound: Duration) -> Self {
        self.default.delay_jitter = bound;
        self
    }

    /// Override faults for the directed link `src -> dst`.
    pub fn link(mut self, src: u32, dst: u32, faults: LinkFaults) -> Self {
        self.links.insert((src, dst), faults);
        self
    }

    /// Faults in effect for `src -> dst`.
    pub fn faults_for(&self, src: u32, dst: u32) -> LinkFaults {
        self.links.get(&(src, dst)).copied().unwrap_or(self.default)
    }

    /// True when no link ever injects anything (partitions may still be
    /// imposed at runtime).
    pub fn is_clean(&self) -> bool {
        self.default.is_clean() && self.links.values().all(LinkFaults::is_clean)
    }
}

/// What `FaultState::apply` decided for one message.
#[derive(Debug, Default)]
pub(crate) struct Applied {
    /// Copies to actually enqueue (0 = dropped, 2+ = duplicated and/or a
    /// released held-back message).
    pub deliver: Vec<Message>,
    /// Dropped (including partition drops).
    pub dropped: u64,
    /// Extra copies injected.
    pub duplicated: u64,
    /// Messages held back for pairwise reordering.
    pub reordered: u64,
    /// Random extra delay to account (and sleep, under `real_delay`).
    pub extra_delay: Duration,
}

/// Mutable fault-injection state owned by the fabric.
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: SplitMix64,
    /// Severed rank pairs (stored with `a <= b`; severs both directions).
    partitions: HashSet<(u32, u32)>,
    /// At most one held-back message per directed link.
    holdback: HashMap<(u32, u32), Message>,
}

impl FaultState {
    pub fn new(plan: FaultPlan) -> FaultState {
        let rng = SplitMix64::new(plan.seed);
        FaultState {
            plan,
            rng,
            partitions: HashSet::new(),
            holdback: HashMap::new(),
        }
    }

    pub fn partition(&mut self, a: u32, b: u32) {
        self.partitions.insert((a.min(b), a.max(b)));
    }

    pub fn heal(&mut self) {
        self.partitions.clear();
    }

    pub fn is_partitioned(&self, a: u32, b: u32) -> bool {
        self.partitions.contains(&(a.min(b), a.max(b)))
    }

    /// Run one message through the fault pipeline.
    pub fn apply(&mut self, msg: Message) -> Applied {
        let mut out = Applied::default();
        if self.is_partitioned(msg.src, msg.dst) {
            out.dropped = 1;
            return out;
        }
        let link = (msg.src, msg.dst);
        let faults = self.plan.faults_for(msg.src, msg.dst);
        if faults.delay_jitter > Duration::ZERO {
            out.extra_delay =
                Duration::from_nanos(self.rng.below(faults.delay_jitter.as_nanos().max(1) as u64));
        }
        if self.rng.chance(faults.drop_p) {
            out.dropped = 1;
            // A drop still releases any held-back message: the link saw
            // traffic, and holding forever would turn one reorder into a
            // permanent loss of *two* messages.
            if let Some(held) = self.holdback.remove(&link) {
                out.deliver.push(held);
            }
            return out;
        }
        if self.rng.chance(faults.dup_p) {
            out.duplicated = 1;
            out.deliver.push(msg.clone());
        }
        if self.holdback.contains_key(&link) {
            // Deliver this message first, then the held one — the swap is
            // the reorder.
            out.deliver.push(msg);
            out.deliver.push(self.holdback.remove(&link).unwrap());
        } else if self.rng.chance(faults.reorder_p) {
            out.reordered = 1;
            self.holdback.insert(link, msg);
        } else {
            out.deliver.push(msg);
        }
        out
    }

    /// Release every held-back message (used when the fabric would
    /// otherwise strand them, e.g. on stats reset in tests).
    #[allow(dead_code)]
    pub fn flush(&mut self) -> Vec<Message> {
        self.holdback.drain().map(|(_, m)| m).collect()
    }
}

/// SplitMix64: tiny deterministic generator for fault decisions.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MsgKind;
    use bytes::Bytes;

    fn msg(src: u32, dst: u32, tag: u8) -> Message {
        Message {
            src,
            dst,
            kind: MsgKind::Other,
            payload: Bytes::copy_from_slice(&[tag]),
            trace: None,
        }
    }

    #[test]
    fn clean_plan_passes_everything_through() {
        let mut st = FaultState::new(FaultPlan::seeded(1));
        for i in 0..50 {
            let a = st.apply(msg(0, 1, i));
            assert_eq!(a.deliver.len(), 1);
            assert_eq!(a.dropped + a.duplicated + a.reordered, 0);
        }
    }

    #[test]
    fn partition_drops_both_directions_until_heal() {
        let mut st = FaultState::new(FaultPlan::seeded(1));
        st.partition(2, 0);
        assert_eq!(st.apply(msg(0, 2, 0)).dropped, 1);
        assert_eq!(st.apply(msg(2, 0, 0)).dropped, 1);
        assert_eq!(st.apply(msg(0, 1, 0)).deliver.len(), 1);
        st.heal();
        assert_eq!(st.apply(msg(0, 2, 0)).deliver.len(), 1);
    }

    #[test]
    fn faults_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let plan = FaultPlan::seeded(seed)
                .drop(0.3)
                .duplicate(0.3)
                .reorder(0.3);
            let mut st = FaultState::new(plan);
            (0..200)
                .map(|i| st.apply(msg(0, 1, i as u8)).deliver.len())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn reorder_swaps_adjacent_messages() {
        // reorder_p = 1.0 holds every arriving message when the slot is
        // free, so the stream 0,1,2,3 delivers as 1,0,3,2.
        let plan = FaultPlan::seeded(1).reorder(1.0);
        let mut st = FaultState::new(plan);
        let mut delivered = Vec::new();
        for i in 0..4 {
            delivered.extend(st.apply(msg(0, 1, i)).deliver.iter().map(|m| m.payload[0]));
        }
        assert_eq!(delivered, vec![1, 0, 3, 2]);
    }

    #[test]
    fn duplication_delivers_twice() {
        let plan = FaultPlan::seeded(1).duplicate(1.0);
        let mut st = FaultState::new(plan);
        let a = st.apply(msg(0, 1, 9));
        assert_eq!(a.duplicated, 1);
        assert_eq!(a.deliver.len(), 2);
        assert!(a.deliver.iter().all(|m| m.payload[0] == 9));
    }

    #[test]
    fn drop_releases_held_message() {
        let plan = FaultPlan::seeded(1).reorder(1.0).drop(0.0);
        let mut st = FaultState::new(plan);
        assert!(st.apply(msg(0, 1, 0)).deliver.is_empty()); // held
                                                            // Force a drop by switching to an always-drop link override.
        let plan2 = FaultPlan::seeded(1).drop(1.0);
        let held = st.holdback.clone();
        let mut st2 = FaultState::new(plan2);
        st2.holdback = held;
        let a = st2.apply(msg(0, 1, 1));
        assert_eq!(a.dropped, 1);
        assert_eq!(a.deliver.len(), 1);
        assert_eq!(a.deliver[0].payload[0], 0);
    }

    #[test]
    fn per_link_overrides_beat_default() {
        let plan = FaultPlan::seeded(1)
            .drop(1.0)
            .link(0, 1, LinkFaults::default());
        let mut st = FaultState::new(plan);
        assert_eq!(st.apply(msg(0, 1, 0)).deliver.len(), 1); // overridden clean
        assert_eq!(st.apply(msg(1, 0, 0)).dropped, 1); // default drops
    }

    #[test]
    fn plan_cleanliness() {
        assert!(FaultPlan::seeded(3).is_clean());
        assert!(!FaultPlan::seeded(3).drop(0.1).is_clean());
        assert!(!FaultPlan::seeded(3)
            .link(
                0,
                1,
                LinkFaults {
                    dup_p: 0.5,
                    ..Default::default()
                }
            )
            .is_clean());
    }
}
