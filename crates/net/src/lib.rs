#![warn(missing_docs)]

//! Simulated cluster transport.
//!
//! The paper's nodes are separate machines joined by TCP sockets; ours are
//! threads joined by channels. The crucial property preserved is the
//! *byte boundary*: a [`Message`] payload is an opaque `Bytes` buffer — the
//! only things that cross between nodes are serialized bytes (in the
//! sender's native format) plus CGT-RMR tags, never shared Rust objects.
//!
//! The [`Network`] also keeps per-kind traffic statistics and a simple
//! latency/bandwidth cost model ([`NetConfig`]) used by the benchmark
//! harnesses to report simulated communication time alongside measured
//! computation time. By default no real sleeping happens — the model is
//! pure accounting — so unit tests stay fast.

//! Fault injection ([`fault::FaultPlan`]) makes the simulated fabric
//! deliberately imperfect — seeded, deterministic drops, duplicates,
//! reorders, delay jitter and runtime partitions — so the reliability
//! layer above it can be tested against real failure modes.

//! Simulation mode ([`sim::SimFabric`]) goes further: the whole fabric —
//! delivery, timeouts, leases, heartbeats — runs on a virtual clock under
//! a seeded discrete-event scheduler, so a cluster run is an exactly
//! reproducible function of `(workload, config, seed)`.

pub mod clock;
pub mod endpoint;
pub mod fault;
pub mod message;
pub mod sim;
pub mod stats;

pub use clock::{FabricClock, FabricInstant, Ticker};
pub use endpoint::{Endpoint, NetError, Network};
pub use fault::{FaultPlan, LinkFaults};
pub use message::{Message, MsgKind};
pub use sim::{ActorGuard, ActorId, FabricMode, SimFabric};
pub use stats::{DestTraffic, NetConfig, NetStats};
