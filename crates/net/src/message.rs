//! Message envelope.

use bytes::Bytes;
use hdsm_obs::{HlcStamp, OpCtx};

/// Protocol message kinds, used for routing within a node and for traffic
/// statistics bucketing. The DSD protocol (hdsm-core) maps its message
/// types onto these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum MsgKind {
    /// `MTh_lock` request (remote → home).
    LockRequest = 1,
    /// Lock grant carrying outstanding updates (home → remote).
    LockGrant = 2,
    /// `MTh_unlock` release carrying updates (remote → home).
    UnlockRequest = 3,
    /// Release acknowledgement (home → remote).
    UnlockAck = 4,
    /// Barrier entry carrying updates (remote → home).
    BarrierEnter = 5,
    /// Barrier release carrying merged updates (home → remote).
    BarrierRelease = 6,
    /// `MTh_join` sign-off (remote → home).
    Join = 7,
    /// Program shutdown (home → remote).
    Shutdown = 8,
    /// Thread state migration image (MigThread).
    Migration = 9,
    /// Migration acknowledgement / resume notification.
    MigrationAck = 10,
    /// `MTh_cond_wait` request (remote → home).
    CondWait = 11,
    /// `MTh_cond_signal` / broadcast (remote → home).
    CondSignal = 12,
    /// Cold-copy resynchronisation notice after migration (remote → home).
    Resync = 13,
    /// Generic acknowledgement for otherwise fire-and-forget requests
    /// (home → remote; part of the reliability layer).
    Ack = 14,
    /// Liveness heartbeat (remote → home).
    Heartbeat = 15,
    /// A participant was declared dead; the receiver's blocked operation
    /// cannot complete (home → remote).
    WorkerLost = 16,
    /// Release-time diff fan-out to a non-owning home shard
    /// (remote → shard; carries updates, acknowledged with `Ack`).
    UpdateFlush = 17,
    /// Acquire-time horizon pull from a non-owning home shard
    /// (remote → shard; replied to with `UpdateBatch`).
    UpdateFetch = 18,
    /// Outstanding updates for one shard's slice (shard → remote).
    UpdateBatch = 19,
    /// Primary → replica replication relay: one deduplicated client
    /// request forwarded verbatim for shadow replay.
    Replicate = 20,
    /// Replica → deposed primary: a new epoch rules this shard; stop
    /// answering clients (fencing).
    Depose = 21,
    /// Deposed primary → replica: fencing acknowledged.
    DeposeAck = 22,
    /// Fenced shard → client: your directory view is stale; re-resolve
    /// to the shard's current primary and retry under the new epoch.
    ViewChange = 23,
    /// Admin → primary: drain this shard and hand it to its replica.
    HandoffRequest = 24,
    /// Primary → replica: full shard state snapshot for installation.
    HandoffState = 25,
    /// Replica → primary: snapshot installed, new epoch live.
    HandoffInstalled = 26,
    /// Primary → admin: handoff complete, old shard retiring.
    HandoffDone = 27,
    /// Replica → primary liveness beat on the replication link.
    ReplicaBeat = 28,
    /// Admin → source shard: migrate one entry's home to another shard
    /// (per-entry-grain handoff, driven by the placement engine).
    EntryHandoff = 29,
    /// Source shard → target shard: the entry's current contents as an
    /// opaque snapshot, installed before ownership flips.
    EntryState = 30,
    /// Target shard → source shard: entry state installed, ownership live.
    EntryInstalled = 31,
    /// Source shard → admin: entry re-homing complete.
    EntryDone = 32,
    /// Shard → client: some flushed entries are no longer homed here;
    /// re-route them to their new owner and resend.
    EntryMoved = 33,
    /// Anything else (tests, applications).
    Other = 255,
}

impl MsgKind {
    /// All kinds (for stats iteration).
    pub const ALL: [MsgKind; 34] = [
        MsgKind::LockRequest,
        MsgKind::LockGrant,
        MsgKind::UnlockRequest,
        MsgKind::UnlockAck,
        MsgKind::BarrierEnter,
        MsgKind::BarrierRelease,
        MsgKind::Join,
        MsgKind::Shutdown,
        MsgKind::Migration,
        MsgKind::MigrationAck,
        MsgKind::CondWait,
        MsgKind::CondSignal,
        MsgKind::Resync,
        MsgKind::Ack,
        MsgKind::Heartbeat,
        MsgKind::WorkerLost,
        MsgKind::UpdateFlush,
        MsgKind::UpdateFetch,
        MsgKind::UpdateBatch,
        MsgKind::Replicate,
        MsgKind::Depose,
        MsgKind::DeposeAck,
        MsgKind::ViewChange,
        MsgKind::HandoffRequest,
        MsgKind::HandoffState,
        MsgKind::HandoffInstalled,
        MsgKind::HandoffDone,
        MsgKind::ReplicaBeat,
        MsgKind::EntryHandoff,
        MsgKind::EntryState,
        MsgKind::EntryInstalled,
        MsgKind::EntryDone,
        MsgKind::EntryMoved,
        MsgKind::Other,
    ];

    /// The kind whose discriminant is `raw`, if any — the inverse of
    /// `kind as u16` for frames that carry a nested kind (replication
    /// relays, reply-cache snapshots).
    pub fn from_u16(raw: u16) -> Option<MsgKind> {
        MsgKind::ALL.iter().copied().find(|k| *k as u16 == raw)
    }

    /// Short label for reports.
    pub const fn label(self) -> &'static str {
        match self {
            MsgKind::LockRequest => "lock-req",
            MsgKind::LockGrant => "lock-grant",
            MsgKind::UnlockRequest => "unlock-req",
            MsgKind::UnlockAck => "unlock-ack",
            MsgKind::BarrierEnter => "barrier-enter",
            MsgKind::BarrierRelease => "barrier-release",
            MsgKind::Join => "join",
            MsgKind::Shutdown => "shutdown",
            MsgKind::Migration => "migration",
            MsgKind::MigrationAck => "migration-ack",
            MsgKind::CondWait => "cond-wait",
            MsgKind::CondSignal => "cond-signal",
            MsgKind::Resync => "resync",
            MsgKind::Ack => "ack",
            MsgKind::Heartbeat => "heartbeat",
            MsgKind::WorkerLost => "worker-lost",
            MsgKind::UpdateFlush => "update-flush",
            MsgKind::UpdateFetch => "update-fetch",
            MsgKind::UpdateBatch => "update-batch",
            MsgKind::Replicate => "replicate",
            MsgKind::Depose => "depose",
            MsgKind::DeposeAck => "depose-ack",
            MsgKind::ViewChange => "view-change",
            MsgKind::HandoffRequest => "handoff-req",
            MsgKind::HandoffState => "handoff-state",
            MsgKind::HandoffInstalled => "handoff-installed",
            MsgKind::HandoffDone => "handoff-done",
            MsgKind::ReplicaBeat => "replica-beat",
            MsgKind::EntryHandoff => "entry-handoff",
            MsgKind::EntryState => "entry-state",
            MsgKind::EntryInstalled => "entry-installed",
            MsgKind::EntryDone => "entry-done",
            MsgKind::EntryMoved => "entry-moved",
            MsgKind::Other => "other",
        }
    }

    /// Does this kind's payload carry shared-data updates? Separates the
    /// paper's update traffic (diffed data moving at releases/acquires,
    /// Figure 8) from pure protocol control traffic.
    pub const fn carries_updates(self) -> bool {
        matches!(
            self,
            MsgKind::LockGrant
                | MsgKind::UnlockRequest
                | MsgKind::BarrierEnter
                | MsgKind::BarrierRelease
                | MsgKind::CondWait
                | MsgKind::Migration
                | MsgKind::UpdateFlush
                | MsgKind::UpdateBatch
        )
    }
}

/// Causal trace context riding on a message when observability is
/// enabled: the sender's hybrid-logical-clock stamp at send time, a
/// flow id binding this send to its receive event(s), and the sync
/// operation the message is doing work for. Stamped by the fabric send
/// path, merged into the receiver's clock on delivery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCtx {
    /// Flow id linking the send event to the receive event (unique per
    /// physical transmission, so retransmits and dups stay distinct).
    pub flow: u64,
    /// Sender's HLC stamp at send time.
    pub hlc: HlcStamp,
    /// The sync operation that caused this message.
    pub op: OpCtx,
}

/// A message in flight between two nodes.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sender rank.
    pub src: u32,
    /// Destination rank.
    pub dst: u32,
    /// Protocol kind.
    pub kind: MsgKind,
    /// Opaque serialized payload (sender-native format + tags).
    pub payload: Bytes,
    /// Causal trace context. `None` whenever the recorder is disabled —
    /// the envelope is then identical to the untraced wire format.
    pub trace: Option<TraceCtx>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in MsgKind::ALL {
            assert!(seen.insert(k.label()));
        }
    }

    #[test]
    fn discriminants_roundtrip_through_from_u16() {
        for k in MsgKind::ALL {
            assert_eq!(MsgKind::from_u16(k as u16), Some(k));
        }
        assert_eq!(MsgKind::from_u16(200), None);
    }

    #[test]
    fn update_kinds_are_the_data_movers() {
        assert!(MsgKind::LockGrant.carries_updates());
        assert!(MsgKind::BarrierEnter.carries_updates());
        assert!(MsgKind::UnlockRequest.carries_updates());
        assert!(!MsgKind::LockRequest.carries_updates());
        assert!(!MsgKind::Heartbeat.carries_updates());
        assert!(!MsgKind::Ack.carries_updates());
    }
}
