//! Deterministic discrete-event fabric: N logical ranks, one virtual clock.
//!
//! [`SimFabric`] replaces preemptive thread scheduling with cooperative
//! token passing: every rank (worker, home shard, heartbeat pump, control
//! script) registers as an *actor*, and exactly one actor runs at a time.
//! When the running actor blocks — on a receive, a receive timeout, or a
//! virtual sleep — it hands the token to a scheduler step that either picks
//! the next runnable actor or pops the earliest event off a seeded priority
//! queue, advancing the virtual clock to the event's timestamp. Sends never
//! block; they enqueue a `Deliver` event at `now + wire_time (+ fault
//! jitter)`. Compute costs zero virtual time.
//!
//! Because execution is fully serialized and every scheduling decision is a
//! function of `(seed, event sequence)`, a whole cluster run — including
//! fault-plan drops, retransmit backoff, lease expiry and replica
//! promotion — is a pure function of `(workload, config, seed)`: the same
//! seed replays the same interleaving byte for byte, and different seeds
//! explore different interleavings of same-timestamp events.
//!
//! Per-link FIFO is preserved (delivery times on one link are monotone in
//! send order), matching the threaded fabric's channel semantics; explicit
//! reorder faults still swap adjacent messages via the fault layer's
//! holdback queue, exactly as in threaded mode.
//!
//! If every actor is blocked with no timer pending and the event queue is
//! empty, the run has genuinely deadlocked: the fabric panics with a
//! per-actor diagnostic instead of hanging the test. If an actor panics
//! for any other reason, the remaining blocked actors are woken with
//! `ChannelClosed` so the thread scope can join and surface the original
//! panic.

use crate::message::Message;
use crossbeam::channel::Sender;
use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which substrate a cluster runs on: real threads with wall-clock timers
/// (the default, byte-identical to the pre-sim fabric) or the
/// deterministic discrete-event scheduler seeded with `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FabricMode {
    /// One OS thread per rank, wall-clock timers, preemptive scheduling.
    #[default]
    Threads,
    /// Cooperative deterministic simulation on a virtual clock.
    Sim {
        /// Scheduling seed: same seed ⇒ same interleaving, faults and
        /// wire bytes; different seeds explore different interleavings.
        seed: u64,
    },
}

/// Identifier of a registered sim actor (index into the registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActorId(usize);

/// Why a blocked actor was woken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// A message was delivered to the endpoint being waited on.
    Delivery,
    /// The wait's virtual deadline fired first.
    Timeout,
    /// The fabric is shutting down after an actor panicked; the caller
    /// should surface `ChannelClosed` and unwind.
    Closed,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Holds or is owed the token (the owning thread may not have reached
    /// its first yield point yet).
    Ready,
    Running,
    Blocked,
    Done,
}

struct Actor {
    name: String,
    phase: Phase,
    /// Bumped on every wake; a pending `Timer` event whose generation no
    /// longer matches is stale and ignored.
    wait_gen: u64,
    wake: Wake,
    /// Endpoint rank this actor is blocked receiving on, if any.
    waiting_ep: Option<u32>,
    cv: Arc<Condvar>,
}

enum EvKind {
    Deliver {
        dst: u32,
        tx: Sender<Message>,
        msg: Message,
    },
    Timer {
        actor: usize,
        gen: u64,
    },
}

struct Ev {
    at: u64,
    /// Seeded tie-break for same-timestamp events. One lane per link (or
    /// per timer owner), so per-link FIFO survives while cross-link
    /// ordering varies with the seed.
    lane: u64,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Ev) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Ev) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Ev) -> std::cmp::Ordering {
        (self.at, self.lane, self.seq).cmp(&(other.at, other.lane, other.seq))
    }
}

struct SimState {
    seed: u64,
    now_us: u64,
    seq: u64,
    picks: u64,
    queue: BinaryHeap<Reverse<Ev>>,
    actors: Vec<Actor>,
    running: Option<usize>,
    /// Earliest time the next delivery on a link may land (per-link FIFO).
    link_clear: HashMap<(u32, u32), u64>,
    /// Which actor is blocked receiving on which endpoint rank.
    ep_waiter: HashMap<u32, usize>,
    /// Endpoints whose receiver half has been dropped (crashed nodes).
    dead_eps: HashSet<u32>,
    /// An actor panicked; blocked actors drain with `Wake::Closed`.
    failed: bool,
}

/// Callback fired with the virtual time on deadlock detection.
type DeadlockHook = Box<dyn Fn(u64) + Send + Sync>;

struct SimCore {
    state: Mutex<SimState>,
    /// Fired (with the virtual time) when the detector finds a fresh
    /// deadlock, *before* the diagnostic panic. Runs while the state lock
    /// is held, so the hook must not read the fabric clock — the
    /// observability layer uses it to flush a flight-recorder bundle with
    /// the timestamp passed in.
    deadlock_hook: Mutex<Option<DeadlockHook>>,
}

impl SimCore {
    /// Lock the state, ignoring poisoning: the deadlock detector panics
    /// while holding this lock by design, and the draining actors must
    /// still be able to take it to unwind cleanly.
    fn lock(&self) -> MutexGuard<'_, SimState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

thread_local! {
    static CURRENT_ACTOR: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Handle to a deterministic simulation fabric. Cheap to clone; all clones
/// share one virtual timeline.
#[derive(Clone)]
pub struct SimFabric {
    core: Arc<SimCore>,
}

/// Binds the current thread to its registered actor for the thread's
/// lifetime; dropping it (normally or during a panic) retires the actor
/// and hands the token on.
pub struct ActorGuard {
    fabric: SimFabric,
    id: usize,
}

impl SimFabric {
    /// A fresh fabric whose scheduling decisions derive from `seed`.
    pub fn new(seed: u64) -> SimFabric {
        SimFabric {
            core: Arc::new(SimCore {
                state: Mutex::new(SimState {
                    seed,
                    now_us: 0,
                    seq: 0,
                    picks: 0,
                    queue: BinaryHeap::new(),
                    actors: Vec::new(),
                    running: None,
                    link_clear: HashMap::new(),
                    ep_waiter: HashMap::new(),
                    dead_eps: HashSet::new(),
                    failed: false,
                }),
                deadlock_hook: Mutex::new(None),
            }),
        }
    }

    /// Install the deadlock hook: called with the virtual time (µs) when
    /// the detector finds a fresh deadlock, just before the diagnostic
    /// panic. The hook runs with the scheduler's state lock held — it
    /// must not call back into the fabric (in particular not
    /// [`SimFabric::now_us`]).
    pub fn set_deadlock_hook(&self, hook: impl Fn(u64) + Send + Sync + 'static) {
        *self
            .core
            .deadlock_hook
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(Box::new(hook));
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.core.lock().now_us
    }

    /// Pre-register an actor. Call from the coordinating thread in a fixed
    /// order *before* spawning actor threads, so actor identity (and with
    /// it the seeded tie-breaking) is independent of OS spawn timing.
    pub fn add_actor(&self, name: &str) -> ActorId {
        let mut st = self.core.lock();
        st.actors.push(Actor {
            name: name.to_string(),
            phase: Phase::Ready,
            wait_gen: 0,
            wake: Wake::Delivery,
            waiting_ep: None,
            cv: Arc::new(Condvar::new()),
        });
        ActorId(st.actors.len() - 1)
    }

    /// Bind the calling thread to `id` and wait for the token. The first
    /// yield point after this call is where the actor's turn really starts.
    pub fn enter(&self, id: ActorId) -> ActorGuard {
        CURRENT_ACTOR.with(|c| {
            assert!(
                c.get().is_none(),
                "thread is already bound to sim actor {:?}",
                c.get()
            );
            c.set(Some(id.0));
        });
        let mut st = self.core.lock();
        let cv = st.actors[id.0].cv.clone();
        while st.running != Some(id.0) {
            st = cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.actors[id.0].phase = Phase::Running;
        drop(st);
        ActorGuard {
            fabric: self.clone(),
            id: id.0,
        }
    }

    /// Start scheduling: hand the token to the first seeded pick among the
    /// registered actors. Call once, after `add_actor`/thread spawning.
    pub fn begin(&self) {
        let mut st = self.core.lock();
        if st.running.is_none() {
            self.schedule(&mut st);
        }
    }

    /// Virtual sleep: the calling actor yields and is woken when the clock
    /// reaches `now + d`.
    pub fn sleep(&self, d: Duration) {
        let me = current_actor("sleep");
        let mut st = self.core.lock();
        if st.failed {
            return;
        }
        debug_assert_eq!(
            st.running,
            Some(me),
            "sleep from an actor without the token"
        );
        let gen = st.actors[me].wait_gen;
        let at = st.now_us.saturating_add(dur_us(d));
        self.push_timer(&mut st, me, gen, at);
        self.block_here(st, me, None);
    }

    /// Block until a message lands on endpoint `ep` or `timeout` elapses on
    /// the virtual clock. The caller re-polls its channel on `Delivery`.
    pub(crate) fn block_recv(&self, ep: u32, timeout: Option<Duration>) -> Wake {
        let me = current_actor("recv");
        let mut st = self.core.lock();
        if st.failed {
            return Wake::Closed;
        }
        debug_assert_eq!(st.running, Some(me), "recv from an actor without the token");
        if let Some(d) = timeout {
            let gen = st.actors[me].wait_gen;
            let at = st.now_us.saturating_add(dur_us(d));
            self.push_timer(&mut st, me, gen, at);
        }
        st.ep_waiter.insert(ep, me);
        self.block_here(st, me, Some(ep))
    }

    /// Schedule delivery of `msgs` (one fault-adjusted send) from `src` to
    /// `dst` after `wire + extra` of virtual time. Returns `false` if the
    /// destination endpoint has been dropped (the caller surfaces
    /// `Disconnected`, matching the threaded fabric's closed-channel send).
    pub(crate) fn schedule_delivery(
        &self,
        src: u32,
        dst: u32,
        wire: Duration,
        extra: Duration,
        tx: &Sender<Message>,
        msgs: Vec<Message>,
    ) -> bool {
        let mut st = self.core.lock();
        if st.dead_eps.contains(&dst) {
            return false;
        }
        let base = st
            .now_us
            .saturating_add(dur_us(wire))
            .saturating_add(dur_us(extra));
        let at = base.max(*st.link_clear.get(&(src, dst)).unwrap_or(&0));
        st.link_clear.insert((src, dst), at);
        let lane = splitmix64(st.seed ^ ((u64::from(src) << 32) | u64::from(dst)));
        for msg in msgs {
            let seq = st.seq;
            st.seq += 1;
            st.queue.push(Reverse(Ev {
                at,
                lane,
                seq,
                kind: EvKind::Deliver {
                    dst,
                    tx: tx.clone(),
                    msg,
                },
            }));
        }
        true
    }

    /// Mark an endpoint's receiver as gone (its owning node crashed or
    /// finished): future sends to it fail with `Disconnected` and pending
    /// deliveries evaporate in flight.
    pub(crate) fn note_endpoint_dropped(&self, rank: u32) {
        self.core.lock().dead_eps.insert(rank);
    }

    fn push_timer(&self, st: &mut SimState, actor: usize, gen: u64, at: u64) {
        let lane = splitmix64(st.seed ^ 0x7135_E00D ^ (actor as u64));
        let seq = st.seq;
        st.seq += 1;
        st.queue.push(Reverse(Ev {
            at,
            lane,
            seq,
            kind: EvKind::Timer { actor, gen },
        }));
    }

    /// Yield the token and wait to be woken. Must be entered with the state
    /// lock held and the calling actor running.
    fn block_here(&self, mut st: MutexGuard<'_, SimState>, me: usize, ep: Option<u32>) -> Wake {
        st.actors[me].phase = Phase::Blocked;
        st.actors[me].waiting_ep = ep;
        st.running = None;
        self.schedule(&mut st);
        let cv = st.actors[me].cv.clone();
        while st.running != Some(me) {
            st = cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.actors[me].phase = Phase::Running;
        st.actors[me].waiting_ep = None;
        st.actors[me].wake
    }

    /// One scheduler step: pick the next runnable actor, or fire events
    /// (advancing the virtual clock) until one becomes runnable. Runs with
    /// the state lock held and no actor running.
    fn schedule(&self, st: &mut SimState) {
        loop {
            let ready: Vec<usize> = st
                .actors
                .iter()
                .enumerate()
                .filter(|(_, a)| a.phase == Phase::Ready)
                .map(|(i, _)| i)
                .collect();
            if !ready.is_empty() {
                let pick = splitmix64(st.seed ^ st.now_us ^ st.picks.wrapping_mul(0x9E37)) as usize
                    % ready.len();
                st.picks += 1;
                let next = ready[pick];
                st.running = Some(next);
                st.actors[next].cv.notify_one();
                return;
            }
            let Some(Reverse(ev)) = st.queue.pop() else {
                // No runnable actor and no event left. If nobody is
                // blocked the fabric is quiescent (all actors done or not
                // yet started); otherwise this is a real distributed
                // deadlock — unless we are already unwinding a panic, in
                // which case the blocked actors drain gracefully with
                // `Wake::Closed` and the loop hands one of them the token.
                let blocked: Vec<usize> = st
                    .actors
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| a.phase == Phase::Blocked)
                    .map(|(i, _)| i)
                    .collect();
                if blocked.is_empty() {
                    return;
                }
                let fresh_deadlock = !st.failed;
                if fresh_deadlock {
                    st.failed = true;
                }
                let detail: Vec<String> = st
                    .actors
                    .iter()
                    .map(|a| {
                        let what = match (a.phase, a.waiting_ep) {
                            (Phase::Blocked, Some(ep)) => format!("blocked on recv(ep {ep})"),
                            (Phase::Blocked, None) => "blocked".to_string(),
                            (p, _) => format!("{p:?}").to_lowercase(),
                        };
                        format!("  {} — {what}", a.name)
                    })
                    .collect();
                // Wake the blocked actors first so the token can move (via
                // this loop, or via the panicking actor's guard drop) and
                // the thread scope can join instead of wedging.
                for a in blocked {
                    st.ep_waiter.retain(|_, w| *w != a);
                    self.wake(st, a, Wake::Closed);
                }
                if fresh_deadlock {
                    // Give the observability layer its last chance to
                    // flush a flight-recorder bundle before we panic. The
                    // state lock is held, so the timestamp is passed in
                    // rather than read back through the fabric.
                    let hook = self
                        .core
                        .deadlock_hook
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    if let Some(h) = hook.as_ref() {
                        h(st.now_us);
                    }
                    drop(hook);
                    panic!(
                        "sim fabric deadlock at t={}µs: every actor is blocked \
                         with no pending event\n{}",
                        st.now_us,
                        detail.join("\n")
                    );
                }
                continue;
            };
            st.now_us = st.now_us.max(ev.at);
            match ev.kind {
                EvKind::Deliver { dst, tx, msg } => {
                    if !st.dead_eps.contains(&dst) {
                        // A closed receiver mid-flight is a crash: the
                        // packet evaporates, like a wire cut in threaded
                        // mode after the send already succeeded.
                        let _ = tx.send(msg);
                        if let Some(&a) = st.ep_waiter.get(&dst) {
                            if st.actors[a].phase == Phase::Blocked {
                                st.ep_waiter.remove(&dst);
                                self.wake(st, a, Wake::Delivery);
                            }
                        }
                    }
                }
                EvKind::Timer { actor, gen } => {
                    if st.actors[actor].phase == Phase::Blocked && st.actors[actor].wait_gen == gen
                    {
                        if let Some(ep) = st.actors[actor].waiting_ep {
                            st.ep_waiter.remove(&ep);
                        }
                        self.wake(st, actor, Wake::Timeout);
                    }
                }
            }
        }
    }

    fn wake(&self, st: &mut SimState, actor: usize, wake: Wake) {
        st.actors[actor].phase = Phase::Ready;
        st.actors[actor].wait_gen += 1;
        st.actors[actor].wake = wake;
    }
}

fn dur_us(d: Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

fn current_actor(what: &str) -> usize {
    CURRENT_ACTOR
        .with(|c| c.get())
        .unwrap_or_else(|| panic!("sim fabric {what} from a thread that is not a registered actor"))
}

impl Drop for ActorGuard {
    fn drop(&mut self) {
        CURRENT_ACTOR.with(|c| c.set(None));
        let mut st = self.fabric.core.lock();
        st.actors[self.id].phase = Phase::Done;
        if std::thread::panicking() {
            st.failed = true;
        }
        // Reschedule if this actor held the token — or if nobody does,
        // which happens when a blocked actor panics out of the deadlock
        // detector: someone must hand the token to the drained peers.
        if st.running == Some(self.id) || st.running.is_none() {
            st.running = None;
            self.fabric.schedule(&mut st);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_sleep_orders_actors_by_deadline() {
        let sim = SimFabric::new(7);
        let a = sim.add_actor("late");
        let b = sim.add_actor("early");
        let order = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            let (sa, sb) = (sim.clone(), sim.clone());
            let (oa, ob) = (order.clone(), order.clone());
            s.spawn(move || {
                let _g = sa.enter(a);
                sa.sleep(Duration::from_millis(20));
                oa.lock().unwrap().push(("late", sa.now_us()));
            });
            s.spawn(move || {
                let _g = sb.enter(b);
                sb.sleep(Duration::from_millis(5));
                ob.lock().unwrap().push(("early", sb.now_us()));
            });
            sim.begin();
        });
        let got = order.lock().unwrap().clone();
        assert_eq!(got, vec![("early", 5_000), ("late", 20_000)]);
    }

    #[test]
    fn same_seed_same_interleaving_different_seed_may_differ() {
        // Ten actors all sleep to the same virtual instant; the wake order
        // at that instant is a pure function of the seed.
        let run = |seed: u64| -> Vec<u64> {
            let sim = SimFabric::new(seed);
            let ids: Vec<ActorId> = (0..10).map(|i| sim.add_actor(&format!("a{i}"))).collect();
            let order = Arc::new(Mutex::new(Vec::new()));
            std::thread::scope(|s| {
                for (i, id) in ids.into_iter().enumerate() {
                    let (sim, order) = (sim.clone(), order.clone());
                    s.spawn(move || {
                        let _g = sim.enter(id);
                        sim.sleep(Duration::from_millis(1));
                        order.lock().unwrap().push(i as u64);
                    });
                }
                sim.begin();
            });
            let got = order.lock().unwrap().clone();
            got
        };
        let a1 = run(42);
        let a2 = run(42);
        assert_eq!(a1, a2, "same seed must replay the same interleaving");
        let b = run(43);
        // Different seeds *may* coincide by chance on tiny examples, but
        // over 10! orderings they practically never do.
        assert_ne!(a1, b, "different seeds should explore different orders");
    }

    #[test]
    fn deadlock_panics_with_actor_diagnostics() {
        let sim = SimFabric::new(1);
        let a = sim.add_actor("stuck-worker");
        let sim2 = sim.clone();
        let handle = std::thread::spawn(move || {
            let _g = sim2.enter(a);
            // Block on an endpoint nobody will ever send to, with no
            // timeout: a genuine deadlock.
            sim2.block_recv(99, None)
        });
        sim.begin();
        let err = handle.join().expect_err("deadlocked actor must panic");
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("deadlock"), "got: {msg}");
        assert!(msg.contains("stuck-worker"), "got: {msg}");
        assert!(msg.contains("ep 99"), "got: {msg}");
    }

    #[test]
    fn panicking_actor_drains_blocked_peers_with_closed() {
        let sim = SimFabric::new(1);
        let a = sim.add_actor("waiter");
        let b = sim.add_actor("crasher");
        let woke = Arc::new(Mutex::new(None));
        std::thread::scope(|s| {
            let (sa, wa) = (sim.clone(), woke.clone());
            s.spawn(move || {
                let _g = sa.enter(a);
                let w = sa.block_recv(5, None);
                *wa.lock().unwrap() = Some(w);
            });
            let sb = sim.clone();
            let crashed = s.spawn(move || {
                let _g = sb.enter(b);
                panic!("boom");
            });
            sim.begin();
            assert!(crashed.join().is_err());
        });
        assert_eq!(*woke.lock().unwrap(), Some(Wake::Closed));
    }
}
