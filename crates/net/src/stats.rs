//! Traffic statistics and the communication cost model.

use crate::fault::FaultPlan;
use crate::message::MsgKind;
use std::collections::HashMap;
use std::time::Duration;

/// Communication cost model. All costs are *accounted*, not slept, unless
/// `real_delay` is set (useful in demos to make migration visible).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Fixed per-message latency.
    pub latency: Duration,
    /// Link bandwidth in bytes/second; `None` = infinite.
    pub bandwidth: Option<u64>,
    /// Fixed per-message framing overhead (headers, tags) in bytes, charged
    /// against bandwidth on every send in addition to the payload.
    pub header_overhead: usize,
    /// Whether to actually sleep for the modelled time when sending.
    pub real_delay: bool,
    /// Deterministic fault injection; `None` = a perfect fabric.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for NetConfig {
    fn default() -> Self {
        // Paper-era cluster interconnect: ~100 µs latency, 100 Mbit/s,
        // ~Ethernet+IP+TCP worth of framing per message.
        NetConfig {
            latency: Duration::from_micros(100),
            bandwidth: Some(12_500_000),
            header_overhead: 64,
            real_delay: false,
            fault_plan: None,
        }
    }
}

impl NetConfig {
    /// Cost model with zero latency, zero overhead and infinite bandwidth
    /// (unit tests).
    pub fn instant() -> NetConfig {
        NetConfig {
            latency: Duration::ZERO,
            bandwidth: None,
            header_overhead: 0,
            real_delay: false,
            fault_plan: None,
        }
    }

    /// Attach a fault plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> NetConfig {
        self.fault_plan = Some(plan);
        self
    }

    /// Modelled wire time for a message of `bytes` payload bytes (framing
    /// overhead included).
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        let on_wire = bytes + self.header_overhead;
        let bw = match self.bandwidth {
            Some(b) if b > 0 => Duration::from_secs_f64(on_wire as f64 / b as f64),
            _ => Duration::ZERO,
        };
        self.latency + bw
    }
}

/// Traffic bound for one destination endpoint — the per-shard (and
/// per-worker) attribution behind the sharded-home utilization report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DestTraffic {
    /// Messages addressed to this endpoint.
    pub msgs: u64,
    /// Payload bytes addressed to this endpoint.
    pub bytes: u64,
}

/// Per-kind traffic counters plus accumulated modelled wire time and
/// fault-injection/reliability counters. Equality is by value (map
/// ordering is irrelevant), which is what the simulation determinism
/// tests compare across same-seed runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages sent, by kind.
    pub messages: HashMap<MsgKind, u64>,
    /// Payload bytes sent, by kind.
    pub bytes: HashMap<MsgKind, u64>,
    /// Traffic by destination endpoint rank. With a sharded home this is
    /// what shows whether load actually spread across the shards.
    pub by_dest: HashMap<u32, DestTraffic>,
    /// Total modelled time on the wire.
    pub simulated_wire_time: Duration,
    /// Messages silently dropped by fault injection (incl. partitions).
    pub dropped: u64,
    /// Extra copies delivered by fault injection.
    pub duplicated: u64,
    /// Messages held back and delivered out of order.
    pub reordered: u64,
    /// Retransmissions performed by the reliability layer.
    pub retransmitted: u64,
}

impl NetStats {
    /// Record one sent message addressed to endpoint `dst`.
    pub fn record(&mut self, kind: MsgKind, dst: u32, bytes: usize, wire: Duration) {
        *self.messages.entry(kind).or_default() += 1;
        *self.bytes.entry(kind).or_default() += bytes as u64;
        let d = self.by_dest.entry(dst).or_default();
        d.msgs += 1;
        d.bytes += bytes as u64;
        self.simulated_wire_time += wire;
    }

    /// Traffic addressed to endpoint `dst` (zero when none recorded).
    pub fn dest_traffic(&self, dst: u32) -> DestTraffic {
        self.by_dest.get(&dst).copied().unwrap_or_default()
    }

    /// Total messages across kinds.
    pub fn total_messages(&self) -> u64 {
        self.messages.values().sum()
    }

    /// Total payload bytes across kinds.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.values().sum()
    }

    /// Payload bytes in update-carrying kinds (shared data on the move).
    pub fn update_bytes(&self) -> u64 {
        self.bytes
            .iter()
            .filter(|(k, _)| k.carries_updates())
            .map(|(_, b)| *b)
            .sum()
    }

    /// Payload bytes in control-only kinds.
    pub fn control_bytes(&self) -> u64 {
        self.total_bytes() - self.update_bytes()
    }

    /// Total faults injected (drops + duplicates + reorders).
    pub fn total_faults(&self) -> u64 {
        self.dropped + self.duplicated + self.reordered
    }

    /// Render a compact report table (one line per kind with traffic).
    pub fn report(&self) -> String {
        let mut out = String::from("kind              msgs       bytes\n");
        for k in MsgKind::ALL {
            let m = self.messages.get(&k).copied().unwrap_or(0);
            if m == 0 {
                continue;
            }
            let b = self.bytes.get(&k).copied().unwrap_or(0);
            out.push_str(&format!("{:<16} {:>6} {:>11}\n", k.label(), m, b));
        }
        out.push_str(&format!(
            "total            {:>6} {:>11}  (modelled wire time {:?})\n",
            self.total_messages(),
            self.total_bytes(),
            self.simulated_wire_time
        ));
        if self.total_faults() + self.retransmitted > 0 {
            out.push_str(&format!(
                "faults: dropped {} duplicated {} reordered {} retransmitted {}\n",
                self.dropped, self.duplicated, self.reordered, self.retransmitted
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_includes_latency_bandwidth_and_overhead() {
        let cfg = NetConfig {
            latency: Duration::from_micros(100),
            bandwidth: Some(1_000_000), // 1 MB/s
            header_overhead: 0,
            real_delay: false,
            fault_plan: None,
        };
        let t = cfg.transfer_time(500_000);
        assert_eq!(t, Duration::from_micros(100) + Duration::from_millis(500));

        // 40-byte headers at 1 MB/s add exactly 40 µs per message.
        let with_overhead = NetConfig {
            header_overhead: 40,
            ..cfg
        };
        assert_eq!(
            with_overhead.transfer_time(500_000),
            t + Duration::from_micros(40)
        );
        // The overhead is charged even on empty payloads.
        assert_eq!(
            with_overhead.transfer_time(0),
            Duration::from_micros(100) + Duration::from_micros(40)
        );
    }

    #[test]
    fn instant_config_is_free() {
        assert_eq!(NetConfig::instant().transfer_time(1 << 30), Duration::ZERO);
    }

    #[test]
    fn default_config_charges_header_overhead() {
        let cfg = NetConfig::default();
        assert!(cfg.transfer_time(0) > cfg.latency);
    }

    #[test]
    fn stats_accumulate_per_kind() {
        let mut s = NetStats::default();
        s.record(MsgKind::LockRequest, 0, 10, Duration::from_micros(1));
        s.record(MsgKind::LockRequest, 1, 20, Duration::from_micros(1));
        s.record(MsgKind::LockGrant, 1, 1000, Duration::from_micros(5));
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_bytes(), 1030);
        assert_eq!(s.messages[&MsgKind::LockRequest], 2);
        assert_eq!(s.dest_traffic(0).msgs, 1);
        assert_eq!(s.dest_traffic(1).bytes, 1020);
        assert_eq!(s.dest_traffic(7), DestTraffic::default());
        assert_eq!(s.simulated_wire_time, Duration::from_micros(7));
        let rep = s.report();
        assert!(rep.contains("lock-req"));
        assert!(rep.contains("lock-grant"));
        assert!(!rep.contains("barrier-enter"));
        // No fault line on a clean run.
        assert!(!rep.contains("faults:"));
        s.dropped = 2;
        s.retransmitted = 1;
        assert_eq!(s.total_faults(), 2);
        assert!(s.report().contains("dropped 2"));
    }
}
