//! Traffic statistics and the communication cost model.

use crate::message::MsgKind;
use std::collections::HashMap;
use std::time::Duration;

/// Communication cost model. All costs are *accounted*, not slept, unless
/// `real_delay` is set (useful in demos to make migration visible).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Fixed per-message latency.
    pub latency: Duration,
    /// Link bandwidth in bytes/second; `None` = infinite.
    pub bandwidth: Option<u64>,
    /// Whether to actually sleep for the modelled time when sending.
    pub real_delay: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        // Paper-era cluster interconnect: ~100 µs latency, 100 Mbit/s.
        NetConfig {
            latency: Duration::from_micros(100),
            bandwidth: Some(12_500_000),
            real_delay: false,
        }
    }
}

impl NetConfig {
    /// Cost model with zero latency and infinite bandwidth (unit tests).
    pub fn instant() -> NetConfig {
        NetConfig {
            latency: Duration::ZERO,
            bandwidth: None,
            real_delay: false,
        }
    }

    /// Modelled wire time for a message of `bytes` bytes.
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        let bw = match self.bandwidth {
            Some(b) if b > 0 => {
                Duration::from_secs_f64(bytes as f64 / b as f64)
            }
            _ => Duration::ZERO,
        };
        self.latency + bw
    }
}

/// Per-kind traffic counters plus accumulated modelled wire time.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Messages sent, by kind.
    pub messages: HashMap<MsgKind, u64>,
    /// Payload bytes sent, by kind.
    pub bytes: HashMap<MsgKind, u64>,
    /// Total modelled time on the wire.
    pub simulated_wire_time: Duration,
}

impl NetStats {
    /// Record one sent message.
    pub fn record(&mut self, kind: MsgKind, bytes: usize, wire: Duration) {
        *self.messages.entry(kind).or_default() += 1;
        *self.bytes.entry(kind).or_default() += bytes as u64;
        self.simulated_wire_time += wire;
    }

    /// Total messages across kinds.
    pub fn total_messages(&self) -> u64 {
        self.messages.values().sum()
    }

    /// Total payload bytes across kinds.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.values().sum()
    }

    /// Render a compact report table (one line per kind with traffic).
    pub fn report(&self) -> String {
        let mut out = String::from("kind              msgs       bytes\n");
        for k in MsgKind::ALL {
            let m = self.messages.get(&k).copied().unwrap_or(0);
            if m == 0 {
                continue;
            }
            let b = self.bytes.get(&k).copied().unwrap_or(0);
            out.push_str(&format!("{:<16} {:>6} {:>11}\n", k.label(), m, b));
        }
        out.push_str(&format!(
            "total            {:>6} {:>11}  (modelled wire time {:?})\n",
            self.total_messages(),
            self.total_bytes(),
            self.simulated_wire_time
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_includes_latency_and_bandwidth() {
        let cfg = NetConfig {
            latency: Duration::from_micros(100),
            bandwidth: Some(1_000_000), // 1 MB/s
            real_delay: false,
        };
        let t = cfg.transfer_time(500_000);
        assert_eq!(t, Duration::from_micros(100) + Duration::from_millis(500));
    }

    #[test]
    fn instant_config_is_free() {
        assert_eq!(NetConfig::instant().transfer_time(1 << 30), Duration::ZERO);
    }

    #[test]
    fn stats_accumulate_per_kind() {
        let mut s = NetStats::default();
        s.record(MsgKind::LockRequest, 10, Duration::from_micros(1));
        s.record(MsgKind::LockRequest, 20, Duration::from_micros(1));
        s.record(MsgKind::LockGrant, 1000, Duration::from_micros(5));
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_bytes(), 1030);
        assert_eq!(s.messages[&MsgKind::LockRequest], 2);
        assert_eq!(s.simulated_wire_time, Duration::from_micros(7));
        let rep = s.report();
        assert!(rep.contains("lock-req"));
        assert!(rep.contains("lock-grant"));
        assert!(!rep.contains("barrier-enter"));
    }
}
