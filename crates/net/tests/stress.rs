//! Concurrency stress for the transport: many senders, interleaved
//! receivers, dynamic joins — delivery must be complete, uncorrupted and
//! FIFO per sender/receiver pair.

use bytes::Bytes;
use hdsm_net::endpoint::Network;
use hdsm_net::message::MsgKind;
use hdsm_net::stats::NetConfig;
use std::collections::HashMap;

#[test]
fn many_to_one_delivery_is_complete_and_fifo_per_sender() {
    const SENDERS: usize = 8;
    const PER_SENDER: u32 = 500;
    let (_net, mut eps) = Network::new(SENDERS + 1, NetConfig::instant());
    let sink = eps.remove(0);
    std::thread::scope(|s| {
        for ep in eps.drain(..) {
            s.spawn(move || {
                for i in 0..PER_SENDER {
                    let mut payload = Vec::with_capacity(8);
                    payload.extend_from_slice(&ep.rank().to_be_bytes());
                    payload.extend_from_slice(&i.to_be_bytes());
                    ep.send(0, MsgKind::Other, Bytes::from(payload)).unwrap();
                }
            });
        }
        let mut last_seen: HashMap<u32, u32> = HashMap::new();
        let mut total = 0;
        while total < SENDERS as u32 * PER_SENDER {
            let m = sink.recv().unwrap();
            let src = u32::from_be_bytes(m.payload[0..4].try_into().unwrap());
            let seq = u32::from_be_bytes(m.payload[4..8].try_into().unwrap());
            assert_eq!(src, m.src, "payload/header mismatch");
            if let Some(prev) = last_seen.get(&src) {
                assert!(seq > *prev, "out of order from {src}: {seq} after {prev}");
            }
            last_seen.insert(src, seq);
            total += 1;
        }
        // Every sender delivered its full sequence.
        assert_eq!(last_seen.len(), SENDERS);
        for (_src, last) in last_seen {
            assert_eq!(last, PER_SENDER - 1);
        }
    });
}

#[test]
fn dynamic_joins_while_traffic_flows() {
    let (net, mut eps) = Network::new(1, NetConfig::instant());
    let hub = eps.remove(0);
    std::thread::scope(|s| {
        let net2 = net.clone();
        s.spawn(move || {
            // Nodes join one by one and announce themselves to the hub.
            for _ in 0..16 {
                let ep = net2.add_endpoint();
                ep.send(
                    0,
                    MsgKind::Other,
                    Bytes::copy_from_slice(&ep.rank().to_be_bytes()),
                )
                .unwrap();
            }
        });
        let mut joined = Vec::new();
        for _ in 0..16 {
            let m = hub.recv().unwrap();
            joined.push(u32::from_be_bytes(m.payload[..4].try_into().unwrap()));
        }
        joined.sort_unstable();
        assert_eq!(joined, (1..=16).collect::<Vec<u32>>());
    });
    assert_eq!(net.endpoint_count(), 17);
}

#[test]
fn stats_are_consistent_under_concurrency() {
    const SENDERS: usize = 4;
    const PER_SENDER: usize = 200;
    let (net, mut eps) = Network::new(SENDERS + 1, NetConfig::default());
    let sink = eps.remove(0);
    std::thread::scope(|s| {
        for ep in eps.drain(..) {
            s.spawn(move || {
                for i in 0..PER_SENDER {
                    ep.send(0, MsgKind::Other, Bytes::from(vec![0u8; i % 32]))
                        .unwrap();
                }
            });
        }
        for _ in 0..SENDERS * PER_SENDER {
            sink.recv().unwrap();
        }
    });
    let stats = net.stats();
    assert_eq!(stats.total_messages(), (SENDERS * PER_SENDER) as u64);
    let expect_bytes: u64 = (0..PER_SENDER).map(|i| (i % 32) as u64).sum::<u64>() * SENDERS as u64;
    assert_eq!(stats.total_bytes(), expect_bytes);
    assert!(stats.simulated_wire_time > std::time::Duration::ZERO);
}
