//! Black-box flight recorder: triggered diagnostic bundles.
//!
//! When something goes wrong — the stall watchdog fires, a worker is
//! lost, a lease expires, a shard changes view, the sim fabric detects a
//! deadlock, or an operator calls `ClusterCtl::dump` — the recorder
//! freezes a *bundle*: the last N events per rank, every in-flight sync
//! op with its HLC stamp, the directory epoch table, the most recent
//! time-series frames, per-link retransmit/fault counters and the active
//! placement decisions. The bundle is written to
//! `<dir>/blackbox-<trigger>-<seq>.json` and the trigger is appended to
//! an in-memory log so same-seed simulated runs can be compared
//! trigger-for-trigger.
//!
//! Rendering is plain-data JSON via the crate's `JsonWriter`; every table
//! is key-ordered, so a bundle taken at the same virtual time in two
//! same-seed runs is byte-identical. The sim-deadlock trigger runs while
//! the scheduler holds its state lock, so bundle construction never
//! reads the fabric clock — the caller supplies the timestamp.

use crate::event::{Event, EventKind};
use crate::recorder::InflightOp;
use crate::snapshot::{DecisionRow, JsonWriter};
use crate::timeseries::Frame;
use crate::watchdog::StallReport;
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// One entry of the flight recorder's trigger log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriggerRow {
    /// What fired (`stall`, `worker-lost`, `lease-expired`,
    /// `view-change`, `sim-deadlock`, `dump`).
    pub trigger: &'static str,
    /// Bundle sequence number, starting at 0.
    pub seq: u64,
    /// Fabric time of the trigger, µs.
    pub t_us: u64,
    /// Path the bundle was written to (empty if the write failed).
    pub path: String,
}

/// Everything that goes into one bundle, pre-gathered by the recorder so
/// rendering itself takes no locks and reads no clocks.
pub(crate) struct BundleData<'a> {
    pub trigger: &'static str,
    pub seq: u64,
    pub t_us: u64,
    /// Last-N events per rank, rank-ordered, oldest first within a rank.
    pub ranks: Vec<(u32, Vec<Event>)>,
    pub in_flight: &'a [InflightOp],
    pub dir_epochs: Vec<(u32, u64)>,
    pub frames: Vec<Frame>,
    pub placement: Vec<DecisionRow>,
    pub stalls: &'a [StallReport],
    /// The trigger log so far, including this trigger.
    pub triggers: &'a [TriggerRow],
}

fn event_json(w: &mut JsonWriter, e: &Event) {
    w.begin_obj();
    w.field_u64("t_us", e.t_us);
    w.field_str("kind", e.kind.name());
    if e.dur_us > 0 {
        w.field_u64("dur_us", e.dur_us);
    }
    w.field_u64("arg0", e.arg0);
    w.field_u64("arg1", e.arg1);
    if !e.label.is_empty() {
        w.field_str("label", e.label);
    }
    if e.op.is_some() {
        w.field_str("op", &e.op.to_string());
    }
    w.field_u64("hlc_l", e.hlc.l);
    w.field_u64("hlc_c", e.hlc.c as u64);
    w.end_obj();
}

/// Render a bundle to its stable JSON form.
pub(crate) fn render(d: &BundleData) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.field_str("trigger", d.trigger);
    w.field_u64("seq", d.seq);
    w.field_u64("t_us", d.t_us);
    w.key("triggers");
    w.begin_arr();
    for t in d.triggers {
        w.begin_obj();
        w.field_str("trigger", t.trigger);
        w.field_u64("seq", t.seq);
        w.field_u64("t_us", t.t_us);
        w.end_obj();
    }
    w.end_arr();
    w.key("in_flight");
    w.begin_arr();
    for f in d.in_flight {
        w.begin_obj();
        w.field_str("kind", f.op.kind.name());
        w.field_u64("id", f.op.id as u64);
        w.field_u64("epoch", f.op.epoch as u64);
        w.field_u64("origin", f.op.origin as u64);
        w.field_u64("rank", f.rank as u64);
        w.field_u64("start_us", f.start_us);
        w.field_u64("age_us", d.t_us.saturating_sub(f.start_us));
        w.field_u64("hlc_l", f.hlc.l);
        w.field_u64("hlc_c", f.hlc.c as u64);
        w.end_obj();
    }
    w.end_arr();
    w.key("dir_epochs");
    w.begin_arr();
    for &(shard, epoch) in &d.dir_epochs {
        w.begin_arr();
        w.raw_value(&shard.to_string());
        w.raw_value(&epoch.to_string());
        w.end_arr();
    }
    w.end_arr();
    w.key("stalls");
    w.begin_arr();
    for s in d.stalls {
        s.write_json(&mut w);
    }
    w.end_arr();
    w.key("frames");
    w.begin_arr();
    for f in &d.frames {
        w.raw_value(&f.to_json());
    }
    w.end_arr();
    // Per-directed-link reliability counters, recovered from the event
    // rings: retransmissions and injected faults that shaped the run.
    let mut links: BTreeMap<(u32, u32), (u64, u64)> = BTreeMap::new();
    for (_, evs) in &d.ranks {
        for e in evs {
            match e.kind {
                EventKind::Retransmit => {
                    links.entry((e.rank, e.arg1 as u32)).or_default().0 += 1;
                }
                EventKind::FaultDrop | EventKind::FaultDup | EventKind::FaultReorder => {
                    links.entry((e.rank, e.arg1 as u32)).or_default().1 += 1;
                }
                _ => {}
            }
        }
    }
    w.key("links");
    w.begin_arr();
    for ((from, to), (retransmits, faults)) in &links {
        w.begin_obj();
        w.field_u64("from", *from as u64);
        w.field_u64("to", *to as u64);
        w.field_u64("retransmits", *retransmits);
        w.field_u64("faults", *faults);
        w.end_obj();
    }
    w.end_arr();
    w.key("placement");
    w.begin_arr();
    for p in &d.placement {
        w.begin_obj();
        w.field_u64("entry", p.entry as u64);
        w.field_u64("from_shard", p.from_shard as u64);
        w.field_u64("to_shard", p.to_shard as u64);
        w.field_u64("writer", p.writer as u64);
        w.field_u64("epoch", p.epoch as u64);
        w.end_obj();
    }
    w.end_arr();
    w.key("ranks");
    w.begin_arr();
    for (rank, evs) in &d.ranks {
        w.begin_obj();
        w.field_u64("rank", *rank as u64);
        w.key("events");
        w.begin_arr();
        for e in evs {
            event_json(&mut w, e);
        }
        w.end_arr();
        w.end_obj();
    }
    w.end_arr();
    w.end_obj();
    w.finish()
}

/// Write a rendered bundle to `<dir>/blackbox-<trigger>-<seq>.json`,
/// creating the directory if needed. Returns the path, or `None` if the
/// filesystem refused (the trigger is still logged in memory).
pub(crate) fn write(dir: &str, trigger: &str, seq: u64, json: &str) -> Option<String> {
    fs::create_dir_all(dir).ok()?;
    let path = Path::new(dir).join(format!("blackbox-{trigger}-{seq}.json"));
    fs::write(&path, json).ok()?;
    Some(path.to_string_lossy().into_owned())
}

/// Re-indent a compact JSON document for human eyes (`obs_report
/// --bundle`). Purely lexical — tracks strings and nesting depth, never
/// parses — so it works on any bundle without a JSON library.
pub fn pretty(json: &str) -> String {
    fn indent(out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
    let mut out = String::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut esc = false;
    for c in json.chars() {
        if in_str {
            out.push(c);
            if esc {
                esc = false;
            } else if c == '\\' {
                esc = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push(c);
            }
            '{' | '[' => {
                depth += 1;
                out.push(c);
                out.push('\n');
                indent(&mut out, depth);
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                out.push('\n');
                indent(&mut out, depth);
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                indent(&mut out, depth);
            }
            ':' => out.push_str(": "),
            c if c.is_whitespace() => {}
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{OpCtx, OpKind};
    use crate::hlc::HlcStamp;

    fn bundle_json() -> String {
        let op = OpCtx {
            kind: OpKind::Barrier,
            id: 2,
            epoch: 1,
            origin: 1,
        };
        let inflight = [InflightOp {
            op,
            rank: 1,
            start_us: 100,
            hlc: HlcStamp { l: 100, c: 0 },
        }];
        let triggers = [TriggerRow {
            trigger: "stall",
            seq: 0,
            t_us: 1_000,
            path: String::new(),
        }];
        let ranks = vec![(
            1u32,
            vec![Event {
                rank: 1,
                kind: EventKind::Retransmit,
                t_us: 500,
                arg1: 0,
                op,
                ..Default::default()
            }],
        )];
        render(&BundleData {
            trigger: "stall",
            seq: 0,
            t_us: 1_000,
            ranks,
            in_flight: &inflight,
            dir_epochs: vec![(0, 1)],
            frames: Vec::new(),
            placement: Vec::new(),
            stalls: &[],
            triggers: &triggers,
        })
    }

    #[test]
    fn bundle_renders_every_section() {
        let j = bundle_json();
        assert!(j.starts_with("{\"trigger\":\"stall\",\"seq\":0,\"t_us\":1000"));
        assert!(j.contains("\"in_flight\":[{\"kind\":\"barrier\",\"id\":2"));
        assert!(j.contains("\"age_us\":900"));
        assert!(j.contains("\"dir_epochs\":[[0,1]]"));
        assert!(j.contains("\"links\":[{\"from\":1,\"to\":0,\"retransmits\":1,\"faults\":0}]"));
        assert!(j.contains("\"ranks\":[{\"rank\":1,\"events\":["));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        // Deterministic.
        assert_eq!(j, bundle_json());
    }

    #[test]
    fn pretty_preserves_content_and_balances() {
        let j = bundle_json();
        let p = pretty(&j);
        assert!(p.contains('\n'));
        // Stripping the added whitespace returns the original document.
        let squashed: String = {
            let mut out = String::new();
            let mut in_str = false;
            let mut esc = false;
            for c in p.chars() {
                if in_str {
                    out.push(c);
                    if esc {
                        esc = false;
                    } else if c == '\\' {
                        esc = true;
                    } else if c == '"' {
                        in_str = false;
                    }
                    continue;
                }
                match c {
                    '"' => {
                        in_str = true;
                        out.push(c);
                    }
                    c if c.is_whitespace() => {}
                    c => out.push(c),
                }
            }
            out
        };
        assert_eq!(squashed, j);
    }

    #[test]
    fn write_creates_dir_and_file() {
        let dir = std::env::temp_dir().join(format!("hdsm-blackbox-test-{}", std::process::id()));
        let dir_s = dir.to_string_lossy().into_owned();
        let path = write(&dir_s, "dump", 3, "{}").expect("write");
        assert!(path.ends_with("blackbox-dump-3.json"));
        assert_eq!(fs::read_to_string(&path).unwrap(), "{}");
        fs::remove_dir_all(&dir).ok();
    }
}
