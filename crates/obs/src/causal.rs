//! Merging per-rank event rings into one causally consistent timeline.
//!
//! Every recorded event carries an [`HlcStamp`](crate::hlc::HlcStamp);
//! sorting the merged rings by `(hlc, rank)` yields a total order that
//! *contains* the happens-before relation: a message's `MsgSend` always
//! precedes every matching `MsgRecv` (same flow id), and each rank's own
//! events keep their program order — even when the fault plan dropped,
//! duplicated or reordered the wire traffic in between. Local wall
//! clocks alone cannot promise this once messages bounce between ranks
//! with skewed clocks; the HLC merge on receive is what restores it.
//!
//! This module also estimates pairwise clock skew from matched
//! send/receive flows: with `delta(a→b) = recv.t_us − send.t_us`, the
//! one-way minimum includes both the true latency and the skew, so
//! `(min delta(a→b) − min delta(b→a)) / 2` cancels the symmetric latency
//! and leaves the skew of `b` relative to `a` (the classic NTP offset
//! estimate). In this in-process fabric all ranks share one epoch clock,
//! so the estimate doubles as a self-check: it should sit near zero.

use crate::event::{Event, EventKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Sort `events` into HLC (causal) order. Stable for equal stamps:
/// ties break on wall time, then rank.
pub fn causal_order(events: &[Event]) -> Vec<Event> {
    let mut out = events.to_vec();
    out.sort_by_key(|e| (e.hlc, e.t_us, e.rank));
    out
}

/// Check that `events` (in any order) satisfy the two HLC laws the
/// recorder promises:
///
/// 1. per-rank strict monotonicity — each rank's stamps are pairwise
///    distinct, and the instant events' stamps strictly increase in
///    wall order. (Duration spans are stamped when they *close*, not at
///    their recorded start time `t_us`, so a long span legitimately
///    carries a later stamp than shorter work that began after it —
///    wall order and stamp order only have to agree where the stamp was
///    taken at `t_us`.)
/// 2. send-before-receive — for every flow id, the `MsgSend` stamp is
///    strictly less than every matching `MsgRecv` stamp.
///
/// Returns the first violation as a human-readable message.
pub fn check_happens_before(events: &[Event]) -> Result<(), String> {
    let mut per_rank: BTreeMap<u32, Vec<&Event>> = BTreeMap::new();
    for e in events {
        per_rank.entry(e.rank).or_default().push(e);
    }
    for (rank, evs) in per_rank {
        // Every tick strictly advances the rank's clock, so no two
        // stamps on one rank may coincide — spans included.
        let mut stamps: Vec<_> = evs.iter().map(|e| e.hlc).collect();
        stamps.sort();
        for w in stamps.windows(2) {
            if w[0] == w[1] {
                return Err(format!("rank {rank}: stamp {} issued twice", w[0]));
            }
        }
        // Instants are stamped at `t_us`, so their wall order is their
        // tick order and the stamps must climb with it.
        let mut instants: Vec<&&Event> = evs.iter().filter(|e| e.dur_us == 0).collect();
        instants.sort_by_key(|e| (e.t_us, e.hlc));
        for w in instants.windows(2) {
            if w[0].hlc >= w[1].hlc {
                return Err(format!(
                    "rank {rank}: stamp {} does not advance past {} ({} -> {})",
                    w[1].hlc,
                    w[0].hlc,
                    w[0].kind.name(),
                    w[1].kind.name()
                ));
            }
        }
    }
    // Send happens-before every matching receive.
    let mut sends: BTreeMap<u64, &Event> = BTreeMap::new();
    for e in events {
        if e.kind == EventKind::MsgSend && e.flow != 0 {
            sends.insert(e.flow, e);
        }
    }
    for e in events {
        if e.kind == EventKind::MsgRecv && e.flow != 0 {
            if let Some(s) = sends.get(&e.flow) {
                if s.hlc >= e.hlc {
                    return Err(format!(
                        "flow {}: send stamp {} not before recv stamp {} ({} {}→{})",
                        e.flow, s.hlc, e.hlc, s.label, s.rank, e.rank
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Estimated clock offset between one rank pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkewRow {
    /// Lower-numbered rank of the pair.
    pub a: u32,
    /// Higher-numbered rank of the pair.
    pub b: u32,
    /// Estimated offset of `b`'s clock relative to `a`'s, in µs
    /// (positive = `b` runs ahead).
    pub skew_us: i64,
    /// Matched send/recv samples behind the estimate.
    pub samples: u64,
}

/// Estimate pairwise clock skew from matched message flows. Only pairs
/// observed in *both* directions produce a row (the one-way minimum
/// alone cannot separate skew from latency).
pub fn estimate_skew(events: &[Event]) -> Vec<SkewRow> {
    let mut sends: BTreeMap<u64, (u32, u64)> = BTreeMap::new();
    for e in events {
        if e.kind == EventKind::MsgSend && e.flow != 0 {
            sends.insert(e.flow, (e.rank, e.t_us));
        }
    }
    // (src, dst) -> (min one-way delta, samples)
    let mut mins: BTreeMap<(u32, u32), (i64, u64)> = BTreeMap::new();
    for e in events {
        if e.kind == EventKind::MsgRecv && e.flow != 0 {
            if let Some(&(src, sent_us)) = sends.get(&e.flow) {
                if src == e.rank {
                    continue;
                }
                let delta = e.t_us as i64 - sent_us as i64;
                let slot = mins.entry((src, e.rank)).or_insert((i64::MAX, 0));
                slot.0 = slot.0.min(delta);
                slot.1 += 1;
            }
        }
    }
    let mut out = Vec::new();
    for (&(a, b), &(d_ab, n_ab)) in &mins {
        if a >= b {
            continue;
        }
        if let Some(&(d_ba, n_ba)) = mins.get(&(b, a)) {
            out.push(SkewRow {
                a,
                b,
                skew_us: (d_ab - d_ba) / 2,
                samples: n_ab + n_ba,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hlc::HlcStamp;

    fn ev(rank: u32, kind: EventKind, t_us: u64, hlc: (u64, u32), flow: u64) -> Event {
        Event {
            rank,
            kind,
            t_us,
            hlc: HlcStamp { l: hlc.0, c: hlc.1 },
            flow,
            ..Default::default()
        }
    }

    #[test]
    fn causal_order_puts_send_before_recv_despite_wall_clocks() {
        // Receiver's wall clock reads *earlier* than the sender's, but
        // the merged HLC stamp still orders recv after send.
        let send = ev(1, EventKind::MsgSend, 100, (100, 0), 7);
        let recv = ev(2, EventKind::MsgRecv, 60, (100, 1), 7);
        let ordered = causal_order(&[recv, send]);
        assert_eq!(ordered[0].kind, EventKind::MsgSend);
        assert_eq!(ordered[1].kind, EventKind::MsgRecv);
        assert!(check_happens_before(&[send, recv]).is_ok());
    }

    #[test]
    fn happens_before_violations_are_reported() {
        let send = ev(1, EventKind::MsgSend, 100, (100, 5), 7);
        let recv = ev(2, EventKind::MsgRecv, 110, (100, 2), 7);
        let err = check_happens_before(&[send, recv]).unwrap_err();
        assert!(err.contains("flow 7"), "err: {err}");
    }

    #[test]
    fn rank_monotonicity_is_checked() {
        let a = ev(1, EventKind::Other, 10, (10, 0), 0);
        let b = ev(1, EventKind::Other, 20, (10, 0), 0); // stamp did not advance
        let err = check_happens_before(&[a, b]).unwrap_err();
        assert!(err.contains("rank 1"), "err: {err}");
    }

    #[test]
    fn skew_estimate_cancels_symmetric_latency() {
        // b's clock runs 50 µs ahead of a's; true one-way latency 10 µs.
        // a→b: recv stamped at send + 10 + 50; b→a: recv at send + 10 − 50.
        let events = [
            ev(0, EventKind::MsgSend, 100, (100, 0), 1),
            ev(1, EventKind::MsgRecv, 160, (160, 0), 1),
            ev(1, EventKind::MsgSend, 200, (200, 0), 2),
            ev(0, EventKind::MsgRecv, 160, (200, 1), 2),
        ];
        let rows = estimate_skew(&events);
        assert_eq!(rows.len(), 1);
        assert_eq!((rows[0].a, rows[0].b), (0, 1));
        assert_eq!(rows[0].skew_us, 50);
        assert_eq!(rows[0].samples, 2);
    }

    #[test]
    fn one_way_traffic_yields_no_skew_row() {
        let events = [
            ev(0, EventKind::MsgSend, 100, (100, 0), 1),
            ev(1, EventKind::MsgRecv, 110, (110, 0), 1),
        ];
        assert!(estimate_skew(&events).is_empty());
    }
}
