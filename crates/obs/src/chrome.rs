//! Chrome tracing (`chrome://tracing` / Perfetto) export.
//!
//! Emits the Trace Event Format's JSON-array form: one complete (`"X"`)
//! event per recorded span, one instant (`"i"`) per zero-duration event,
//! plus metadata naming each rank's track. Message sends/receives that
//! carry a flow id additionally emit flow events (`ph:"s"` at the send,
//! `ph:"f"` with `bp:"e"` at the receive, same `id`), which Perfetto
//! draws as arrows connecting the two rank tracks — the visual form of
//! the causal order established in [`crate::causal`]. Load the file at
//! `chrome://tracing` or <https://ui.perfetto.dev> to see every rank as
//! its own timeline.

use crate::event::{Event, EventKind};
use crate::snapshot::JsonWriter;
use std::collections::BTreeSet;

/// Serialize `events` (as returned by `Recorder::events`) to a Chrome
/// Trace Event Format JSON array. One track (`tid`) per rank, all under
/// `pid` 0.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut w = JsonWriter::new();
    w.begin_arr();
    // Track-name metadata first so the viewer labels timelines.
    let ranks: BTreeSet<u32> = events.iter().map(|e| e.rank).collect();
    for rank in ranks {
        w.begin_obj();
        w.field_str("name", "thread_name");
        w.field_str("ph", "M");
        w.field_u64("pid", 0);
        w.field_u64("tid", rank as u64);
        w.key("args");
        w.begin_obj();
        let label = if rank == 0 {
            "home (rank 0)".to_string()
        } else {
            format!("worker rank {rank}")
        };
        w.key("name");
        w.raw_value(&json_string(&label));
        w.end_obj();
        w.end_obj();
    }
    for e in events {
        w.begin_obj();
        w.field_str("name", e.kind.name());
        w.field_str("cat", e.kind.category());
        if e.dur_us > 0 {
            w.field_str("ph", "X");
            w.field_u64("ts", e.t_us);
            w.field_u64("dur", e.dur_us);
        } else {
            w.field_str("ph", "i");
            w.field_u64("ts", e.t_us);
            // Thread-scoped instant: drawn on the rank's own track.
            w.field_str("s", "t");
        }
        w.field_u64("pid", 0);
        w.field_u64("tid", e.rank as u64);
        w.key("args");
        w.begin_obj();
        w.field_u64("arg0", e.arg0);
        w.field_u64("arg1", e.arg1);
        if !e.label.is_empty() {
            w.field_str("label", e.label);
        }
        if e.op.is_some() {
            w.key("op");
            w.raw_value(&json_string(&e.op.to_string()));
        }
        w.end_obj();
        w.end_obj();
        // Flow arrow endpoints: a start at each send, a finish (binding
        // to the enclosing slice end, `bp:"e"`) at each receive.
        if e.flow != 0 && matches!(e.kind, EventKind::MsgSend | EventKind::MsgRecv) {
            w.begin_obj();
            w.field_str("name", "msg");
            w.field_str("cat", "flow");
            if e.kind == EventKind::MsgSend {
                w.field_str("ph", "s");
            } else {
                w.field_str("ph", "f");
                w.field_str("bp", "e");
            }
            w.field_u64("id", e.flow);
            w.field_u64("ts", e.t_us);
            w.field_u64("pid", 0);
            w.field_u64("tid", e.rank as u64);
            w.end_obj();
        }
    }
    w.end_arr();
    w.finish()
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                rank: 0,
                kind: EventKind::DiffScan,
                t_us: 100,
                dur_us: 40,
                arg0: 4096,
                ..Default::default()
            },
            Event {
                rank: 1,
                kind: EventKind::Retransmit,
                t_us: 150,
                arg0: 2,
                label: "lock-req",
                ..Default::default()
            },
        ]
    }

    /// Golden test: the exact serialization of a fixed event list. If the
    /// exporter changes shape, this string must be updated deliberately.
    #[test]
    fn golden_trace() {
        let got = chrome_trace(&sample_events());
        let want = concat!(
            r#"[{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"home (rank 0)"}},"#,
            r#"{"name":"thread_name","ph":"M","pid":0,"tid":1,"args":{"name":"worker rank 1"}},"#,
            r#"{"name":"diff-scan","cat":"share","ph":"X","ts":100,"dur":40,"pid":0,"tid":0,"args":{"arg0":4096,"arg1":0}},"#,
            r#"{"name":"retransmit","cat":"fault","ph":"i","ts":150,"s":"t","pid":0,"tid":1,"args":{"arg0":2,"arg1":0,"label":"lock-req"}}]"#,
        );
        assert_eq!(got, want);
    }

    #[test]
    fn empty_trace_is_empty_array() {
        assert_eq!(chrome_trace(&[]), "[]");
    }

    #[test]
    fn flows_link_send_to_recv_across_tracks() {
        let events = vec![
            Event {
                rank: 1,
                kind: EventKind::MsgSend,
                t_us: 10,
                arg0: 64,
                arg1: 0,
                label: "lock-req",
                flow: 42,
                ..Default::default()
            },
            Event {
                rank: 0,
                kind: EventKind::MsgRecv,
                t_us: 15,
                arg0: 64,
                arg1: 1,
                label: "lock-req",
                flow: 42,
                ..Default::default()
            },
        ];
        let t = chrome_trace(&events);
        assert!(
            t.contains(r#"{"name":"msg","cat":"flow","ph":"s","id":42,"ts":10,"pid":0,"tid":1}"#),
            "trace: {t}"
        );
        assert!(
            t.contains(
                r#"{"name":"msg","cat":"flow","ph":"f","bp":"e","id":42,"ts":15,"pid":0,"tid":0}"#
            ),
            "trace: {t}"
        );
        // Flow-less events emit no arrows (golden_trace relies on this).
        let quiet = chrome_trace(&sample_events());
        assert!(!quiet.contains(r#""cat":"flow""#));
    }

    #[test]
    fn spans_become_complete_events_and_instants_become_i() {
        let t = chrome_trace(&sample_events());
        assert!(t.contains(r#""ph":"X""#));
        assert!(t.contains(r#""ph":"i""#));
        assert!(t.contains(r#""dur":40"#));
        // Balanced JSON.
        assert_eq!(t.matches('{').count(), t.matches('}').count());
        assert_eq!(t.matches('[').count(), t.matches(']').count());
    }
}
