//! Per-sync-op critical-path analysis.
//!
//! For every barrier episode and lock acquisition observed in the event
//! stream, reconstruct the chain of spans and message hops that
//! *determined* its latency: the slowest client's wait, who the
//! straggler (or lock holder) was, which home shard did the work, how
//! many retransmits the reliability layer burned on which link, and
//! whether a lease expiry fired inside the window.
//!
//! The attributed chain is a *milestone walk* over the slowest client's
//! op span: span start → its own request/enter send → the last
//! enter/request arrival at the home → the grant/release send → the
//! grant/release arrival → span end. Milestones are clamped to be
//! monotone inside the span, so the segment durations always sum to the
//! op's measured latency exactly — the analyzer never invents or loses
//! time, it only attributes it.

use crate::event::{Event, EventKind, OpCtx, OpKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One attributed slice of an op's latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// What the time went on.
    pub label: &'static str,
    /// Endpoint rank the time is attributed to.
    pub rank: u32,
    /// Duration in µs.
    pub dur_us: u64,
}

/// Retransmits attributed to one directed link during one op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkRetransmits {
    /// Sending endpoint rank.
    pub from: u32,
    /// Destination endpoint rank.
    pub to: u32,
    /// Retransmissions on the link for this op.
    pub count: u64,
}

/// The critical path of one sync operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCritPath {
    /// The operation (origin = the slowest client's endpoint rank).
    pub op: OpCtx,
    /// The op's latency: the slowest participant's span duration, µs.
    pub latency_us: u64,
    /// Endpoint rank that gated the op (last barrier arrival, or the
    /// lock holder that blocked the grant). `None` when unobserved.
    pub straggler: Option<u32>,
    /// Home shard that did the most attributed work for this op.
    pub slowest_shard: Option<u32>,
    /// Time attributed to that shard, µs.
    pub shard_busy_us: u64,
    /// Retransmissions the reliability layer spent on this op.
    pub retransmits: u64,
    /// Per-link breakdown of those retransmits, count-descending.
    pub links: Vec<LinkRetransmits>,
    /// Lease expiries that fired inside the op's window.
    pub lease_expiries: u64,
    /// The attributed chain; durations sum to `latency_us` exactly.
    pub segments: Vec<Segment>,
}

/// Segment labels (stable report keys).
pub mod seg {
    /// Local diff + pack + request/enter send.
    pub const SEND: &str = "enter (diff+pack+send)";
    /// Waiting for the last participant / the lock holder.
    pub const WAIT: &str = "straggler wait";
    /// Home-side merge and grant/release build.
    pub const HOME: &str = "home merge + release";
    /// Grant/release on the wire (incl. retransmission gaps).
    pub const FLIGHT: &str = "release in flight";
    /// Local unpack + heterogeneous conversion of carried updates.
    pub const APPLY: &str = "apply (unpack+convert)";
    /// Administrative shard drain: fence → snapshot → install → retire.
    pub const HANDOFF: &str = "handoff (fence+snapshot+install)";
}

/// Human name for an endpoint rank given the shard count: endpoints
/// `0..shards` are home shards, the rest are DSD worker ranks `1..`.
pub fn rank_name(ep: u32, shards: u32) -> String {
    let shards = shards.max(1);
    if ep < shards {
        format!("shard {ep}")
    } else {
        format!("rank {}", ep - shards + 1)
    }
}

impl OpCritPath {
    /// One-line report: `barrier 3 epoch 7: 31.2 ms — straggler rank 1
    /// (+8.4 ms), slowest shard 0 (1.2 ms), 2 retransmits on link 1→0`.
    pub fn describe(&self, shards: u32) -> String {
        let mut s = format!(
            "{} {} epoch {}: {:.1} ms",
            self.op.kind.name(),
            self.op.id,
            self.op.epoch,
            self.latency_us as f64 / 1e3
        );
        let wait = self
            .segments
            .iter()
            .find(|g| g.label == seg::WAIT)
            .map(|g| g.dur_us)
            .unwrap_or(0);
        match self.straggler {
            Some(r) => s.push_str(&format!(
                " — straggler {} (+{:.1} ms)",
                rank_name(r, shards),
                wait as f64 / 1e3
            )),
            None => s.push_str(" — no straggler observed"),
        }
        if let Some(shard) = self.slowest_shard {
            s.push_str(&format!(
                ", slowest {} ({:.1} ms)",
                rank_name(shard, shards),
                self.shard_busy_us as f64 / 1e3
            ));
        }
        if self.retransmits > 0 {
            s.push_str(&format!(", {} retransmit(s)", self.retransmits));
            if let Some(l) = self.links.first() {
                s.push_str(&format!(" on link {}→{}", l.from, l.to));
            }
        }
        if self.lease_expiries > 0 {
            s.push_str(&format!(", {} lease expiry(ies)", self.lease_expiries));
        }
        s
    }
}

/// Grouping key: barrier episodes are cluster-wide (origin ignored),
/// lock acquisitions are per-origin.
fn group_key(op: &OpCtx) -> Option<(OpKind, u32, u32, u32)> {
    match op.kind {
        OpKind::Barrier => Some((OpKind::Barrier, op.id, op.epoch, 0)),
        OpKind::Lock => Some((OpKind::Lock, op.id, op.epoch, op.origin)),
        OpKind::Handoff => Some((OpKind::Handoff, op.id, op.epoch, 0)),
        _ => None,
    }
}

/// Compute critical paths for every barrier episode and lock
/// acquisition in `events` (any order). `shards` is the home shard
/// count (endpoint ranks `0..shards`); results are op-ordered.
pub fn analyze(events: &[Event], shards: u32) -> Vec<OpCritPath> {
    let shards = shards.max(1);
    let mut groups: BTreeMap<(OpKind, u32, u32, u32), Vec<&Event>> = BTreeMap::new();
    for e in events {
        if let Some(k) = group_key(&e.op) {
            groups.entry(k).or_default().push(e);
        }
    }
    // Lease expiries are attributed by time window, not op (the victim's
    // "current op" at expiry may be stale), so keep them aside.
    let leases: Vec<&Event> = events
        .iter()
        .filter(|e| e.kind == EventKind::LeaseExpired)
        .collect();
    let mut out = Vec::new();
    for ((kind, _, _, _), mut evs) in groups {
        evs.sort_by_key(|e| (e.t_us, e.rank));
        if kind == OpKind::Handoff {
            // An administrative drain, not a client sync op: the span on
            // the retiring primary covers fence → snapshot → install, and
            // the whole stall is attributed to that shard. Client ops
            // stretched by the drain carry the wait on their own paths.
            let Some(top) = evs
                .iter()
                .filter(|e| e.kind == EventKind::Handoff && e.dur_us > 0)
                .max_by_key(|e| (e.dur_us, e.t_us))
            else {
                continue;
            };
            out.push(OpCritPath {
                op: top.op,
                latency_us: top.dur_us,
                straggler: None,
                slowest_shard: Some(top.rank),
                shard_busy_us: top.dur_us,
                retransmits: 0,
                links: Vec::new(),
                lease_expiries: 0,
                segments: vec![Segment {
                    label: seg::HANDOFF,
                    rank: top.rank,
                    dur_us: top.dur_us,
                }],
            });
            continue;
        }
        let span_kind = match kind {
            OpKind::Barrier => EventKind::Barrier,
            OpKind::Lock => EventKind::LockWait,
            _ => continue,
        };
        // The slowest participant's op span defines the latency.
        let Some(top) = evs
            .iter()
            .filter(|e| e.kind == span_kind && e.dur_us > 0)
            .max_by_key(|e| (e.dur_us, e.t_us))
        else {
            continue;
        };
        let (t0, end) = (top.t_us, top.t_us + top.dur_us);
        let me = top.rank;

        let (req_label, reply_label) = match kind {
            OpKind::Barrier => ("barrier-enter", "barrier-release"),
            _ => ("lock-req", "lock-grant"),
        };
        // Milestones of the slowest client's chain.
        let m_send = evs
            .iter()
            .find(|e| e.kind == EventKind::MsgSend && e.rank == me && e.label == req_label)
            .map(|e| e.t_us);
        let last_arrival = evs
            .iter()
            .filter(|e| e.kind == EventKind::MsgRecv && e.rank < shards && e.label == req_label)
            .max_by_key(|e| e.t_us);
        let m_arrive = last_arrival.map(|e| e.t_us);
        let reply_send = evs
            .iter()
            .filter(|e| {
                e.kind == EventKind::MsgSend
                    && e.rank < shards
                    && e.label == reply_label
                    && e.op.origin == top.op.origin
            })
            .max_by_key(|e| e.t_us);
        let m_reply = reply_send.map(|e| e.t_us);
        let m_recv = evs
            .iter()
            .filter(|e| e.kind == EventKind::MsgRecv && e.rank == me && e.label == reply_label)
            .map(|e| e.t_us)
            .max();

        // Straggler: for barriers the origin of the last request to reach
        // the home; for locks, resolved by the caller via LockHold overlap
        // (we fall back to the last arrival's origin, which for an
        // uncontended lock is the requester itself — suppress that).
        let straggler = match kind {
            OpKind::Barrier => last_arrival.map(|e| e.op.origin),
            _ => {
                let window = (m_arrive.unwrap_or(t0), m_reply.unwrap_or(end));
                events
                    .iter()
                    .filter(|e| {
                        e.kind == EventKind::LockHold
                            && e.dur_us > 0
                            && e.arg0 == top.op.id as u64
                            && e.rank != me
                            && e.t_us < window.1
                            && e.t_us + e.dur_us > window.0
                    })
                    .max_by_key(|e| e.t_us + e.dur_us)
                    .map(|e| e.rank)
            }
        };

        // Clamp milestones monotone inside [t0, end] so segment durations
        // always sum to the measured latency.
        let clamp = |m: Option<u64>, lo: u64| m.unwrap_or(lo).clamp(lo, end);
        let m1 = clamp(m_send, t0);
        let m2 = clamp(m_arrive, m1);
        let m3 = clamp(m_reply, m2);
        let m4 = clamp(m_recv, m3);
        let coordinator = reply_send
            .or(last_arrival)
            .map(|e| e.rank)
            .unwrap_or(0)
            .min(shards - 1);
        let segments = vec![
            Segment {
                label: seg::SEND,
                rank: me,
                dur_us: m1 - t0,
            },
            Segment {
                label: seg::WAIT,
                rank: straggler.unwrap_or(coordinator),
                dur_us: m2 - m1,
            },
            Segment {
                label: seg::HOME,
                rank: coordinator,
                dur_us: m3 - m2,
            },
            Segment {
                label: seg::FLIGHT,
                rank: coordinator,
                dur_us: m4 - m3,
            },
            Segment {
                label: seg::APPLY,
                rank: me,
                dur_us: end - m4,
            },
        ];

        // Home-shard busy time: home-side spans attributed to this op.
        let mut shard_busy: BTreeMap<u32, u64> = BTreeMap::new();
        for e in &evs {
            if e.rank < shards && e.dur_us > 0 && e.kind != span_kind {
                *shard_busy.entry(e.rank).or_default() += e.dur_us;
            }
        }
        let span_fallback = shard_busy.is_empty();
        if span_fallback {
            // Home spans were dropped: attribute by received bytes
            // instead (the busy-time figure is then unknown, 0).
            for e in &evs {
                if e.rank < shards && e.kind == EventKind::MsgRecv {
                    *shard_busy.entry(e.rank).or_default() += e.arg0;
                }
            }
        }
        let (slowest_shard, shard_busy_us) = shard_busy
            .iter()
            .max_by_key(|&(_, &v)| v)
            .map(|(&s, &v)| (Some(s), if span_fallback { 0 } else { v }))
            .unwrap_or((None, 0));

        // Retransmits charged to this op, per directed link.
        let mut link_counts: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        for e in &evs {
            if e.kind == EventKind::Retransmit {
                *link_counts.entry((e.rank, e.arg1 as u32)).or_default() += 1;
            }
        }
        let retransmits: u64 = link_counts.values().sum();
        let mut links: Vec<LinkRetransmits> = link_counts
            .into_iter()
            .map(|((from, to), count)| LinkRetransmits { from, to, count })
            .collect();
        links.sort_by_key(|l| std::cmp::Reverse(l.count));

        let lease_expiries = leases
            .iter()
            .filter(|e| e.t_us >= t0 && e.t_us <= end)
            .count() as u64;

        out.push(OpCritPath {
            op: OpCtx {
                kind,
                id: top.op.id,
                epoch: top.op.epoch,
                origin: me,
            },
            latency_us: top.dur_us,
            straggler,
            slowest_shard,
            shard_busy_us,
            retransmits,
            links,
            lease_expiries,
            segments,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hlc::HlcStamp;

    fn op(kind: OpKind, id: u32, epoch: u32, origin: u32) -> OpCtx {
        OpCtx {
            kind,
            id,
            epoch,
            origin,
        }
    }

    fn ev(
        rank: u32,
        kind: EventKind,
        t_us: u64,
        dur_us: u64,
        label: &'static str,
        o: OpCtx,
    ) -> Event {
        Event {
            rank,
            kind,
            t_us,
            dur_us,
            label,
            op: o,
            hlc: HlcStamp { l: t_us, c: 0 },
            ..Default::default()
        }
    }

    /// One barrier, one shard (ep 0), two workers (eps 1 and 2). Worker 1
    /// is fast, worker 2 arrives late — worker 1's span is gated on it.
    fn barrier_events() -> Vec<Event> {
        let o1 = op(OpKind::Barrier, 3, 7, 1);
        let o2 = op(OpKind::Barrier, 3, 7, 2);
        vec![
            // Worker 1: enters at 100, released at 400 → 300 µs span.
            ev(1, EventKind::Barrier, 100, 300, "", o1),
            ev(1, EventKind::MsgSend, 110, 0, "barrier-enter", o1),
            ev(0, EventKind::MsgRecv, 120, 0, "barrier-enter", o1),
            // Worker 2 is the straggler: its enter lands at 300.
            ev(2, EventKind::Barrier, 290, 95, "", o2),
            ev(2, EventKind::MsgSend, 295, 0, "barrier-enter", o2),
            ev(0, EventKind::MsgRecv, 300, 0, "barrier-enter", o2),
            // Home merges (span), then releases both.
            ev(0, EventKind::Convert, 305, 40, "", o2),
            ev(0, EventKind::MsgSend, 350, 0, "barrier-release", o1),
            ev(0, EventKind::MsgSend, 352, 0, "barrier-release", o2),
            ev(1, EventKind::MsgRecv, 380, 0, "barrier-release", o1),
            ev(2, EventKind::MsgRecv, 382, 0, "barrier-release", o2),
            // A retransmit the reliability layer burned on worker 1's link.
            ev(1, EventKind::Retransmit, 200, 0, "barrier-enter", o1),
        ]
    }

    #[test]
    fn barrier_critical_path_attributes_the_straggler() {
        let paths = analyze(&barrier_events(), 1);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.op.kind, OpKind::Barrier);
        assert_eq!((p.op.id, p.op.epoch), (3, 7));
        assert_eq!(p.latency_us, 300);
        assert_eq!(p.straggler, Some(2));
        assert_eq!(p.slowest_shard, Some(0));
        assert_eq!(p.retransmits, 1);
        assert_eq!(
            p.links,
            vec![LinkRetransmits {
                from: 1,
                to: 0,
                count: 1
            }]
        );
        assert_eq!(p.lease_expiries, 0);
    }

    #[test]
    fn segments_sum_to_latency_exactly() {
        let paths = analyze(&barrier_events(), 1);
        let p = &paths[0];
        let sum: u64 = p.segments.iter().map(|s| s.dur_us).sum();
        assert_eq!(sum, p.latency_us);
        // The dominant segment is the straggler wait (110 → 300).
        let wait = p.segments.iter().find(|s| s.label == seg::WAIT).unwrap();
        assert_eq!(wait.rank, 2);
        assert_eq!(wait.dur_us, 190);
    }

    #[test]
    fn lock_critical_path_names_the_holder() {
        let shards = 1;
        let acq = op(OpKind::Lock, 5, 2, 2);
        let events = vec![
            // Worker 2 (ep 2) waits 100..400 for lock 5.
            ev(2, EventKind::LockWait, 100, 300, "", acq),
            ev(2, EventKind::MsgSend, 105, 0, "lock-req", acq),
            ev(0, EventKind::MsgRecv, 110, 0, "lock-req", acq),
            ev(0, EventKind::MsgSend, 370, 0, "lock-grant", acq),
            ev(2, EventKind::MsgRecv, 390, 0, "lock-grant", acq),
            // Worker 1 (ep 1) held lock 5 until 360 — the blocker.
            Event {
                rank: 1,
                kind: EventKind::LockHold,
                t_us: 50,
                dur_us: 310,
                arg0: 5,
                ..Default::default()
            },
        ];
        let paths = analyze(&events, shards);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.op.kind, OpKind::Lock);
        assert_eq!(p.latency_us, 300);
        assert_eq!(p.straggler, Some(1));
        let sum: u64 = p.segments.iter().map(|s| s.dur_us).sum();
        assert_eq!(sum, p.latency_us);
    }

    #[test]
    fn describe_names_rank_shard_and_link() {
        let paths = analyze(&barrier_events(), 1);
        let line = paths[0].describe(1);
        assert!(line.starts_with("barrier 3 epoch 7:"), "line: {line}");
        assert!(line.contains("straggler rank 2"), "line: {line}");
        assert!(line.contains("shard 0"), "line: {line}");
        assert!(line.contains("1 retransmit(s) on link 1→0"), "line: {line}");
    }

    #[test]
    fn missing_milestones_still_sum_to_latency() {
        // Only the client span survived (rings dropped the messages).
        let o = op(OpKind::Barrier, 0, 1, 1);
        let events = vec![ev(1, EventKind::Barrier, 10, 50, "", o)];
        let paths = analyze(&events, 1);
        assert_eq!(paths.len(), 1);
        let sum: u64 = paths[0].segments.iter().map(|s| s.dur_us).sum();
        assert_eq!(sum, 50);
        assert_eq!(paths[0].straggler, None);
    }

    #[test]
    fn rank_names_split_shards_and_workers() {
        assert_eq!(rank_name(0, 2), "shard 0");
        assert_eq!(rank_name(1, 2), "shard 1");
        assert_eq!(rank_name(2, 2), "rank 1");
        assert_eq!(rank_name(4, 2), "rank 3");
    }
}
