//! Structured runtime events.
//!
//! An [`Event`] is one timestamped happening on one rank — a span (has a
//! duration) or an instant (duration zero). Events are deliberately flat
//! and `Copy`-cheap: two integer arguments plus a static label cover every
//! site in the stack without allocation on the hot path.

use crate::hlc::HlcStamp;
use std::fmt;

/// The class of distributed sync operation an event belongs to.
///
/// Together with [`OpCtx`] this is the *trace context*: it names the
/// lock/unlock/barrier/cond/join call that *caused* a message, span or
/// fault event, so the critical-path analyzer can group everything that
/// happened on behalf of one operation — across ranks, shards,
/// retransmits and lease machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// Not attributed to any sync operation.
    #[default]
    None,
    /// `MTh_lock` acquire.
    Lock,
    /// `MTh_unlock` release.
    Unlock,
    /// `MTh_barrier`.
    Barrier,
    /// Condition-variable wait/signal.
    Cond,
    /// `MTh_join`.
    Join,
    /// Administrative shard handoff (drain → install → retire). Not a
    /// worker-initiated sync op: `id` is the shard, `origin` 0.
    Handoff,
}

impl OpKind {
    /// Stable short name (report key, Chrome-trace argument).
    pub const fn name(self) -> &'static str {
        match self {
            OpKind::None => "none",
            OpKind::Lock => "lock",
            OpKind::Unlock => "unlock",
            OpKind::Barrier => "barrier",
            OpKind::Cond => "cond",
            OpKind::Join => "join",
            OpKind::Handoff => "handoff",
        }
    }
}

/// Which concrete sync operation an event happened on behalf of.
///
/// `epoch` distinguishes successive uses of the same id (the 7th time
/// barrier 3 fires, the 4th acquisition of lock 0 by rank 2); `origin`
/// is the worker rank whose call started the operation. The default
/// (all zero, kind `None`) means "unattributed".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpCtx {
    /// Operation class.
    pub kind: OpKind,
    /// Lock / barrier / cond id (0 for join).
    pub id: u32,
    /// Per-(kind, id, origin) use counter, starting at 1.
    pub epoch: u32,
    /// Worker rank that initiated the operation.
    pub origin: u32,
}

impl OpCtx {
    /// Is this context attributed to a real operation?
    pub fn is_some(&self) -> bool {
        self.kind != OpKind::None
    }
}

impl fmt::Display for OpCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_some() {
            write!(
                f,
                "{} {} epoch {} (rank {})",
                self.kind.name(),
                self.id,
                self.epoch,
                self.origin
            )
        } else {
            write!(f, "unattributed")
        }
    }
}

/// What happened. The taxonomy mirrors the paper's cost decomposition
/// (Eq. 1: `t_index + t_tag + t_pack + t_unpack + t_conv`) plus the
/// synchronization, transport, reliability and migration machinery around
/// it — see DESIGN.md §10 for the full mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Waiting for a distributed lock grant (`arg0` = lock id).
    LockWait,
    /// Holding a distributed lock, acquire→release (`arg0` = lock id).
    LockHold,
    /// Releasing a distributed lock (`arg0` = lock id).
    LockRelease,
    /// Inside a barrier, enter→release (`arg0` = barrier id).
    Barrier,
    /// Twin/diff byte scan + run→index mapping (`t_index`; `arg0` = dirty
    /// bytes found).
    DiffScan,
    /// Coalescing runs into tags (`t_tag`; `arg0` = tag count).
    TagBuild,
    /// Packing tag + data frames (`t_pack`; `arg0` = bytes).
    Pack,
    /// Unpacking received frames (`t_unpack`; `arg0` = bytes).
    Unpack,
    /// Applying data — memcpy or heterogeneous conversion (`t_conv`;
    /// `arg0` = updates, `arg1` = bytes).
    Convert,
    /// A message left this rank (`arg0` = payload bytes, `arg1` = dst;
    /// `label` = message kind).
    MsgSend,
    /// A message arrived at this rank (`arg0` = payload bytes, `arg1` =
    /// src; `label` = message kind).
    MsgRecv,
    /// The reliability layer retransmitted a request.
    Retransmit,
    /// Fault injection dropped a message (`label` = message kind).
    FaultDrop,
    /// Fault injection duplicated a message (`label` = message kind).
    FaultDup,
    /// Fault injection held a message back for reordering.
    FaultReorder,
    /// The home's failure detector declared a worker dead (`arg0` = rank).
    LeaseExpired,
    /// A home shard was killed by fault injection or its endpoint died
    /// (`arg0` = shard).
    ShardKill,
    /// A standby replica promoted itself to primary (`arg0` = shard,
    /// `arg1` = new epoch).
    Promote,
    /// A shard fenced itself — deposed, drained for handoff, or
    /// self-fenced on a severed replication link (`arg0` = shard,
    /// `arg1` = epoch it stopped serving).
    Fence,
    /// Proactive shard handoff, drain→install→retire (`arg0` = shard,
    /// `arg1` = new epoch). A span on the old primary.
    Handoff,
    /// First client request served after a promotion (`arg0` = shard,
    /// `arg1` = epoch) — the recovery-latency endpoint.
    FirstGrant,
    /// Thread state packed into a portable image (`arg0` = image bytes).
    MigrationPack,
    /// Thread state restored receiver-makes-right (`arg0` = image bytes).
    MigrationRestore,
    /// The stall watchdog found a sync op over budget (`arg0` = age µs,
    /// `arg1` = budget µs; `op` = the stuck operation).
    Stall,
    /// Anything else (tests, applications).
    Other,
}

impl EventKind {
    /// Stable short name (Chrome-trace event name, report key).
    pub const fn name(self) -> &'static str {
        match self {
            EventKind::LockWait => "lock-wait",
            EventKind::LockHold => "lock-hold",
            EventKind::LockRelease => "lock-release",
            EventKind::Barrier => "barrier",
            EventKind::DiffScan => "diff-scan",
            EventKind::TagBuild => "tag-build",
            EventKind::Pack => "pack",
            EventKind::Unpack => "unpack",
            EventKind::Convert => "convert",
            EventKind::MsgSend => "msg-send",
            EventKind::MsgRecv => "msg-recv",
            EventKind::Retransmit => "retransmit",
            EventKind::FaultDrop => "fault-drop",
            EventKind::FaultDup => "fault-dup",
            EventKind::FaultReorder => "fault-reorder",
            EventKind::LeaseExpired => "lease-expired",
            EventKind::ShardKill => "shard-kill",
            EventKind::Promote => "promote",
            EventKind::Fence => "fence",
            EventKind::Handoff => "handoff",
            EventKind::FirstGrant => "first-grant",
            EventKind::MigrationPack => "migration-pack",
            EventKind::MigrationRestore => "migration-restore",
            EventKind::Stall => "stall",
            EventKind::Other => "other",
        }
    }

    /// Chrome-trace category, used to colour-group tracks.
    pub const fn category(self) -> &'static str {
        match self {
            EventKind::LockWait
            | EventKind::LockHold
            | EventKind::LockRelease
            | EventKind::Barrier => "sync",
            EventKind::DiffScan
            | EventKind::TagBuild
            | EventKind::Pack
            | EventKind::Unpack
            | EventKind::Convert => "share",
            EventKind::MsgSend | EventKind::MsgRecv => "net",
            EventKind::Retransmit
            | EventKind::FaultDrop
            | EventKind::FaultDup
            | EventKind::FaultReorder
            | EventKind::LeaseExpired
            | EventKind::Stall => "fault",
            EventKind::ShardKill
            | EventKind::Promote
            | EventKind::Fence
            | EventKind::Handoff
            | EventKind::FirstGrant => "failover",
            EventKind::MigrationPack | EventKind::MigrationRestore => "migrate",
            EventKind::Other => "misc",
        }
    }
}

/// One recorded event. Timestamps are microseconds since the recorder's
/// epoch; `dur_us == 0` marks an instant event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Rank the event happened on (home = 0, workers = 1..).
    pub rank: u32,
    /// Event taxonomy entry.
    pub kind: EventKind,
    /// Start time, µs since the recorder epoch.
    pub t_us: u64,
    /// Duration in µs (0 for instants).
    pub dur_us: u64,
    /// First argument (see [`EventKind`] docs for the meaning per kind).
    pub arg0: u64,
    /// Second argument.
    pub arg1: u64,
    /// Free-form static qualifier (e.g. the message kind label).
    pub label: &'static str,
    /// Hybrid logical clock stamp at the event (ZERO when untracked).
    pub hlc: HlcStamp,
    /// Flow id binding a `MsgSend` to its `MsgRecv` (0 = no flow).
    pub flow: u64,
    /// The sync operation this event happened on behalf of.
    pub op: OpCtx,
}

impl Default for Event {
    fn default() -> Self {
        Event {
            rank: 0,
            kind: EventKind::Other,
            t_us: 0,
            dur_us: 0,
            arg0: 0,
            arg1: 0,
            label: "",
            hlc: HlcStamp::ZERO,
            flow: 0,
            op: OpCtx::default(),
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>8}us r{}] {:<17} dur={}us arg0={} arg1={} {}",
            self.t_us,
            self.rank,
            self.kind.name(),
            self.dur_us,
            self.arg0,
            self.arg1,
            self.label
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [EventKind; 25] = [
        EventKind::LockWait,
        EventKind::LockHold,
        EventKind::LockRelease,
        EventKind::Barrier,
        EventKind::DiffScan,
        EventKind::TagBuild,
        EventKind::Pack,
        EventKind::Unpack,
        EventKind::Convert,
        EventKind::MsgSend,
        EventKind::MsgRecv,
        EventKind::Retransmit,
        EventKind::FaultDrop,
        EventKind::FaultDup,
        EventKind::FaultReorder,
        EventKind::LeaseExpired,
        EventKind::ShardKill,
        EventKind::Promote,
        EventKind::Fence,
        EventKind::Handoff,
        EventKind::FirstGrant,
        EventKind::MigrationPack,
        EventKind::MigrationRestore,
        EventKind::Stall,
        EventKind::Other,
    ];

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in ALL {
            assert!(seen.insert(k.name()), "duplicate name {}", k.name());
            assert!(!k.category().is_empty());
        }
    }

    #[test]
    fn display_is_compact() {
        let e = Event {
            rank: 2,
            kind: EventKind::DiffScan,
            t_us: 10,
            dur_us: 5,
            arg0: 64,
            ..Default::default()
        };
        let s = e.to_string();
        assert!(s.contains("diff-scan"));
        assert!(s.contains("r2"));
    }

    #[test]
    fn op_ctx_defaults_to_unattributed() {
        let op = OpCtx::default();
        assert!(!op.is_some());
        assert_eq!(op.to_string(), "unattributed");
        let b = OpCtx {
            kind: OpKind::Barrier,
            id: 3,
            epoch: 7,
            origin: 1,
        };
        assert!(b.is_some());
        assert_eq!(b.to_string(), "barrier 3 epoch 7 (rank 1)");
    }

    #[test]
    fn op_kind_names_are_unique() {
        let kinds = [
            OpKind::None,
            OpKind::Lock,
            OpKind::Unlock,
            OpKind::Barrier,
            OpKind::Cond,
            OpKind::Join,
            OpKind::Handoff,
        ];
        let mut seen = std::collections::HashSet::new();
        for k in kinds {
            assert!(seen.insert(k.name()));
        }
    }
}
