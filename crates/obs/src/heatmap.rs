//! Per-page and per-index-entry access heatmaps.
//!
//! The paper's Figure 9 story — "thousands of indexes distill into one
//! tag" — is reproduced here as data: every release's diff runs feed the
//! page map (which pages are written, how many bytes actually changed),
//! and every update frame feeds the entry map (which index entries ship,
//! over which element ranges). The resulting tables show at a glance where
//! sharing traffic concentrates.

use std::collections::BTreeMap;

/// Accumulated statistics for one page of the protected global space.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageStats {
    /// Times the page appeared in a release diff scan with changed bytes.
    pub writes: u64,
    /// Total changed bytes found on the page across all diff scans.
    pub diff_bytes: u64,
    /// Times the page was overwritten by incoming updates (acquires).
    pub invalidations: u64,
}

/// Accumulated statistics for one index-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryStats {
    /// Typed reads through the client accessors.
    pub reads: u64,
    /// Typed writes through the client accessors.
    pub writes: u64,
    /// Update frames shipped for this entry.
    pub updates_sent: u64,
    /// Elements covered by shipped updates.
    pub elems_sent: u64,
    /// Payload bytes shipped for this entry.
    pub bytes_sent: u64,
    /// Update frames applied to this entry.
    pub updates_applied: u64,
    /// Payload bytes applied to this entry.
    pub bytes_applied: u64,
    /// Lowest element index ever shipped (u64::MAX when none).
    pub min_elem: u64,
    /// Highest element index ever shipped (exclusive; 0 when none).
    pub max_elem: u64,
}

impl Default for EntryStats {
    /// All counters zero; `min_elem` starts at `u64::MAX` so the first
    /// shipped range establishes the minimum.
    fn default() -> EntryStats {
        EntryStats {
            reads: 0,
            writes: 0,
            updates_sent: 0,
            elems_sent: 0,
            bytes_sent: 0,
            updates_applied: 0,
            bytes_applied: 0,
            min_elem: u64::MAX,
            max_elem: 0,
        }
    }
}

/// Accumulated update traffic one writer rank generated for one entry —
/// the placement engine's "dominant writer" signal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriterStats {
    /// Update frames this writer shipped for the entry.
    pub updates: u64,
    /// Payload bytes this writer shipped for the entry.
    pub bytes: u64,
}

/// The access maps together: per-page, per-entry, and the two placement
/// signals (per-(entry, writer) update attribution and per-(writer,
/// shard) completed release-class sync operations).
#[derive(Debug, Default)]
pub struct Heatmap {
    pages: BTreeMap<u64, PageStats>,
    entries: BTreeMap<u32, EntryStats>,
    writers: BTreeMap<(u32, u32), WriterStats>,
    releases: BTreeMap<(u32, u32), u64>,
}

impl Heatmap {
    /// A diff scan found `bytes` changed bytes on `page`.
    pub fn page_diff(&mut self, page: u64, bytes: u64) {
        let p = self.pages.entry(page).or_default();
        p.writes += 1;
        p.diff_bytes += bytes;
    }

    /// Incoming updates overwrote `page`.
    pub fn page_invalidated(&mut self, page: u64) {
        self.pages.entry(page).or_default().invalidations += 1;
    }

    /// A typed read hit `entry`.
    pub fn entry_read(&mut self, entry: u32) {
        self.entries.entry(entry).or_default().reads += 1;
    }

    /// A typed write hit `entry`.
    pub fn entry_write(&mut self, entry: u32) {
        self.entries.entry(entry).or_default().writes += 1;
    }

    /// An update frame for `entry` covering `[first, first+count)` with
    /// `bytes` payload bytes was shipped.
    pub fn update_sent(&mut self, entry: u32, first: u64, count: u64, bytes: u64) {
        let e = self.entries.entry(entry).or_default();
        e.updates_sent += 1;
        e.elems_sent += count;
        e.bytes_sent += bytes;
        e.min_elem = e.min_elem.min(first);
        e.max_elem = e.max_elem.max(first + count);
    }

    /// An update frame for `entry` with `bytes` payload bytes was applied.
    pub fn update_applied(&mut self, entry: u32, bytes: u64) {
        let e = self.entries.entry(entry).or_default();
        e.updates_applied += 1;
        e.bytes_applied += bytes;
    }

    /// Page map, page-ordered.
    pub fn pages(&self) -> impl Iterator<Item = (u64, PageStats)> + '_ {
        self.pages.iter().map(|(k, v)| (*k, *v))
    }

    /// Entry map, entry-ordered.
    pub fn entries(&self) -> impl Iterator<Item = (u32, EntryStats)> + '_ {
        self.entries.iter().map(|(k, v)| (*k, *v))
    }

    /// Statistics for one entry.
    pub fn entry(&self, entry: u32) -> Option<EntryStats> {
        self.entries.get(&entry).copied()
    }

    /// Statistics for one page.
    pub fn page(&self, page: u64) -> Option<PageStats> {
        self.pages.get(&page).copied()
    }

    /// Writer `writer` shipped an update frame for `entry` with `bytes`
    /// payload bytes.
    pub fn entry_written_by(&mut self, entry: u32, writer: u32, bytes: u64) {
        let w = self.writers.entry((entry, writer)).or_default();
        w.updates += 1;
        w.bytes += bytes;
    }

    /// Writer `writer` completed a release-class sync operation (unlock,
    /// barrier enter, cond wait) homed at `shard`.
    pub fn release_to(&mut self, writer: u32, shard: u32) {
        *self.releases.entry((writer, shard)).or_default() += 1;
    }

    /// Per-(entry, writer) update attribution, (entry, writer)-ordered.
    pub fn writers(&self) -> impl Iterator<Item = ((u32, u32), WriterStats)> + '_ {
        self.writers.iter().map(|(k, v)| (*k, *v))
    }

    /// Per-(writer, shard) completed sync-op counts, key-ordered.
    pub fn releases(&self) -> impl Iterator<Item = ((u32, u32), u64)> + '_ {
        self.releases.iter().map(|(k, v)| (*k, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_accumulate() {
        let mut h = Heatmap::default();
        h.page_diff(3, 100);
        h.page_diff(3, 50);
        h.page_invalidated(3);
        h.page_diff(7, 1);
        let p3 = h.page(3).unwrap();
        assert_eq!(p3.writes, 2);
        assert_eq!(p3.diff_bytes, 150);
        assert_eq!(p3.invalidations, 1);
        assert_eq!(h.pages().count(), 2);
        // BTreeMap order.
        let keys: Vec<u64> = h.pages().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![3, 7]);
    }

    #[test]
    fn entry_ranges_track_min_max() {
        let mut h = Heatmap::default();
        h.update_sent(0, 10, 5, 40);
        h.update_sent(0, 2, 3, 24);
        h.update_applied(0, 64);
        h.entry_read(0);
        h.entry_write(0);
        let e = h.entry(0).unwrap();
        assert_eq!(e.updates_sent, 2);
        assert_eq!(e.elems_sent, 8);
        assert_eq!(e.bytes_sent, 64);
        assert_eq!(e.min_elem, 2);
        assert_eq!(e.max_elem, 15);
        assert_eq!(e.updates_applied, 1);
        assert_eq!(e.bytes_applied, 64);
        assert_eq!(e.reads, 1);
        assert_eq!(e.writes, 1);
    }

    #[test]
    fn untouched_entry_is_absent() {
        let h = Heatmap::default();
        assert!(h.entry(5).is_none());
        assert!(h.page(5).is_none());
    }
}
