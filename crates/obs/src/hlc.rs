//! Hybrid logical clocks (Kulkarni et al., "Logical Physical Clocks").
//!
//! An [`HlcStamp`] is a pair `(l, c)`: `l` tracks the maximum physical
//! time observed (µs since the recorder epoch) and `c` is a logical
//! counter that breaks ties when physical time stalls or runs behind a
//! remote stamp. Comparing stamps lexicographically gives a total order
//! consistent with causality: if event *a* happens-before event *b*
//! (same rank in program order, or *a* is the send of the message *b*
//! received), then `stamp(a) < stamp(b)` — even when the fault plan
//! drops, duplicates or reorders the messages in between.
//!
//! Each rank owns one [`HlcClock`]; the fabric send path calls
//! [`HlcClock::tick`] and stamps the outgoing envelope, the receive path
//! calls [`HlcClock::merge`] with the remote stamp. Both are a handful of
//! integer compares — cheap enough for the per-message hot path, and the
//! whole mechanism is skipped entirely when the recorder is disabled.

use std::fmt;

/// One hybrid logical timestamp. Ordering is lexicographic on
/// `(l, c)`, which is exactly the HLC happens-before order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HlcStamp {
    /// Max physical time observed, µs since the recorder epoch.
    pub l: u64,
    /// Logical tie-break counter.
    pub c: u32,
}

impl HlcStamp {
    /// The zero stamp (before everything).
    pub const ZERO: HlcStamp = HlcStamp { l: 0, c: 0 };
}

impl fmt::Display for HlcStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.l, self.c)
    }
}

/// Per-rank HLC state. Not itself thread-safe; the recorder keeps one
/// per rank behind its own lock.
#[derive(Debug, Clone, Copy, Default)]
pub struct HlcClock {
    last: HlcStamp,
}

impl HlcClock {
    /// Fresh clock at the epoch.
    pub fn new() -> HlcClock {
        HlcClock::default()
    }

    /// The stamp of the most recent local event (ZERO if none yet).
    pub fn last(&self) -> HlcStamp {
        self.last
    }

    /// Advance for a local or send event at physical time `now_us` and
    /// return the new stamp.
    pub fn tick(&mut self, now_us: u64) -> HlcStamp {
        if now_us > self.last.l {
            self.last = HlcStamp { l: now_us, c: 0 };
        } else {
            self.last.c += 1;
        }
        self.last
    }

    /// Advance for a receive event carrying `remote`, at physical time
    /// `now_us`, and return the new stamp. The result is strictly greater
    /// than both the previous local stamp and `remote`.
    pub fn merge(&mut self, now_us: u64, remote: HlcStamp) -> HlcStamp {
        let l_new = now_us.max(self.last.l).max(remote.l);
        let c_new = if l_new == self.last.l && l_new == remote.l {
            self.last.c.max(remote.c) + 1
        } else if l_new == self.last.l {
            self.last.c + 1
        } else if l_new == remote.l {
            remote.c + 1
        } else {
            0
        };
        self.last = HlcStamp { l: l_new, c: c_new };
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_is_strictly_monotonic() {
        let mut clk = HlcClock::new();
        let mut prev = HlcStamp::ZERO;
        // Physical time advancing, stalled, and going backwards.
        for now in [5u64, 10, 10, 10, 7, 3, 11, 11] {
            let s = clk.tick(now);
            assert!(s > prev, "tick({now}) gave {s} after {prev}");
            prev = s;
        }
    }

    #[test]
    fn merge_dominates_remote_and_local() {
        let mut a = HlcClock::new();
        let mut b = HlcClock::new();
        let sent = a.tick(100);
        // Receiver's physical clock is behind the sender's.
        let got = b.merge(40, sent);
        assert!(got > sent);
        // And ahead.
        let sent2 = a.tick(101);
        let got2 = b.merge(500, sent2);
        assert!(got2 > sent2);
        assert!(got2 > got);
    }

    #[test]
    fn merge_breaks_equal_l_ties() {
        let mut clk = HlcClock::new();
        clk.tick(50);
        let remote = HlcStamp { l: 50, c: 9 };
        let s = clk.merge(50, remote);
        assert_eq!(s, HlcStamp { l: 50, c: 10 });
        // Local counter higher than remote.
        let s2 = clk.merge(50, HlcStamp { l: 50, c: 1 });
        assert_eq!(s2, HlcStamp { l: 50, c: 11 });
    }

    #[test]
    fn drift_is_bounded_by_observed_physical_time() {
        // l never exceeds the max physical time fed in (HLC's bounded
        // drift property): counters absorb causality, not wall time.
        let mut a = HlcClock::new();
        let mut b = HlcClock::new();
        let mut max_pt = 0u64;
        let mut s = HlcStamp::ZERO;
        for i in 0..100u64 {
            max_pt = max_pt.max(i);
            s = a.tick(i);
            s = b.merge(i / 2, s); // b's clock runs at half speed
            max_pt = max_pt.max(i / 2);
        }
        assert!(s.l <= max_pt);
    }

    #[test]
    fn stamps_order_lexicographically() {
        let a = HlcStamp { l: 10, c: 5 };
        let b = HlcStamp { l: 10, c: 6 };
        let c = HlcStamp { l: 11, c: 0 };
        assert!(a < b && b < c);
        assert_eq!(a.to_string(), "10.5");
    }
}
