//! hdsm-obs — observability substrate for the heterogeneous DSM.
//!
//! One [`Recorder`] handle threads through the whole stack. Disabled (the
//! default) it is a null pointer check per call site; enabled it gathers:
//!
//! - **Events** — per-rank ring buffers of structured spans and instants
//!   ([`Event`], [`EventKind`]): lock wait/hold, barriers, the Eq. 1 cost
//!   pipeline (diff scan, tag build, pack, unpack, convert), message
//!   send/recv, retransmits, injected faults, lease expiries, migration
//!   pack/restore.
//! - **Metrics** — named counters, gauges and log2-bucket latency
//!   histograms with p50/p95/p99 ([`Registry`], [`Histogram`]).
//! - **Heatmaps** — per-page write/diff/invalidation and per-index-entry
//!   traffic tables ([`Heatmap`]).
//! - **Causal tracing** — hybrid logical clocks stamped on every event
//!   and merged across ranks on message receipt ([`HlcStamp`], the
//!   [`causal`] timeline merge), plus per-sync-op critical paths naming
//!   the straggler rank, slowest shard and retransmit count behind each
//!   barrier/lock latency ([`critpath`]).
//! - **Exporters** — Chrome tracing JSON ([`chrome_trace`], one track per
//!   rank, with flow arrows linking send→receive across tracks), a
//!   plain-text cluster report and the machine-readable [`ObsSnapshot`].
//! - **Live telemetry** — a windowed [`timeseries`] emitting one delta
//!   [`Frame`] per fabric-clock interval, a stall [`watchdog`] aging
//!   in-flight sync ops against latency budgets ([`StallReport`]), and a
//!   [`blackbox`] flight recorder dumping triggered diagnostic bundles.
//!
//! The crate sits below the rest of the stack and speaks message kinds as
//! `&'static str` labels, so every other crate can depend on it without
//! cycles.

#![warn(missing_docs)]

pub mod blackbox;
pub mod causal;
pub mod chrome;
pub mod critpath;
pub mod event;
pub mod heatmap;
pub mod hlc;
pub mod metrics;
pub mod recorder;
pub mod ring;
pub mod snapshot;
pub mod timeseries;
pub mod watchdog;

pub use blackbox::{pretty as pretty_bundle, TriggerRow};
pub use causal::{causal_order, check_happens_before, estimate_skew, SkewRow};
pub use chrome::chrome_trace;
pub use critpath::{analyze as critical_paths, LinkRetransmits, OpCritPath, Segment};
pub use event::{Event, EventKind, OpCtx, OpKind};
pub use heatmap::{EntryStats, Heatmap, PageStats, WriterStats};
pub use hlc::{HlcClock, HlcStamp};
pub use metrics::{bucket_index, bucket_upper, Histogram, Registry, BUCKETS};
pub use recorder::{InflightOp, ObsConfig, Recorder, Span};
pub use ring::EventRing;
pub use snapshot::{
    DecisionRow, DestRow, EntryRow, HistSummary, KindTraffic, ObsSnapshot, PageRow, ReleaseRow,
    RingDropRow, WriterRow,
};
pub use timeseries::{Frame, Sample, TimeSeries};
pub use watchdog::{StallReport, WatchdogConfig};
