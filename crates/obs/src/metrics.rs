//! Counters, gauges and log2-bucket latency histograms.
//!
//! Metric names are static strings, stored in `BTreeMap`s so snapshots and
//! reports enumerate deterministically.

use std::collections::BTreeMap;

/// Number of log2 buckets: bucket `i` holds values `v` with
/// `floor(log2(v)) == i` (value 0 goes to bucket 0), so the range covers
/// the full `u64` domain.
pub const BUCKETS: usize = 64;

/// A power-of-two-bucket histogram with exact count/sum/max.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

/// Bucket index for a value: `floor(log2(v))`, with 0 mapping to bucket 0.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        63 - v.leading_zeros() as usize
    }
}

/// Upper bound (inclusive) of bucket `i`: `2^(i+1) - 1`.
pub fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

impl Histogram {
    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the inclusive upper bound of
    /// the first bucket whose cumulative count reaches `ceil(q · count)`
    /// (clamped to the observed max, so `quantile(1.0) == max`). Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// The (p50, p95, p99) triple.
    pub fn quantiles(&self) -> (u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }

    /// Raw bucket counts (for tests and exporters).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }
}

/// Registry of named metrics. Locking is the caller's concern (the
/// recorder wraps one registry in a mutex).
#[derive(Debug, Default)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Registry {
    /// Add `delta` to counter `name`.
    pub fn count(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_default() += delta;
    }

    /// Set gauge `name`.
    pub fn gauge(&mut self, name: &'static str, value: i64) {
        self.gauges.insert(name, value);
    }

    /// Record `value` into histogram `name`.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, name-ordered.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// All gauges, name-ordered.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, i64)> + '_ {
        self.gauges.iter().map(|(k, v)| (*k, *v))
    }

    /// All histograms, name-ordered.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (*k, v))
    }

    /// Render every metric in the Prometheus text exposition format.
    /// Metric names are prefixed `hdsm_` and sanitized to the Prometheus
    /// charset; histograms emit cumulative `_bucket{le="..."}` rows over
    /// the occupied log2 buckets plus `+Inf`, `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 5);
            out.push_str("hdsm_");
            for c in name.chars() {
                if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                    out.push(c);
                } else {
                    out.push('_');
                }
            }
            out
        }
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let top = bucket_index(h.max().max(1));
            let mut cum = 0u64;
            for (i, &c) in h.buckets().iter().enumerate().take(top + 1) {
                cum += c;
                out.push_str(&format!("{n}_bucket{{le=\"{}\"}} {cum}\n", bucket_upper(i)));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
            out.push_str(&format!("{n}_sum {}\n", h.sum()));
            out.push_str(&format!("{n}_count {}\n", h.count()));
        }
        out
    }

    /// [`Registry::to_prometheus`] plus the labelled series the flat
    /// registry doesn't hold: per-destination-endpoint traffic counters
    /// (`hdsm_net_dest_msgs{dst=".."}` / `hdsm_net_dest_bytes{dst=".."}`)
    /// and one `hdsm_placement_rehome{...} 1` row per placement decision.
    /// With no placement rows and no destination rows the output equals
    /// `to_prometheus()` exactly.
    pub fn to_prometheus_with(
        &self,
        placement: &[crate::snapshot::DecisionRow],
        dests: &[crate::snapshot::DestRow],
    ) -> String {
        let mut out = self.to_prometheus();
        if !dests.is_empty() {
            out.push_str("# TYPE hdsm_net_dest_msgs counter\n");
            for d in dests {
                out.push_str(&format!(
                    "hdsm_net_dest_msgs{{dst=\"{}\"}} {}\n",
                    d.dst, d.msgs
                ));
            }
            out.push_str("# TYPE hdsm_net_dest_bytes counter\n");
            for d in dests {
                out.push_str(&format!(
                    "hdsm_net_dest_bytes{{dst=\"{}\"}} {}\n",
                    d.dst, d.bytes
                ));
            }
        }
        if !placement.is_empty() {
            out.push_str("# TYPE hdsm_placement_rehome counter\n");
            for p in placement {
                out.push_str(&format!(
                    "hdsm_placement_rehome{{entry=\"{}\",from=\"{}\",to=\"{}\",writer=\"{}\",epoch=\"{}\"}} 1\n",
                    p.entry, p.from_shard, p.to_shard, p.writer, p.epoch
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(7), 2);
        assert_eq!(bucket_index(8), 3);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_upper(0), 1);
        assert_eq!(bucket_upper(1), 3);
        assert_eq!(bucket_upper(2), 7);
        assert_eq!(bucket_upper(63), u64::MAX);
        // Every value lands in a bucket whose bounds contain it.
        for v in [0u64, 1, 2, 5, 100, 4095, 4096, 1 << 40] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper(i));
            if i > 0 {
                assert!(v > bucket_upper(i - 1));
            }
        }
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn quantiles_bound_the_distribution() {
        let mut h = Histogram::default();
        // 90 fast ops (~16 µs), 10 slow ops (~4096 µs).
        for _ in 0..90 {
            h.record(16);
        }
        for _ in 0..10 {
            h.record(4096);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), 4096);
        let (p50, p95, p99) = h.quantiles();
        // p50 falls in the 16s bucket [16, 31]; p95/p99 in the 4096s.
        assert!((16..=31).contains(&p50), "p50={p50}");
        assert!(p95 >= 4096, "p95={p95}");
        assert!(p99 >= 4096, "p99={p99}");
        // Quantiles never exceed the observed max.
        assert!(p99 <= h.max());
        assert_eq!(h.quantile(1.0), 4096);
    }

    #[test]
    fn quantile_of_single_value() {
        let mut h = Histogram::default();
        h.record(100);
        assert_eq!(h.quantile(0.5), 100); // clamped to max
        assert_eq!(h.quantile(0.99), 100);
        assert_eq!(h.mean(), 100.0);
    }

    #[test]
    fn prometheus_export_covers_all_metric_types() {
        let mut r = Registry::default();
        r.count("net.msgs-sent", 7);
        r.gauge("cluster.shards", 3);
        r.observe("barrier", 5);
        r.observe("barrier", 100);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE hdsm_net_msgs_sent counter\nhdsm_net_msgs_sent 7\n"));
        assert!(text.contains("# TYPE hdsm_cluster_shards gauge\nhdsm_cluster_shards 3\n"));
        assert!(text.contains("# TYPE hdsm_barrier histogram\n"));
        // Cumulative buckets: value 5 lands in le="7", value 100 in le="127".
        assert!(text.contains("hdsm_barrier_bucket{le=\"7\"} 1\n"), "{text}");
        assert!(
            text.contains("hdsm_barrier_bucket{le=\"127\"} 2\n"),
            "{text}"
        );
        assert!(text.contains("hdsm_barrier_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("hdsm_barrier_sum 105\n"));
        assert!(text.contains("hdsm_barrier_count 2\n"));
        // Every line is either a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with("# TYPE hdsm_") || line.starts_with("hdsm_"),
                "bad line: {line}"
            );
        }
    }

    #[test]
    fn prometheus_with_placement_and_dests() {
        use crate::snapshot::{DecisionRow, DestRow};
        let mut r = Registry::default();
        r.count("net.msgs-sent", 7);
        let plain = r.to_prometheus();
        // Empty extras: byte-identical to the plain exposition.
        assert_eq!(r.to_prometheus_with(&[], &[]), plain);
        let dests = [
            DestRow {
                dst: 0,
                msgs: 5,
                bytes: 500,
            },
            DestRow {
                dst: 2,
                msgs: 1,
                bytes: 64,
            },
        ];
        let placement = [DecisionRow {
            entry: 3,
            from_shard: 1,
            to_shard: 0,
            writer: 2,
            epoch: 4,
        }];
        let text = r.to_prometheus_with(&placement, &dests);
        assert!(text.starts_with(&plain));
        assert!(text.contains("# TYPE hdsm_net_dest_msgs counter\n"));
        assert!(text.contains("hdsm_net_dest_msgs{dst=\"0\"} 5\n"));
        assert!(text.contains("hdsm_net_dest_bytes{dst=\"2\"} 64\n"));
        assert!(text.contains(
            "hdsm_placement_rehome{entry=\"3\",from=\"1\",to=\"0\",writer=\"2\",epoch=\"4\"} 1\n"
        ));
    }

    #[test]
    fn registry_accumulates() {
        let mut r = Registry::default();
        r.count("a", 2);
        r.count("a", 3);
        r.gauge("g", -7);
        r.observe("h", 5);
        r.observe("h", 9);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge_value("g"), Some(-7));
        assert_eq!(r.histogram("h").unwrap().count(), 2);
        let names: Vec<_> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a"]);
    }
}
