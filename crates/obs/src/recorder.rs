//! The [`Recorder`] handle — the one type the rest of the stack sees.
//!
//! A recorder is either *disabled* (the default: a `None` inside, every
//! call is a branch on a null pointer and returns immediately — no
//! counters, no clocks, no locks) or *enabled* (an `Arc` to the shared
//! observability core: per-rank event rings, the metrics registry, the
//! heatmaps and the per-kind network traffic table). Cloning is cheap and
//! every clone feeds the same core, so one recorder wired through
//! `ClusterBuilder::obs` observes the whole cluster.

use crate::event::{Event, EventKind, OpCtx};
use crate::heatmap::Heatmap;
use crate::hlc::{HlcClock, HlcStamp};
use crate::metrics::Registry;
use crate::ring::EventRing;
use crate::snapshot::{DecisionRow, KindTraffic, ObsSnapshot, RingDropRow};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Pluggable time source: microseconds since "the epoch" of whatever
/// fabric the cluster runs on. Installed once per recorder by simulation
/// mode so event timestamps, HLC physical components and span durations
/// ride the virtual clock and become seed-deterministic.
pub type TimeSource = Arc<dyn Fn() -> u64 + Send + Sync>;

/// Tunables for an enabled recorder.
#[derive(Debug, Clone, Copy)]
pub struct ObsConfig {
    /// Maximum events held per rank before the ring wraps (oldest lost).
    pub ring_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            ring_capacity: 65_536,
        }
    }
}

pub(crate) struct ObsCore {
    epoch: Instant,
    /// Overrides `epoch.elapsed()` when set (see [`TimeSource`]). Set at
    /// most once, before the cluster starts recording.
    time: OnceLock<TimeSource>,
    config: ObsConfig,
    /// Per-rank event rings, grown on first touch.
    rings: Mutex<Vec<EventRing>>,
    registry: Mutex<Registry>,
    heatmap: Mutex<Heatmap>,
    /// Per-message-kind traffic, fed from the fabric send path (the same
    /// call site as `NetStats::record`, so totals always agree).
    net: Mutex<BTreeMap<&'static str, KindTraffic>>,
    /// Per-destination-endpoint traffic, fed at the same site. With a
    /// sharded home (destination ranks `0..S` are shards) this is the raw
    /// material of the report's shard-utilization section.
    net_dest: Mutex<BTreeMap<u32, (u64, u64)>>,
    /// Placement decisions applied by the adaptive engine, in decision
    /// order. Part of the snapshot so same-seed simulated runs compare
    /// decision-for-decision.
    decisions: Mutex<Vec<DecisionRow>>,
    /// Per-rank hybrid logical clocks, grown on first touch. Ticked on
    /// every recorded event, merged with the remote stamp on receives.
    clocks: Mutex<Vec<HlcClock>>,
    /// Flow-id allocator binding each `MsgSend` to its `MsgRecv`s
    /// (0 is reserved for "no flow").
    flow: AtomicU64,
}

impl ObsCore {
    /// Microseconds since the epoch on the recorder's timeline.
    fn now_us(&self) -> u64 {
        match self.time.get() {
            Some(f) => f(),
            None => self.epoch.elapsed().as_micros() as u64,
        }
    }
}

/// Cheap, cloneable handle to the observability core (or to nothing).
#[derive(Clone, Default)]
pub struct Recorder(Option<Arc<ObsCore>>);

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(_) => write!(f, "Recorder(enabled)"),
            None => write!(f, "Recorder(disabled)"),
        }
    }
}

impl Recorder {
    /// The no-op recorder (default).
    pub fn disabled() -> Recorder {
        Recorder(None)
    }

    /// An enabled recorder with default configuration.
    pub fn enabled() -> Recorder {
        Recorder::with_config(ObsConfig::default())
    }

    /// An enabled recorder with explicit configuration.
    pub fn with_config(config: ObsConfig) -> Recorder {
        Recorder(Some(Arc::new(ObsCore {
            epoch: Instant::now(),
            time: OnceLock::new(),
            config,
            rings: Mutex::new(Vec::new()),
            registry: Mutex::new(Registry::default()),
            heatmap: Mutex::new(Heatmap::default()),
            net: Mutex::new(BTreeMap::new()),
            net_dest: Mutex::new(BTreeMap::new()),
            decisions: Mutex::new(Vec::new()),
            clocks: Mutex::new(Vec::new()),
            flow: AtomicU64::new(1),
        })))
    }

    /// Is this recorder live?
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Microseconds since the recorder's epoch (0 when disabled). Reads
    /// the installed [`TimeSource`] if any, else the wall clock.
    pub fn now_us(&self) -> u64 {
        match &self.0 {
            Some(c) => c.now_us(),
            None => 0,
        }
    }

    /// Install a time source for every timestamp this recorder takes from
    /// here on (virtual-clock timestamps in simulation mode). Only the
    /// first call per recorder wins; no-op when disabled.
    pub fn set_time_source(&self, time: TimeSource) {
        if let Some(core) = &self.0 {
            let _ = core.time.set(time);
        }
    }

    fn push(core: &ObsCore, e: Event) {
        let mut rings = core.rings.lock();
        let idx = e.rank as usize;
        while rings.len() <= idx {
            let cap = core.config.ring_capacity;
            rings.push(EventRing::new(cap));
        }
        rings[idx].push(e);
    }

    /// Tick `rank`'s HLC for a local event and return the new stamp.
    fn hlc_tick(core: &ObsCore, rank: u32, now_us: u64) -> HlcStamp {
        let mut clocks = core.clocks.lock();
        let idx = rank as usize;
        while clocks.len() <= idx {
            clocks.push(HlcClock::new());
        }
        clocks[idx].tick(now_us)
    }

    /// Merge a remote stamp into `rank`'s HLC (receive event).
    fn hlc_merge(core: &ObsCore, rank: u32, now_us: u64, remote: HlcStamp) -> HlcStamp {
        let mut clocks = core.clocks.lock();
        let idx = rank as usize;
        while clocks.len() <= idx {
            clocks.push(HlcClock::new());
        }
        clocks[idx].merge(now_us, remote)
    }

    /// Record an instant event.
    pub fn instant(&self, rank: u32, kind: EventKind, arg0: u64, arg1: u64, label: &'static str) {
        self.instant_op(rank, kind, arg0, arg1, label, OpCtx::default());
    }

    /// Record an instant event attributed to sync operation `op`.
    pub fn instant_op(
        &self,
        rank: u32,
        kind: EventKind,
        arg0: u64,
        arg1: u64,
        label: &'static str,
        op: OpCtx,
    ) {
        if let Some(core) = &self.0 {
            let t_us = core.now_us();
            let hlc = Self::hlc_tick(core, rank, t_us);
            let e = Event {
                rank,
                kind,
                t_us,
                arg0,
                arg1,
                label,
                hlc,
                op,
                ..Default::default()
            };
            Self::push(core, e);
        }
    }

    /// Record a completed span given its wall-clock endpoints.
    #[allow(clippy::too_many_arguments)] // mirrors the Event fields
    pub fn span_at(
        &self,
        rank: u32,
        kind: EventKind,
        t_us: u64,
        dur_us: u64,
        arg0: u64,
        arg1: u64,
        label: &'static str,
    ) {
        self.span_at_op(
            rank,
            kind,
            t_us,
            dur_us,
            arg0,
            arg1,
            label,
            OpCtx::default(),
        );
    }

    /// Record a completed span attributed to sync operation `op`.
    #[allow(clippy::too_many_arguments)] // mirrors the Event fields
    pub fn span_at_op(
        &self,
        rank: u32,
        kind: EventKind,
        t_us: u64,
        dur_us: u64,
        arg0: u64,
        arg1: u64,
        label: &'static str,
        op: OpCtx,
    ) {
        if let Some(core) = &self.0 {
            let now = core.now_us();
            let hlc = Self::hlc_tick(core, rank, now);
            Self::push(
                core,
                Event {
                    rank,
                    kind,
                    t_us,
                    dur_us,
                    arg0,
                    arg1,
                    label,
                    hlc,
                    op,
                    ..Default::default()
                },
            );
            core.registry.lock().observe(kind.name(), dur_us);
        }
    }

    // ----- message trace context (fed by the fabric send/recv paths) -----

    /// A message is leaving rank `src`: tick the HLC, allocate a flow id,
    /// record the `MsgSend` event, and return `(stamp, flow)` for the
    /// sender to stamp into the envelope. `None` when disabled — the
    /// envelope then carries no trace context at all.
    pub fn msg_send_event(
        &self,
        src: u32,
        bytes: u64,
        dst: u32,
        label: &'static str,
        op: OpCtx,
    ) -> Option<(HlcStamp, u64)> {
        let core = self.0.as_ref()?;
        let t_us = core.now_us();
        let hlc = Self::hlc_tick(core, src, t_us);
        let flow = core.flow.fetch_add(1, Ordering::Relaxed);
        Self::push(
            core,
            Event {
                rank: src,
                kind: EventKind::MsgSend,
                t_us,
                dur_us: 0,
                arg0: bytes,
                arg1: dst as u64,
                label,
                hlc,
                flow,
                op,
            },
        );
        Some((hlc, flow))
    }

    /// A traced message arrived at `rank`: merge the remote stamp into the
    /// local HLC and record the `MsgRecv` event bound to the same flow.
    #[allow(clippy::too_many_arguments)] // mirrors the Event fields
    pub fn msg_recv_event(
        &self,
        rank: u32,
        bytes: u64,
        src: u32,
        label: &'static str,
        remote: HlcStamp,
        flow: u64,
        op: OpCtx,
    ) {
        if let Some(core) = &self.0 {
            let t_us = core.now_us();
            let hlc = Self::hlc_merge(core, rank, t_us, remote);
            Self::push(
                core,
                Event {
                    rank,
                    kind: EventKind::MsgRecv,
                    t_us,
                    dur_us: 0,
                    arg0: bytes,
                    arg1: src as u64,
                    label,
                    hlc,
                    flow,
                    op,
                },
            );
        }
    }

    /// The stamp of rank `rank`'s most recent event (ZERO when disabled
    /// or untouched). Test/analyzer convenience.
    pub fn hlc_last(&self, rank: u32) -> HlcStamp {
        match &self.0 {
            Some(core) => {
                let clocks = core.clocks.lock();
                clocks
                    .get(rank as usize)
                    .map(|c| c.last())
                    .unwrap_or(HlcStamp::ZERO)
            }
            None => HlcStamp::ZERO,
        }
    }

    /// Open a timing span; the event is recorded (and its duration fed
    /// into the per-kind latency histogram) when the guard drops. On a
    /// disabled recorder the guard is inert and costs nothing.
    pub fn span(&self, rank: u32, kind: EventKind) -> Span {
        match &self.0 {
            Some(core) => Span {
                inner: Some(SpanInner {
                    rec: self.clone(),
                    rank,
                    kind,
                    t_us: core.now_us(),
                    arg0: 0,
                    arg1: 0,
                    label: "",
                    op: OpCtx::default(),
                }),
            },
            None => Span { inner: None },
        }
    }

    /// Add `delta` to counter `name`.
    pub fn count(&self, name: &'static str, delta: u64) {
        if let Some(core) = &self.0 {
            core.registry.lock().count(name, delta);
        }
    }

    /// Set gauge `name`.
    pub fn gauge(&self, name: &'static str, value: i64) {
        if let Some(core) = &self.0 {
            core.registry.lock().gauge(name, value);
        }
    }

    /// Record `value` into histogram `name`.
    pub fn observe(&self, name: &'static str, value: u64) {
        if let Some(core) = &self.0 {
            core.registry.lock().observe(name, value);
        }
    }

    // ----- network traffic (fed by the fabric send path) -----

    /// One message of `kind_label` with `bytes` payload bytes crossed the
    /// fabric towards endpoint `dst`. `update` marks data-carrying kinds,
    /// separating the paper's Figure 8 update traffic from control
    /// traffic; `dst` feeds the per-destination (shard utilization) table.
    pub fn net_send(&self, kind_label: &'static str, dst: u32, bytes: u64, update: bool) {
        if let Some(core) = &self.0 {
            let mut net = core.net.lock();
            let t = net.entry(kind_label).or_insert(KindTraffic {
                kind: kind_label.to_string(),
                msgs: 0,
                bytes: 0,
                update,
            });
            t.msgs += 1;
            t.bytes += bytes;
            drop(net);
            let mut dests = core.net_dest.lock();
            let d = dests.entry(dst).or_insert((0, 0));
            d.0 += 1;
            d.1 += bytes;
        }
    }

    // ----- heatmap feeds -----

    /// A diff scan found `bytes` changed bytes on `page`.
    pub fn page_diff(&self, page: u64, bytes: u64) {
        if let Some(core) = &self.0 {
            core.heatmap.lock().page_diff(page, bytes);
        }
    }

    /// Incoming updates overwrote `page`.
    pub fn page_invalidated(&self, page: u64) {
        if let Some(core) = &self.0 {
            core.heatmap.lock().page_invalidated(page);
        }
    }

    /// A typed read hit `entry`.
    pub fn entry_read(&self, entry: u32) {
        if let Some(core) = &self.0 {
            core.heatmap.lock().entry_read(entry);
        }
    }

    /// A typed write hit `entry`.
    pub fn entry_write(&self, entry: u32) {
        if let Some(core) = &self.0 {
            core.heatmap.lock().entry_write(entry);
        }
    }

    /// An update frame was shipped for `entry` over `[first, first+count)`.
    pub fn update_sent(&self, entry: u32, first: u64, count: u64, bytes: u64) {
        if let Some(core) = &self.0 {
            core.heatmap.lock().update_sent(entry, first, count, bytes);
        }
    }

    /// An update frame was applied to `entry`.
    pub fn update_applied(&self, entry: u32, bytes: u64) {
        if let Some(core) = &self.0 {
            core.heatmap.lock().update_applied(entry, bytes);
        }
    }

    // ----- placement signals & decisions -----

    /// Writer `writer` shipped an update frame for `entry` with `bytes`
    /// payload bytes (the per-(entry, writer) attribution table).
    pub fn entry_written_by(&self, entry: u32, writer: u32, bytes: u64) {
        if let Some(core) = &self.0 {
            core.heatmap.lock().entry_written_by(entry, writer, bytes);
        }
    }

    /// Writer `writer` completed a release-class sync operation homed at
    /// `shard` (the per-(writer, shard) destination table).
    pub fn release_to(&self, writer: u32, shard: u32) {
        if let Some(core) = &self.0 {
            core.heatmap.lock().release_to(writer, shard);
        }
    }

    /// Live read of the per-(entry, writer) update-attribution table:
    /// `(entry, writer, updates, bytes)` rows, (entry, writer)-ordered.
    /// Empty when disabled. This is the placement engine's "dominant
    /// writer" input; reading it never perturbs the recorded state.
    pub fn write_heat(&self) -> Vec<(u32, u32, u64, u64)> {
        match &self.0 {
            None => Vec::new(),
            Some(core) => core
                .heatmap
                .lock()
                .writers()
                .map(|((entry, writer), w)| (entry, writer, w.updates, w.bytes))
                .collect(),
        }
    }

    /// Live read of the per-(writer, shard) release-destination table:
    /// `(writer, shard, releases)` rows, key-ordered. Empty when
    /// disabled. The placement engine's "nearest shard" input.
    pub fn release_dests(&self) -> Vec<(u32, u32, u64)> {
        match &self.0 {
            None => Vec::new(),
            Some(core) => core
                .heatmap
                .lock()
                .releases()
                .map(|((writer, shard), n)| (writer, shard, n))
                .collect(),
        }
    }

    /// The adaptive placement engine applied a decision: record it for
    /// the snapshot's `placement` section.
    pub fn placement_decision(&self, row: DecisionRow) {
        if let Some(core) = &self.0 {
            core.decisions.lock().push(row);
        }
    }

    /// Decisions recorded so far, in order. Empty when disabled.
    pub fn placement_decisions(&self) -> Vec<DecisionRow> {
        match &self.0 {
            None => Vec::new(),
            Some(core) => core.decisions.lock().clone(),
        }
    }

    // ----- export -----

    /// Every held event across ranks, time-ordered. Empty when disabled.
    pub fn events(&self) -> Vec<Event> {
        match &self.0 {
            None => Vec::new(),
            Some(core) => {
                let rings = core.rings.lock();
                let mut out: Vec<Event> = rings
                    .iter()
                    .flat_map(|r| r.iter_in_order().copied())
                    .collect();
                out.sort_by_key(|e| (e.t_us, e.rank));
                out
            }
        }
    }

    /// Freeze the current state into a machine-readable snapshot —
    /// including per-rank ring drops, the estimated inter-rank clock
    /// skew, and the per-sync-op critical paths computed from the event
    /// stream. `None` when disabled.
    pub fn snapshot(&self) -> Option<ObsSnapshot> {
        let core = self.0.as_ref()?;
        let rings = core.rings.lock();
        let (mut recorded, mut dropped) = (0u64, 0u64);
        let mut ring_drops = Vec::new();
        let mut events: Vec<Event> = Vec::new();
        for (rank, r) in rings.iter().enumerate() {
            recorded += r.total_pushed();
            dropped += r.dropped();
            ring_drops.push(RingDropRow {
                rank: rank as u32,
                recorded: r.total_pushed(),
                dropped: r.dropped(),
            });
            events.extend(r.iter_in_order().copied());
        }
        drop(rings);
        events.sort_by_key(|e| (e.t_us, e.rank));
        let registry = core.registry.lock();
        let heatmap = core.heatmap.lock();
        let net = core.net.lock();
        let net_dest = core.net_dest.lock();
        let decisions = core.decisions.lock();
        let shards = registry.gauge_value("cluster.shards").unwrap_or(1).max(1) as u32;
        let mut snap = ObsSnapshot::build(
            core.now_us(),
            &registry,
            &heatmap,
            &net,
            &net_dest,
            &decisions,
            recorded,
            dropped,
        );
        snap.ring_drops = ring_drops;
        snap.clock_skew = crate::causal::estimate_skew(&events);
        snap.critpaths = crate::critpath::analyze(&events, shards);
        Some(snap)
    }

    /// Run `f` against the live registry (tests, custom exporters).
    /// No-op returning `None` when disabled.
    pub fn with_registry<T>(&self, f: impl FnOnce(&Registry) -> T) -> Option<T> {
        self.0.as_ref().map(|core| f(&core.registry.lock()))
    }
}

struct SpanInner {
    rec: Recorder,
    rank: u32,
    kind: EventKind,
    t_us: u64,
    arg0: u64,
    arg1: u64,
    label: &'static str,
    op: OpCtx,
}

/// Guard for an open timing span (see [`Recorder::span`]).
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// Attach arguments to the eventual event.
    pub fn args(&mut self, arg0: u64, arg1: u64) {
        if let Some(i) = &mut self.inner {
            i.arg0 = arg0;
            i.arg1 = arg1;
        }
    }

    /// Attach a static label to the eventual event.
    pub fn label(&mut self, label: &'static str) {
        if let Some(i) = &mut self.inner {
            i.label = label;
        }
    }

    /// Attribute the eventual event to sync operation `op`.
    pub fn op(&mut self, op: OpCtx) {
        if let Some(i) = &mut self.inner {
            i.op = op;
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(i) = self.inner.take() {
            // Duration on the recorder's own timeline: wall micros
            // normally, virtual micros (usually zero-width) in sim mode.
            let dur_us = i.rec.now_us().saturating_sub(i.t_us);
            i.rec.span_at_op(
                i.rank, i.kind, i.t_us, dur_us, i.arg0, i.arg1, i.label, i.op,
            );
        }
    }
}

/// Open a span guard for the rest of the enclosing scope:
/// `obs_span!(recorder, rank, EventKind::DiffScan);`
#[macro_export]
macro_rules! obs_span {
    ($rec:expr, $rank:expr, $kind:expr) => {
        let _obs_span_guard = $rec.span($rank, $kind);
    };
    ($rec:expr, $rank:expr, $kind:expr, $label:expr) => {
        let _obs_span_guard = {
            let mut s = $rec.span($rank, $kind);
            s.label($label);
            s
        };
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.instant(0, EventKind::Other, 1, 2, "x");
        r.count("c", 5);
        r.observe("h", 9);
        r.page_diff(0, 10);
        r.net_send("other", 0, 100, false);
        {
            let mut s = r.span(0, EventKind::DiffScan);
            s.args(1, 2);
        }
        assert!(r.events().is_empty());
        assert!(r.snapshot().is_none());
        assert_eq!(r.now_us(), 0);
    }

    #[test]
    fn spans_and_instants_are_recorded_per_rank() {
        let r = Recorder::enabled();
        r.instant(2, EventKind::Retransmit, 0, 0, "");
        {
            let mut s = r.span(1, EventKind::DiffScan);
            s.args(64, 0);
        }
        let evs = r.events();
        assert_eq!(evs.len(), 2);
        assert!(evs
            .iter()
            .any(|e| e.rank == 2 && e.kind == EventKind::Retransmit));
        let scan = evs.iter().find(|e| e.kind == EventKind::DiffScan).unwrap();
        assert_eq!(scan.rank, 1);
        assert_eq!(scan.arg0, 64);
        // The span also fed the per-kind histogram.
        let count = r
            .with_registry(|reg| reg.histogram("diff-scan").map(|h| h.count()))
            .flatten();
        assert_eq!(count, Some(1));
    }

    #[test]
    fn obs_span_macro_records_on_scope_exit() {
        let r = Recorder::enabled();
        {
            obs_span!(r, 3, EventKind::Barrier);
            obs_span!(r, 3, EventKind::MsgSend, "lock-req");
        }
        let evs = r.events();
        assert_eq!(evs.len(), 2);
        assert!(evs.iter().any(|e| e.label == "lock-req"));
    }

    #[test]
    fn net_traffic_accumulates_per_kind() {
        let r = Recorder::enabled();
        r.net_send("lock-req", 0, 10, false);
        r.net_send("lock-req", 1, 20, false);
        r.net_send("barrier-enter", 0, 1000, true);
        let snap = r.snapshot().unwrap();
        assert_eq!(snap.net_total_msgs, 3);
        assert_eq!(snap.net_total_bytes, 1030);
        assert_eq!(snap.net_update_bytes, 1000);
        assert_eq!(snap.net_control_bytes, 30);
        let lr = snap.net.iter().find(|t| t.kind == "lock-req").unwrap();
        assert_eq!(lr.msgs, 2);
        assert_eq!(lr.bytes, 30);
        // Destination attribution feeds the shard-utilization table.
        let d0 = snap.net_by_dest.iter().find(|d| d.dst == 0).unwrap();
        assert_eq!((d0.msgs, d0.bytes), (2, 1010));
        let d1 = snap.net_by_dest.iter().find(|d| d.dst == 1).unwrap();
        assert_eq!((d1.msgs, d1.bytes), (1, 20));
    }

    #[test]
    fn ring_capacity_bounds_memory_and_counts_drops() {
        let r = Recorder::with_config(ObsConfig { ring_capacity: 8 });
        for _ in 0..20 {
            r.instant(0, EventKind::Other, 0, 0, "");
        }
        assert_eq!(r.events().len(), 8);
        let snap = r.snapshot().unwrap();
        assert_eq!(snap.events_recorded, 20);
        assert_eq!(snap.events_dropped, 12);
    }
}
